//! Failure-injection tests for the resilience layer (the Ambrosia stand-in,
//! §7.3 of the paper): crashes at arbitrary points of a run, recovery from
//! the last snapshot, and exactly-once results.

use muse_core::algorithms::amuse::{amuse, AMuseConfig};
use muse_core::graph::PlanContext;
use muse_core::prelude::*;
use muse_runtime::checkpoint::{restore, snapshot};
use muse_runtime::sim::{run_simulation, SimConfig, SimExecutor};
use muse_runtime::Deployment;
use muse_sim::network_gen::{generate_network, NetworkConfig};
use muse_sim::traces::{generate_traces, TraceConfig};
use muse_sim::workload_gen::{generate_workload, WorkloadConfig};
use std::collections::BTreeSet;

struct Instance {
    network: Network,
    query: Query,
    events: Vec<muse_core::event::Event>,
}

fn instance(seed: u64) -> Instance {
    let network = generate_network(&NetworkConfig {
        nodes: 5,
        types: 5,
        event_node_ratio: 0.6,
        rate_skew: 1.3,
        max_rate: 500,
        seed,
    });
    let workload = generate_workload(&WorkloadConfig {
        queries: 1,
        prims_per_query: 3,
        types: 5,
        selectivity_min: 0.5,
        selectivity_max: 0.5,
        window: 3_000,
        seed,
        ..Default::default()
    });
    let events = generate_traces(
        &network,
        &TraceConfig {
            duration: 30.0,
            ticks_per_unit: 100.0,
            rate_scale: 5.0 / 500.0,
            key_domain: 2,
            band_domain: 0,
            seed,
        },
    );
    Instance {
        network,
        query: workload.queries()[0].clone(),
        events,
    }
}

fn fingerprints(ms: &[muse_runtime::Match]) -> BTreeSet<Vec<u64>> {
    ms.iter().map(|m| m.fingerprint()).collect()
}

/// Crashing and recovering at *every possible* chunk boundary produces the
/// same results as the uninterrupted run.
#[test]
fn recovery_at_any_boundary_is_lossless() {
    let inst = instance(5);
    let plan = amuse(&inst.query, &inst.network, &AMuseConfig::default()).unwrap();
    let ctx = PlanContext::new(
        std::slice::from_ref(&inst.query),
        &inst.network,
        &plan.table,
    );
    let deployment = Deployment::new(&plan.graph, &ctx);
    let baseline = run_simulation(&deployment, &inst.events, &SimConfig::default());

    let n = inst.events.len();
    for split in [1, n / 4, n / 2, 3 * n / 4, n - 1] {
        let mut first = SimExecutor::new(&deployment, SimConfig::default());
        first.process_trace(&inst.events[..split]);
        let bytes = snapshot(&first).unwrap();
        drop(first); // the crash
        let mut resumed = restore(&deployment, SimConfig::default(), &bytes).unwrap();
        resumed.process_trace(&inst.events[split..]);
        let report = resumed.finish();
        assert_eq!(
            fingerprints(&report.matches[0]),
            fingerprints(&baseline.matches[0]),
            "split at {split}"
        );
        assert_eq!(
            report.metrics.messages_sent, baseline.metrics.messages_sent,
            "split at {split}"
        );
    }
}

/// Chained recovery: crash, recover, crash again, recover again.
#[test]
fn repeated_crashes_compose() {
    let inst = instance(9);
    let plan = amuse(&inst.query, &inst.network, &AMuseConfig::default()).unwrap();
    let ctx = PlanContext::new(
        std::slice::from_ref(&inst.query),
        &inst.network,
        &plan.table,
    );
    let deployment = Deployment::new(&plan.graph, &ctx);
    let baseline = run_simulation(&deployment, &inst.events, &SimConfig::default());

    let n = inst.events.len();
    let (a, b) = (n / 3, 2 * n / 3);
    let mut exec = SimExecutor::new(&deployment, SimConfig::default());
    exec.process_trace(&inst.events[..a]);
    let snap1 = snapshot(&exec).unwrap();
    drop(exec);
    let mut exec = restore(&deployment, SimConfig::default(), &snap1).unwrap();
    exec.process_trace(&inst.events[a..b]);
    let snap2 = snapshot(&exec).unwrap();
    drop(exec);
    let mut exec = restore(&deployment, SimConfig::default(), &snap2).unwrap();
    exec.process_trace(&inst.events[b..]);
    let report = exec.finish();
    assert_eq!(
        fingerprints(&report.matches[0]),
        fingerprints(&baseline.matches[0])
    );
}

/// Replaying the suffix after restoring an *older* snapshot also converges
/// to the same results (reprocessing from the snapshot is idempotent with
/// respect to the final match set).
#[test]
fn older_snapshot_replay_converges() {
    let inst = instance(13);
    let plan = amuse(&inst.query, &inst.network, &AMuseConfig::default()).unwrap();
    let ctx = PlanContext::new(
        std::slice::from_ref(&inst.query),
        &inst.network,
        &plan.table,
    );
    let deployment = Deployment::new(&plan.graph, &ctx);
    let baseline = run_simulation(&deployment, &inst.events, &SimConfig::default());

    let n = inst.events.len();
    let mut exec = SimExecutor::new(&deployment, SimConfig::default());
    exec.process_trace(&inst.events[..n / 4]);
    let early_snap = snapshot(&exec).unwrap();
    // Keep running past the snapshot point, then "crash".
    exec.process_trace(&inst.events[n / 4..n / 2]);
    drop(exec);
    // Recover from the older snapshot and replay everything after it.
    let mut exec = restore(&deployment, SimConfig::default(), &early_snap).unwrap();
    exec.process_trace(&inst.events[n / 4..]);
    let report = exec.finish();
    assert_eq!(
        fingerprints(&report.matches[0]),
        fingerprints(&baseline.matches[0])
    );
}

/// Snapshots are self-contained: deserializing into a fresh deployment
/// built from the same plan works.
#[test]
fn snapshot_portable_across_deployments() {
    let inst = instance(21);
    let plan = amuse(&inst.query, &inst.network, &AMuseConfig::default()).unwrap();
    let ctx = PlanContext::new(
        std::slice::from_ref(&inst.query),
        &inst.network,
        &plan.table,
    );
    let deployment_a = Deployment::new(&plan.graph, &ctx);
    let deployment_b = Deployment::new(&plan.graph, &ctx);

    let mut exec = SimExecutor::new(&deployment_a, SimConfig::default());
    exec.process_trace(&inst.events[..inst.events.len() / 2]);
    let snap = snapshot(&exec).unwrap();
    drop(exec);

    let mut resumed = restore(&deployment_b, SimConfig::default(), &snap).unwrap();
    resumed.process_trace(&inst.events[inst.events.len() / 2..]);
    let report = resumed.finish();
    let baseline = run_simulation(&deployment_a, &inst.events, &SimConfig::default());
    assert_eq!(
        fingerprints(&report.matches[0]),
        fingerprints(&baseline.matches[0])
    );
}
