//! Property-based tests over the core invariants of the MuSE model, driven
//! by randomly generated queries, networks, and traces.

use muse_core::algorithms::amuse::{amuse, AMuseConfig};
use muse_core::algorithms::baselines::centralized_cost;
use muse_core::binding::{enumerate_bindings, num_bindings};
use muse_core::combination::{enumerate_combinations, Combination};
use muse_core::cost::projection_output_rate;
use muse_core::graph::PlanContext;
use muse_core::prelude::*;
use muse_core::projection::{all_projections, project};
use muse_runtime::matcher::Evaluator;
use proptest::prelude::*;

// ---------- generators ----------

/// A random OR-free pattern over `types` distinct leaf types.
fn arb_pattern(num_types: u16) -> impl Strategy<Value = Pattern> {
    // Between 2 and 5 distinct types, random alternating SEQ/AND shape.
    (2usize..=5usize.min(num_types as usize), any::<u64>()).prop_map(move |(n, seed)| {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut types: Vec<u16> = (0..num_types).collect();
        types.shuffle(&mut rng);
        let leaves: Vec<Pattern> = types[..n]
            .iter()
            .map(|&t| Pattern::leaf(EventTypeId(t)))
            .collect();
        fn build(leaves: &[Pattern], seq: bool, rng: &mut StdRng) -> Pattern {
            if leaves.len() == 1 {
                return leaves[0].clone();
            }
            let cut = rng.gen_range(1..leaves.len());
            let left = build(&leaves[..cut], !seq, rng);
            let right = build(&leaves[cut..], !seq, rng);
            // Flatten same-kind children to keep validity.
            let children = vec![left, right];
            if seq {
                Pattern::Seq(flatten(children, true))
            } else {
                Pattern::And(flatten(children, false))
            }
        }
        fn flatten(children: Vec<Pattern>, seq: bool) -> Vec<Pattern> {
            let mut out = Vec::new();
            for c in children {
                match (&c, seq) {
                    (Pattern::Seq(inner), true) => out.extend(inner.clone()),
                    (Pattern::And(inner), false) => out.extend(inner.clone()),
                    _ => out.push(c),
                }
            }
            out
        }
        build(&leaves, rng.gen_bool(0.5), &mut rng)
    })
}

/// A random network over `num_types` types with every type produced.
fn arb_network(num_types: u16) -> impl Strategy<Value = Network> {
    any::<u64>().prop_map(move |seed| {
        muse_sim::network_gen::generate_network(&muse_sim::network_gen::NetworkConfig {
            nodes: 5,
            types: num_types as usize,
            event_node_ratio: 0.6,
            rate_skew: 1.3,
            max_rate: 1_000,
            seed,
        })
    })
}

fn build_query(pattern: &Pattern) -> Query {
    Query::build(QueryId(0), pattern, vec![], 5_000).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Projecting a query onto all of its primitives is the identity (same
    /// signature), and projections are monotone: projecting twice equals
    /// projecting once with the smaller set.
    #[test]
    fn projection_identity_and_consistency(pattern in arb_pattern(6)) {
        let q = build_query(&pattern);
        let full = project(&q, q.prims()).unwrap();
        prop_assert_eq!(full.signature(&q), q.signature());
        for p in all_projections(&q) {
            // Types round-trip through prims.
            prop_assert_eq!(q.prims_of_types(q.types_of(p.prims)), p.prims);
            // Selectivity of a projection never exceeds 1 and never falls
            // below the query's.
            prop_assert!(p.selectivity <= 1.0 + 1e-12);
            prop_assert!(p.selectivity >= q.selectivity() - 1e-12);
        }
    }

    /// |𝔈(p)| equals the product of producer counts, and enumerating agrees
    /// with counting.
    #[test]
    fn binding_counts_consistent(pattern in arb_pattern(6), net in arb_network(6)) {
        let q = build_query(&pattern);
        for p in all_projections(&q) {
            let count = num_bindings(&q, p.prims, &net);
            let listed = enumerate_bindings(&q, p.prims, &net, 100_000).unwrap();
            prop_assert_eq!(listed.len() as f64, count);
            // Bindings of a projection are sub-bags of the query's bindings.
            let full = enumerate_bindings(&q, q.prims(), &net, 100_000).unwrap();
            for b in &listed {
                prop_assert!(full.iter().any(|fb| b.is_sub_bag_of(fb)));
            }
        }
    }

    /// Every enumerated combination is correct and non-redundant, and the
    /// primitive combination is always found.
    #[test]
    fn combinations_correct_nonredundant(pattern in arb_pattern(6)) {
        let q = build_query(&pattern);
        let available: Vec<PrimSet> = all_projections(&q)
            .into_iter()
            .map(|p| p.prims)
            .filter(|p| p.len() >= 2)
            .collect();
        let combos = enumerate_combinations(q.prims(), &available);
        prop_assert!(!combos.is_empty());
        let primitive = Combination::primitive(q.prims());
        prop_assert!(combos.contains(&primitive));
        for c in &combos {
            prop_assert!(c.is_correct());
            prop_assert!(!c.is_redundant());
            prop_assert!(c.arity() <= q.num_prims());
        }
    }

    /// The output rate of a projection never exceeds the rate obtained by
    /// removing a predicate (rates are monotone in selectivity), and is
    /// finite and non-negative.
    #[test]
    fn rates_sane(pattern in arb_pattern(6), net in arb_network(6)) {
        let q = build_query(&pattern);
        for p in all_projections(&q) {
            let r = projection_output_rate(&p, &q, &net);
            prop_assert!(r.is_finite());
            prop_assert!(r >= 0.0);
        }
    }

    /// aMuSE always produces a correct MuSE graph whose cost never exceeds
    /// (a small tolerance above) centralized evaluation, and aMuSE* never
    /// beats aMuSE.
    #[test]
    fn amuse_invariants(pattern in arb_pattern(6), net in arb_network(6)) {
        let q = build_query(&pattern);
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let star = amuse(&q, &net, &AMuseConfig::star()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        plan.graph.check_correct(&ctx, 1_000_000).unwrap();
        let central = centralized_cost(std::slice::from_ref(&q), &net);
        prop_assert!(plan.cost <= central * 1.001 + 1e-9);
        prop_assert!(plan.cost <= star.cost + 1e-6);
        // Reported cost is the graph's cost.
        prop_assert!((plan.graph.cost(&ctx) - plan.cost).abs() < 1e-6);
    }

    /// Matches found by the evaluator satisfy the query: each match's
    /// events respect order constraints, the window, and carry one event
    /// per positive primitive.
    #[test]
    fn evaluator_matches_are_valid(pattern in arb_pattern(4), seed in any::<u64>()) {
        let q = build_query(&pattern);
        let net = muse_sim::network_gen::generate_network(&muse_sim::network_gen::NetworkConfig {
            nodes: 3,
            types: 4,
            event_node_ratio: 0.8,
            rate_skew: 1.3,
            max_rate: 20,
            seed,
        });
        let events = muse_sim::traces::generate_traces(&net, &muse_sim::traces::TraceConfig {
            duration: 10.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.2,
            key_domain: 0,
            band_domain: 0,            seed,
        });
        let matches = Evaluator::for_query(&q).run(&events);
        for m in matches {
            prop_assert_eq!(m.prims(), q.positive_prims());
            prop_assert!(m.last_time() - m.first_time() <= q.window());
            prop_assert!(muse_runtime::matcher::is_valid_match(&m, &q));
        }
    }

    /// The trace generator respects the network: origins generate their
    /// types, order is global-trace order, sequence numbers are dense.
    #[test]
    fn traces_respect_network(net in arb_network(5), seed in any::<u64>()) {
        let events = muse_sim::traces::generate_traces(&net, &muse_sim::traces::TraceConfig {
            duration: 5.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.05,
            key_domain: 3,
            band_domain: 0,            seed,
        });
        for (i, e) in events.iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64);
            prop_assert!(net.generates(e.origin, e.ty));
            if i > 0 {
                prop_assert!(events[i - 1].time <= e.time);
            }
        }
    }

    /// Codec roundtrip for arbitrary matches built from trace events.
    #[test]
    fn codec_roundtrip(net in arb_network(5), seed in any::<u64>()) {
        let events = muse_sim::traces::generate_traces(&net, &muse_sim::traces::TraceConfig {
            duration: 3.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.05,
            key_domain: 10,
            band_domain: 0,            seed,
        });
        let entries: Vec<(PrimId, muse_core::event::Event)> = events
            .iter()
            .take(8)
            .enumerate()
            .map(|(i, e)| (PrimId(i as u8), e.clone()))
            .collect();
        let m = muse_runtime::Match::new(entries);
        let bytes = muse_runtime::codec::encode_match(&m);
        prop_assert_eq!(muse_runtime::codec::decode_match(bytes), m);
    }
}
