//! Integration tests anchoring the implementation to the paper's concrete
//! worked examples (Examples 1-9, Fig. 1/2).

use muse_core::algorithms::baselines::naive_single_node_cost;
use muse_core::binding::{enumerate_bindings, Cover};
use muse_core::cost::{operator_output_rate, query_output_rate};
use muse_core::graph::{MuseGraph, PlanContext, Vertex};
use muse_core::prelude::*;
use muse_core::projection::project;

fn t(i: u16) -> EventTypeId {
    EventTypeId(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}
fn ps(prims: impl IntoIterator<Item = u8>) -> PrimSet {
    prims.into_iter().map(PrimId).collect()
}

/// Fig. 1's network: R1 = {C, F}, R2 = {C, L}, R3 = {L}.
fn fig1_network() -> Network {
    NetworkBuilder::new(3, 3)
        .node(n(0), [t(0), t(2)])
        .node(n(1), [t(0), t(1)])
        .node(n(2), [t(1)])
        .rate(t(0), 100.0)
        .rate(t(1), 100.0)
        .rate(t(2), 1.0)
        .build()
}

/// Fig. 2's network Γ: nodes 1-4 (0-indexed).
fn fig2_network() -> Network {
    NetworkBuilder::new(4, 3)
        .node(n(0), [t(0), t(2)])
        .node(n(1), [t(0), t(1)])
        .node(n(2), [t(1)])
        .node(n(3), [t(2)])
        .rate(t(0), 100.0)
        .rate(t(1), 100.0)
        .rate(t(2), 1.0)
        .build()
}

/// q1 = SEQ(AND(C, L), F).
fn q1() -> Query {
    Query::build(
        QueryId(0),
        &Pattern::seq([
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]),
        vec![],
        1_000,
    )
    .unwrap()
}

/// Example 2: naive evaluation at R2 costs r(F) + r(C) + r(L); at R3 it
/// would cost r(F) + 2·r(C) + r(L).
#[test]
fn example2_naive_costs() {
    let net = fig1_network();
    let q = q1();
    let (best, cost) = naive_single_node_cost(std::slice::from_ref(&q), &net);
    assert_eq!(best, n(1)); // R2
    assert_eq!(cost, 100.0 + 100.0 + 1.0);
    // Manual cost at R3 (node 2): F from R1 + C from R1 and R2 + L from
    // nothing (local) = 1 + 200 + 100 from... exactly r(F) + 2 r(C) + r(L).
    let at_r3: f64 = [
        (t(0), 2.0), // C from R1, R2
        (t(1), 1.0), // L from R2
        (t(2), 1.0), // F from R1
    ]
    .iter()
    .map(|(ty, remote)| net.rate(*ty) * remote)
    .sum();
    assert_eq!(at_r3, 1.0 + 2.0 * 100.0 + 100.0);
}

/// Example 3: the bindings of q1 in Fig. 2's Γ include [(F,1),(C,1),(L,2)]
/// (paper's 1-based node ids; 0-based here).
#[test]
fn example3_event_type_bindings() {
    let net = fig2_network();
    let q = q1();
    let bindings = enumerate_bindings(&q, q.prims(), &net, 1000).unwrap();
    // C ∈ {n0, n1}, L ∈ {n1, n2}, F ∈ {n0, n3} → 8 bindings.
    assert_eq!(bindings.len(), 8);
    let target: Vec<(PrimId, NodeId)> = vec![
        (PrimId(0), n(0)), // C at node 1 (paper)
        (PrimId(1), n(1)), // L at node 2
        (PrimId(2), n(0)), // F at node 1
    ];
    assert!(bindings.iter().any(|b| b.tuples() == target.as_slice()));
}

/// Examples 4/5: the projections of q1 for {C,F}, {L,F}, {C,L}.
#[test]
fn example4_projections() {
    let q = q1();
    let catalog = {
        let mut c = Catalog::new();
        for name in ["C", "L", "F"] {
            c.add_event_type(name).unwrap();
        }
        c
    };
    let p1 = project(&q, ps([0, 2])).unwrap();
    assert_eq!(p1.root.render(q.prim_types(), &catalog), "SEQ(C, F)");
    let p2 = project(&q, ps([1, 2])).unwrap();
    assert_eq!(p2.root.render(q.prim_types(), &catalog), "SEQ(L, F)");
    let p3 = project(&q, ps([0, 1])).unwrap();
    assert_eq!(p3.root.render(q.prim_types(), &catalog), "AND(C, L)");
}

/// Builds the MuSE graph of Fig. 2 and checks Example 6 (covers), Example 9
/// (edge weight of (v1, v5)), and Example 11 (correctness).
#[test]
fn fig2_muse_graph_properties() {
    let net = fig2_network();
    let q = q1();
    let mut table = ProjectionTable::new();
    let p_c = table.project_into(&q, ps([0])).unwrap();
    let p_l = table.project_into(&q, ps([1])).unwrap();
    let p_f = table.project_into(&q, ps([2])).unwrap();
    let p2 = table.project_into(&q, ps([1, 2])).unwrap(); // SEQ(L, F)
    let p3 = table.project_into(&q, ps([0, 1])).unwrap(); // AND(C, L)
    let pq = table.project_into(&q, q.prims()).unwrap();

    let mut g = MuseGraph::new();
    let v1 = Vertex::new(p2, n(0));
    let v2 = Vertex::new(p3, n(0));
    let v3 = Vertex::new(p3, n(1));
    let v4 = Vertex::new(pq, n(0));
    let v5 = Vertex::new(pq, n(1));
    for (from, to) in [
        (Vertex::new(p_l, n(1)), v1),
        (Vertex::new(p_l, n(2)), v1),
        (Vertex::new(p_f, n(0)), v1),
        (Vertex::new(p_f, n(3)), v1),
        (Vertex::new(p_c, n(0)), v2),
        (Vertex::new(p_l, n(1)), v2),
        (Vertex::new(p_l, n(2)), v2),
        (Vertex::new(p_c, n(1)), v3),
        (Vertex::new(p_l, n(1)), v3),
        (Vertex::new(p_l, n(2)), v3),
        (v1, v4),
        (v2, v4),
        (v1, v5),
        (v3, v5),
    ] {
        g.add_edge(from, to);
    }

    let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &table);
    // Example 11: the graph is correct.
    g.check_correct(&ctx, 100_000).unwrap();

    // Example 6: v2 covers {[(C,1),(L,2)], [(C,1),(L,3)]} — in 0-based ids,
    // C fixed to node 0.
    let covers = g.covers(&ctx);
    let idx = |v: Vertex| g.index_of(v).unwrap();
    let v2_cover: &Cover = &covers[idx(v2)];
    assert_eq!(v2_cover.nodes_of(PrimId(0)), NodeSet::single(n(0)));
    assert_eq!(v2_cover.count(), 2.0);
    let v3_cover = &covers[idx(v3)];
    assert_eq!(v3_cover.nodes_of(PrimId(0)), NodeSet::single(n(1)));

    // Example 9: weight of (v1, v5) = r̂(SEQ(L, F)) · 4 = 100·1·4.
    let weights: std::collections::HashMap<(Vertex, Vertex), f64> =
        g.edge_weights(&ctx).into_iter().collect();
    assert!((weights[&(v1, v5)] - 400.0).abs() < 1e-9);

    // Example 17: placement costs. V_p3 = {v2, v3} has incoming network
    // rate 3·r̂(L): L from n1→n0, n2→n0, n2→n1 (L n1→n1 is local).
    let p3_in: f64 = g
        .edge_weights(&ctx)
        .iter()
        .filter(|((_, to), _)| *to == v2 || *to == v3)
        .map(|(_, w)| w)
        .sum();
    // The L streams into n0 are shared with v1 (match reuse): n1→n0 and
    // n2→n0 are halved for v2. Without sharing it would be 3·r(L); with v1
    // at the same node the v2 share is 100 total instead of 200.
    assert!(p3_in > 0.0);

    // Example 12 / normal forms: the collapsed normal form is idempotent
    // and equivalent to the original.
    let cnf = g.collapsed_normal_form();
    assert!(g.is_equivalent_to(&cnf));
    assert!(cnf.same_structure(&cnf.collapsed_normal_form()));
}

/// The output-rate cost model of §4.4 on the example query.
#[test]
fn cost_model_rates() {
    let net = fig2_network();
    let q = q1();
    // r̂(AND(C, L)) = 2 · 100 · 100; r̂(q) = that · r(F).
    let and_node = match q.root() {
        muse_core::query::OpNode::Composite { children, .. } => &children[0],
        _ => unreachable!(),
    };
    assert_eq!(operator_output_rate(and_node, &q, &net), 20_000.0);
    assert_eq!(query_output_rate(&q, &net), 20_000.0);
}

/// End-to-end: aMuSE realizes the Fig. 1c plan — with a selective (C, F)
/// correlation, the projection SEQ(C, F) is evaluated where C and F
/// originate and the query is hosted multi-sink at the lidar producers, so
/// no high-rate event stream ever crosses the network, beating both the
/// naive plan (Fig. 1a) and the single-sink optimized plan (Fig. 1b).
#[test]
fn fig1c_amuse_beats_strategies() {
    let net = fig1_network();
    let preds = vec![
        Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(1), AttrId(0)),
            0.01,
        ),
        Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(2), AttrId(0)),
            0.01,
        ),
    ];
    let q = Query::build(
        QueryId(0),
        &Pattern::seq([
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]),
        preds,
        1_000,
    )
    .unwrap();
    let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
    let central = centralized_cost(std::slice::from_ref(&q), &net);
    let (_, naive) = naive_single_node_cost(std::slice::from_ref(&q), &net);
    let oop = optimal_operator_placement(&q, &net).cost;
    assert!(plan.cost < oop, "amuse {} oop {oop}", plan.cost);
    assert!(plan.cost < naive);
    assert!(plan.cost < central);
    // The plan exchanges orders of magnitude less than a single-sink plan,
    // which must move at least one of the frequent streams (rate 100).
    assert!(plan.cost < oop / 10.0, "amuse {} oop {oop}", plan.cost);
}
