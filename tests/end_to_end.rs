//! Cross-crate integration tests: generate → plan → validate → execute →
//! verify, over randomized instances.

use muse_core::algorithms::amuse::{amuse, AMuseConfig};
use muse_core::algorithms::baselines::{
    centralized_cost, optimal_operator_placement, optimal_operator_placement_workload,
    placement_to_graph,
};
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::graph::PlanContext;
use muse_core::prelude::*;
use muse_runtime::matcher::Evaluator;
use muse_runtime::sim::{run_simulation, SimConfig};
use muse_runtime::Deployment;
use muse_sim::network_gen::{generate_network, NetworkConfig};
use muse_sim::traces::{generate_traces, TraceConfig};
use muse_sim::workload_gen::{generate_workload, WorkloadConfig};
use std::collections::BTreeSet;

fn small_network(seed: u64) -> NetworkConfig {
    NetworkConfig {
        nodes: 6,
        types: 6,
        event_node_ratio: 0.6,
        rate_skew: 1.4,
        max_rate: 1_000,
        seed,
    }
}

fn small_workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        queries: 3,
        prims_per_query: 3,
        types: 6,
        window: 3_000,
        seed,
        ..Default::default()
    }
}

/// Every generated instance yields correct plans whose costs order as the
/// paper's evaluation reports: aMuSE ≤ aMuSE* and aMuSE below centralized.
#[test]
fn plans_are_correct_and_ordered_across_seeds() {
    for seed in 0..5 {
        let network = generate_network(&small_network(seed));
        let workload = generate_workload(&small_workload(seed));
        let central = centralized_cost(workload.queries(), &network);
        let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
        let star = amuse_workload(&workload, &network, &AMuseConfig::star()).unwrap();
        let oop = optimal_operator_placement_workload(workload.queries(), &network);
        // aMuSE explores a superset of aMuSE*'s projections; with the
        // bounded combination enumeration the two can diverge slightly in
        // either direction, but aMuSE must stay in the same ballpark.
        assert!(
            plan.total_cost <= star.total_cost * 1.25 + 1e-6,
            "seed {seed}: amuse {} star {}",
            plan.total_cost,
            star.total_cost
        );
        assert!(plan.total_cost <= central * 1.001, "seed {seed}");
        assert!(
            oop <= central * 1.5,
            "seed {seed}: oop {oop} central {central}"
        );
        // Per-query graphs are correct MuSE graphs.
        for (i, g) in plan.graphs.iter().enumerate() {
            let q = &workload.queries()[i..=i];
            let ctx = PlanContext::new(q, &network, &plan.table);
            g.check_correct(&ctx, 1_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} query {i}: {e}"));
        }
    }
}

/// Distributed execution of aMuSE plans produces exactly the centralized
/// ground-truth match sets on random instances (with payload keys driving
/// real predicate evaluation).
#[test]
fn distributed_execution_matches_ground_truth() {
    for seed in 0..3 {
        let network = generate_network(&small_network(seed + 100));
        let workload = generate_workload(&WorkloadConfig {
            queries: 2,
            prims_per_query: 3,
            types: 6,
            // Selectivity 0.5 so traces with key domain 2 produce matches.
            selectivity_min: 0.5,
            selectivity_max: 0.5,
            window: 3_000,
            seed: seed + 100,
            ..Default::default()
        });
        let events = generate_traces(
            &network,
            &TraceConfig {
                duration: 30.0,
                ticks_per_unit: 100.0,
                rate_scale: 3.0 / 1_000.0,
                key_domain: 2,
                band_domain: 0,
                seed,
            },
        );
        let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(workload.queries(), &network, &plan.table);
        let deployment = Deployment::new(&plan.merged, &ctx);
        let report = run_simulation(&deployment, &events, &SimConfig::default());
        for (i, q) in workload.queries().iter().enumerate() {
            let truth: BTreeSet<Vec<u64>> = Evaluator::for_query(q)
                .run(&events)
                .iter()
                .map(|m| m.fingerprint())
                .collect();
            let got: BTreeSet<Vec<u64>> =
                report.matches[i].iter().map(|m| m.fingerprint()).collect();
            assert_eq!(got, truth, "seed {seed} query {i}");
        }
    }
}

/// The oOP plan, converted to a MuSE graph and executed on the same
/// engine, produces the same matches as the aMuSE plan but ships more.
#[test]
fn oop_and_amuse_agree_on_matches() {
    let network = generate_network(&small_network(7));
    let workload = generate_workload(&WorkloadConfig {
        queries: 1,
        prims_per_query: 3,
        types: 6,
        selectivity_min: 0.5,
        selectivity_max: 0.5,
        window: 3_000,
        seed: 7,
        ..Default::default()
    });
    let query = &workload.queries()[0];
    let events = generate_traces(
        &network,
        &TraceConfig {
            duration: 40.0,
            ticks_per_unit: 100.0,
            rate_scale: 3.0 / 1_000.0,
            key_domain: 2,
            band_domain: 0,
            seed: 7,
        },
    );

    let plan = amuse(query, &network, &AMuseConfig::default()).unwrap();
    let ctx = PlanContext::new(std::slice::from_ref(query), &network, &plan.table);
    let ms = run_simulation(
        &Deployment::new(&plan.graph, &ctx),
        &events,
        &SimConfig::default(),
    );

    let placement = optimal_operator_placement(query, &network);
    let mut table = ProjectionTable::new();
    let graph = placement_to_graph(query, &placement, &network, &mut table).unwrap();
    let ctx = PlanContext::new(std::slice::from_ref(query), &network, &table);
    let op = run_simulation(
        &Deployment::new(&graph, &ctx),
        &events,
        &SimConfig::default(),
    );

    let ms_set: BTreeSet<Vec<u64>> = ms.matches[0].iter().map(|m| m.fingerprint()).collect();
    let op_set: BTreeSet<Vec<u64>> = op.matches[0].iter().map(|m| m.fingerprint()).collect();
    assert_eq!(ms_set, op_set);
}

/// NSEQ queries work end-to-end through the full pipeline, with the
/// negation guard streams distributed across nodes.
#[test]
fn nseq_pipeline_end_to_end() {
    let network = generate_network(&small_network(3));
    let pattern = Pattern::nseq(
        Pattern::leaf(EventTypeId(0)),
        Pattern::leaf(EventTypeId(1)),
        Pattern::leaf(EventTypeId(2)),
    );
    let query = Query::build(QueryId(0), &pattern, vec![], 3_000).unwrap();
    let events = generate_traces(
        &network,
        &TraceConfig {
            duration: 40.0,
            ticks_per_unit: 100.0,
            rate_scale: 3.0 / 1_000.0,
            key_domain: 0,
            band_domain: 0,
            seed: 3,
        },
    );
    let plan = amuse(&query, &network, &AMuseConfig::default()).unwrap();
    let ctx = PlanContext::new(std::slice::from_ref(&query), &network, &plan.table);
    let deployment = Deployment::new(&plan.graph, &ctx);
    let report = run_simulation(&deployment, &events, &SimConfig::default());
    let truth: BTreeSet<Vec<u64>> = Evaluator::for_query(&query)
        .run(&events)
        .iter()
        .map(|m| m.fingerprint())
        .collect();
    let got: BTreeSet<Vec<u64>> = report.matches[0].iter().map(|m| m.fingerprint()).collect();
    assert_eq!(got, truth);
}

/// A whole workload's merged deployment runs on the threaded executor and
/// produces the same matches as the deterministic simulator.
#[test]
fn workload_threaded_equals_simulator() {
    let network = generate_network(&small_network(55));
    let workload = generate_workload(&WorkloadConfig {
        queries: 2,
        prims_per_query: 3,
        types: 6,
        selectivity_min: 0.5,
        selectivity_max: 0.5,
        window: 3_000,
        seed: 55,
        ..Default::default()
    });
    let events = generate_traces(
        &network,
        &TraceConfig {
            duration: 30.0,
            ticks_per_unit: 100.0,
            rate_scale: 3.0 / 1_000.0,
            key_domain: 2,
            band_domain: 0,
            seed: 55,
        },
    );
    let plan = amuse_workload(&workload, &network, &AMuseConfig::default()).unwrap();
    let ctx = PlanContext::new(workload.queries(), &network, &plan.table);
    let deployment = Deployment::new(&plan.merged, &ctx);
    let sim = run_simulation(&deployment, &events, &SimConfig::default());
    let threaded = muse_runtime::run_threaded(
        &deployment,
        &events,
        &muse_runtime::ThreadedConfig::default(),
    );
    for i in 0..workload.len() {
        let a: BTreeSet<Vec<u64>> = sim.matches[i].iter().map(|m| m.fingerprint()).collect();
        let b: BTreeSet<Vec<u64>> = threaded.matches[i]
            .iter()
            .map(|m| m.fingerprint())
            .collect();
        assert_eq!(a, b, "query {i}");
    }
    assert_eq!(sim.metrics.messages_sent, threaded.metrics.messages_sent);
}

/// The multi-sink ablation: disabling partitioning placements never
/// improves the plan.
#[test]
fn multi_sink_ablation_never_helps_to_disable() {
    for seed in 0..4 {
        let network = generate_network(&small_network(seed + 40));
        let workload = generate_workload(&small_workload(seed + 40));
        for q in workload.queries() {
            let with = amuse(q, &network, &AMuseConfig::default()).unwrap();
            let without = amuse(
                q,
                &network,
                &AMuseConfig {
                    disable_multi_sink: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                with.cost <= without.cost + 1e-6,
                "seed {seed}: with {} without {}",
                with.cost,
                without.cost
            );
        }
    }
}
