#!/usr/bin/env python3
"""Render results/*.json into markdown tables for EXPERIMENTS.md.

Usage: python3 scripts/fill_experiments.py [results_dir]
Prints a markdown fragment per experiment; paste/patch into EXPERIMENTS.md.
"""
import json
import statistics
import sys
from pathlib import Path


def med(values):
    return statistics.median(values) if values else float("nan")


def fmt_ratio(values):
    if not values:
        return "—"
    return f"{med(values):.4f} [{min(values):.4f}, {max(values):.4f}]"


def render(payload):
    if "RatioSweep" in payload:
        d = payload["RatioSweep"]
        out = [f"### {d['id']}: {d['title']}", ""]
        out.append(f"| {d['x_label']} | aMuSE | aMuSE* | oOP |")
        out.append("|---|---|---|---|")
        for p in d["points"]:
            out.append(
                f"| {p['x']} | {fmt_ratio(p['amuse'])} | "
                f"{fmt_ratio(p['amuse_star'])} | {fmt_ratio(p['oop'])} |"
            )
        return "\n".join(out)
    if "Construction" in payload:
        d = payload["Construction"]
        out = [f"### {d['id']}: construction efficiency", ""]
        out.append("| setting | aMuSE [ms] | aMuSE* [ms] | aMuSE #proj | aMuSE* #proj |")
        out.append("|---|---|---|---|---|")
        for r in d["rows"]:
            out.append(
                f"| {r['setting']} | {r['amuse_ms']:.0f} | {r['amuse_star_ms']:.0f} "
                f"| {r['amuse_projections']:.0f} | {r['amuse_star_projections']:.0f} |"
            )
        return "\n".join(out)
    if "CaseStudyTable" in payload:
        d = payload["CaseStudyTable"]
        out = [f"### {d['id']}: case study transmission ratio", ""]
        out.append("| scenario | aMuSE | oOP | matches |")
        out.append("|---|---|---|---|")
        for r in d["rows"]:
            out.append(
                f"| {r['scenario']} | {r['amuse_ratio'] * 100:.1f}% "
                f"| {r['oop_ratio'] * 100:.1f}% | {r['matches']} |"
            )
        return "\n".join(out)
    if "CaseStudyRuns" in payload:
        d = payload["CaseStudyRuns"]
        out = [f"### {d['id']}: case study latency & throughput", ""]
        out.append("| scenario | plan | latency µs (min/q1/med/q3/max) | events/s | matches |")
        out.append("|---|---|---|---|---|")
        for r in d["rows"]:
            lat = "/".join(f"{v:.0f}" for v in r["latency_us"])
            out.append(
                f"| {r['scenario']} | {r['strategy']} | {lat} "
                f"| {r['events_per_sec']:.0f} | {r['matches']} |"
            )
        return "\n".join(out)
    return f"(unrecognized payload: {list(payload)[0]})"


def main():
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    order = [
        "fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b",
        "fig7a", "fig7b", "fig7c", "fig7d", "table3", "fig8", "ablation",
    ]
    for name in order:
        path = results / f"{name}.json"
        if not path.exists():
            continue
        print(render(json.loads(path.read_text())))
        print()


if __name__ == "__main__":
    main()
