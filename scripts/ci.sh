#!/usr/bin/env sh
# Tier-1 CI gate: release build, workspace test suite, lint gates, static
# verification of the example queries/plans, the loom concurrency lane, and
# smoke runs of the matcher join bench, the executor transport bench, the
# fault-recovery bench, and the shared multi-query bench (emitting
# BENCH_matcher.json, BENCH_executor.json, BENCH_faults.json, and
# BENCH_multiquery.json at the repo root plus telemetry exports under
# out/). The executor smoke additionally gates on the batched and naive
# transports producing identical match sets; the fault smoke gates on the
# crashed run reproducing the uninterrupted run's match sets; the
# multiquery smoke gates on shared-plan evaluation reproducing independent
# per-query evaluation and on sublinear wall-time growth in the query
# count. Exits nonzero on the first failure.
#
# Opt-in slow lanes (need a nightly toolchain, skipped by default so the
# tier-1 gate stays fast):
#   MUSE_CI_TSAN=1  ./scripts/ci.sh   # ThreadSanitizer over muse-runtime
#   MUSE_CI_MIRI=1  ./scripts/ci.sh   # Miri over muse-core
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test --workspace -q =="
cargo test --workspace -q

echo "== lint: cargo fmt --check =="
cargo fmt --check

echo "== lint: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== verify: muse-verify over examples/queries =="
cargo run -q -p muse-verify --release --bin muse-verify -- \
    query examples/queries/*.sase
cargo run -q -p muse-verify --release --bin muse-verify -- \
    plan examples/queries/factory_robots.sase --network examples/queries/factory.net

echo "== loom: model-checked worker/watermark handoff =="
RUSTFLAGS="--cfg loom" cargo test --release -p muse-runtime --test loom_handoff -q

if [ "${MUSE_CI_TSAN:-0}" = "1" ]; then
    echo "== tsan: cargo +nightly test -Zsanitizer=thread (opt-in) =="
    if rustc +nightly --version >/dev/null 2>&1; then
        RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -p muse-runtime -q \
            -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')"
    else
        echo "MUSE_CI_TSAN=1 but no nightly toolchain installed" >&2
        exit 1
    fi
fi

if [ "${MUSE_CI_MIRI:-0}" = "1" ]; then
    echo "== miri: cargo +nightly miri test (opt-in) =="
    if cargo +nightly miri --version >/dev/null 2>&1; then
        cargo +nightly miri test -p muse-core -q
    else
        echo "MUSE_CI_MIRI=1 but no nightly miri installed" >&2
        exit 1
    fi
fi

echo "== smoke: matcher join bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- matcher --quick --out . --telemetry out

echo "== smoke: executor transport bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- executor --quick --out . --telemetry out
grep -q '"fingerprints_equal": true' BENCH_executor.json || {
    echo "ci.sh: executor smoke: batched and naive transports diverged" >&2
    exit 1
}

echo "== smoke: fault-recovery bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- faults --quick --out . --telemetry out
grep -q '"fingerprints_equal": true' BENCH_faults.json || {
    echo "ci.sh: fault smoke: crash recovery lost or duplicated matches" >&2
    exit 1
}

echo "== smoke: shared multi-query bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- multiquery --quick --out . --telemetry out
# Every sweep point and the top-level summary carry a fingerprints_equal
# flag; a single false means shared evaluation diverged from independent
# per-query evaluation.
if grep -q '"fingerprints_equal": false' BENCH_multiquery.json; then
    echo "ci.sh: multiquery smoke: shared and independent evaluation diverged" >&2
    exit 1
fi
grep -q '"fingerprints_equal": true' BENCH_multiquery.json || {
    echo "ci.sh: multiquery smoke: no fingerprint gate found in output" >&2
    exit 1
}
grep -q '"sublinear": true' BENCH_multiquery.json || {
    echo "ci.sh: multiquery smoke: wall time grew superlinearly in query count" >&2
    exit 1
}

echo "ci.sh: all checks passed"
