#!/usr/bin/env sh
# Tier-1 CI gate: release build, workspace test suite, lint gates, static
# verification of the example queries/plans, the loom concurrency lane, and
# smoke runs of the matcher join bench, the executor transport bench, the
# fault-recovery bench, the shared multi-query bench, and the
# observability bench (emitting BENCH_matcher.json, BENCH_executor.json,
# BENCH_faults.json, BENCH_multiquery.json, BENCH_observe.json, and
# BENCH_migrate.json at the repo root plus telemetry exports under out/). The executor smoke
# additionally gates on the batched and naive transports producing
# identical match sets; the fault smoke gates on the crashed run
# reproducing the uninterrupted run's match sets; the multiquery smoke
# gates on shared-plan evaluation reproducing independent per-query
# evaluation and on sublinear wall-time growth in the query count; the
# observe smoke gates on provenance-on/off match parity, witness-closure
# reproduction (including one `harness explain` invocation), near-zero
# cost-model drift on a stationary trace, and drift detection on a
# rate-shifted trace; the migrate lane (BENCH_migrate.json) gates on
# certified plan migrations restoring fingerprint-identical in both
# executors and on rejected migrations failing the restore, plus a
# `muse-verify migrate` smoke over the example query files (the certified
# pair must exit 0, the narrowed pair must be refused). Exits nonzero on
# the first failure.
#
# Opt-in slow lanes (need a nightly toolchain, skipped by default so the
# tier-1 gate stays fast):
#   MUSE_CI_TSAN=1  ./scripts/ci.sh   # ThreadSanitizer over muse-runtime
#   MUSE_CI_MIRI=1  ./scripts/ci.sh   # Miri over muse-core
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test --workspace -q =="
cargo test --workspace -q

echo "== lint: cargo fmt --check =="
cargo fmt --check

echo "== lint: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== verify: muse-verify over examples/queries =="
cargo run -q -p muse-verify --release --bin muse-verify -- \
    query examples/queries/*.sase
cargo run -q -p muse-verify --release --bin muse-verify -- \
    plan examples/queries/factory_robots.sase --network examples/queries/factory.net

echo "== verify: muse-verify migrate over examples/queries =="
# The certified pair (append-only edit) must exit 0 …
cargo run -q -p muse-verify --release --bin muse-verify -- \
    migrate examples/queries/factory_robots.sase examples/queries/factory_robots_v2.sase \
    --network examples/queries/factory.net
# … and the narrowed-window pair must be refused (nonzero exit).
if cargo run -q -p muse-verify --release --bin muse-verify -- \
    migrate examples/queries/factory_robots.sase examples/queries/factory_robots_v2_unsafe.sase \
    --network examples/queries/factory.net; then
    echo "ci.sh: migrate smoke: narrowed-window migration was certified" >&2
    exit 1
fi

echo "== loom: model-checked worker/watermark handoff =="
RUSTFLAGS="--cfg loom" cargo test --release -p muse-runtime --test loom_handoff -q

if [ "${MUSE_CI_TSAN:-0}" = "1" ]; then
    echo "== tsan: cargo +nightly test -Zsanitizer=thread (opt-in) =="
    if rustc +nightly --version >/dev/null 2>&1; then
        RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -p muse-runtime -q \
            -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')"
    else
        echo "MUSE_CI_TSAN=1 but no nightly toolchain installed" >&2
        exit 1
    fi
fi

if [ "${MUSE_CI_MIRI:-0}" = "1" ]; then
    echo "== miri: cargo +nightly miri test (opt-in) =="
    if cargo +nightly miri --version >/dev/null 2>&1; then
        cargo +nightly miri test -p muse-core -q
    else
        echo "MUSE_CI_MIRI=1 but no nightly miri installed" >&2
        exit 1
    fi
fi

echo "== smoke: matcher join bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- matcher --quick --out . --telemetry out

echo "== smoke: executor transport bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- executor --quick --out . --telemetry out
grep -q '"fingerprints_equal": true' BENCH_executor.json || {
    echo "ci.sh: executor smoke: batched and naive transports diverged" >&2
    exit 1
}

echo "== smoke: fault-recovery bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- faults --quick --out . --telemetry out
grep -q '"fingerprints_equal": true' BENCH_faults.json || {
    echo "ci.sh: fault smoke: crash recovery lost or duplicated matches" >&2
    exit 1
}

echo "== smoke: live-migration bench =="
cargo run -p muse-bench --release --bin harness -- migrate --quick --out .
grep -q '"certified_identical": true' BENCH_migrate.json || {
    echo "ci.sh: migrate smoke: certified migration did not restore fingerprint-identical" >&2
    exit 1
}
grep -q '"widened_certified_with_replay": true' BENCH_migrate.json || {
    echo "ci.sh: migrate smoke: widened-window migration failed to certify or restore" >&2
    exit 1
}
grep -q '"rejected_fails": true' BENCH_migrate.json || {
    echo "ci.sh: migrate smoke: rejected migration did not fail the restore" >&2
    exit 1
}

echo "== smoke: shared multi-query bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- multiquery --quick --out . --telemetry out
# Every sweep point and the top-level summary carry a fingerprints_equal
# flag; a single false means shared evaluation diverged from independent
# per-query evaluation.
if grep -q '"fingerprints_equal": false' BENCH_multiquery.json; then
    echo "ci.sh: multiquery smoke: shared and independent evaluation diverged" >&2
    exit 1
fi
grep -q '"fingerprints_equal": true' BENCH_multiquery.json || {
    echo "ci.sh: multiquery smoke: no fingerprint gate found in output" >&2
    exit 1
}
grep -q '"sublinear": true' BENCH_multiquery.json || {
    echo "ci.sh: multiquery smoke: wall time grew superlinearly in query count" >&2
    exit 1
}

echo "== smoke: observability bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- observe --quick --out . --telemetry out
grep -q '"fingerprints_equal": true' BENCH_observe.json || {
    echo "ci.sh: observe smoke: provenance tracing perturbed the match sets" >&2
    exit 1
}
grep -q '"witnesses_reproduce": true' BENCH_observe.json || {
    echo "ci.sh: observe smoke: a witness replay failed to reproduce its match" >&2
    exit 1
}
grep -q '"stationary_ok": true' BENCH_observe.json || {
    echo "ci.sh: observe smoke: stationary workload drifted from the cost model" >&2
    exit 1
}
grep -q '"shifted_detected": true' BENCH_observe.json || {
    echo "ci.sh: observe smoke: 3x rate shift not flagged by the drift monitor" >&2
    exit 1
}
# Overhead gates (disabled < 5%, 1-in-64 sampling < 15%) are computed in
# the same run; surface them without failing CI on wall-clock noise alone
# unless the disabled path regressed.
grep -q '"disabled_ok": true' BENCH_observe.json || {
    echo "ci.sh: observe smoke: disabled provenance costs >= 5% on transport_stress" >&2
    exit 1
}
grep -q '"sampled_ok": true' BENCH_observe.json || {
    echo "ci.sh: observe smoke: 1-in-64 provenance sampling costs >= 15%" >&2
    exit 1
}

echo "== smoke: harness explain (witness-closure replay) =="
cargo run -p muse-bench --release --bin harness -- explain all --quick

echo "ci.sh: all checks passed"
