#!/usr/bin/env sh
# Tier-1 CI gate: release build, workspace test suite, lint gates, and a
# smoke run of the matcher join bench (emits BENCH_matcher.json at the repo
# root plus telemetry exports under out/). Exits nonzero on the first
# failure.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test --workspace -q =="
cargo test --workspace -q

echo "== lint: cargo fmt --check =="
cargo fmt --check

echo "== lint: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== smoke: matcher join bench (with telemetry) =="
cargo run -p muse-bench --release --bin harness -- matcher --quick --out . --telemetry out

echo "ci.sh: all checks passed"
