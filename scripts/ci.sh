#!/usr/bin/env sh
# Tier-1 CI gate: release build, full workspace test suite, and a smoke run
# of the matcher join bench (emits BENCH_matcher.json at the repo root).
# Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== smoke: matcher join bench =="
cargo run -p muse-bench --release --bin harness -- matcher --quick --out .

echo "ci.sh: all checks passed"
