//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench-file API (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `criterion_group!`/`criterion_main!`)
//! but runs each benchmark under a small wall-clock budget and prints a
//! one-line summary instead of doing full statistical analysis. The budget
//! is `min(measurement_time, MUSE_BENCH_BUDGET_MS)` (env var, default
//! 500 ms), so `cargo bench` stays usable as a CI smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

fn budget(measurement_time: Duration) -> Duration {
    let cap_ms = std::env::var("MUSE_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(500);
    measurement_time.min(Duration::from_millis(cap_ms))
}

/// Benchmark driver (stub of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }
}

/// Unit the throughput line is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier with a parameter, e.g. `amuse/4`.
#[derive(Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upper bound on the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: budget(self.measurement_time),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Runs a parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            budget: budget(self.measurement_time),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        b.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` repeatedly until the wall-clock budget is spent
    /// (always at least once).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            let r = f();
            std::hint::black_box(&r);
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{group}/{id}: no iterations recorded");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let mut line = format!(
            "{group}/{id}: {:.1} ns/iter ({} iters in {:.1} ms)",
            per_iter,
            self.iters,
            self.elapsed.as_secs_f64() * 1e3
        );
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (per_iter / 1e9);
                line.push_str(&format!(", {:.0} elem/s", rate));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (per_iter / 1e9);
                line.push_str(&format!(", {:.0} B/s", rate));
            }
            None => {}
        }
        println!("{line}");
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_least_once_and_reports() {
        std::env::set_var("MUSE_BENCH_BUDGET_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        group.bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.bench_with_input(BenchmarkId::new("p", 3), &3usize, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert!(ran >= 1);
    }
}
