//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework under the same crate name.
//! Instead of serde's visitor-based zero-copy data model, values are
//! (de)serialized through an owned [`Value`] tree; `serde_json` (also
//! vendored) renders that tree to and from JSON text. The derive macros
//! ([`macro@Serialize`], [`macro@Deserialize`]) support the container
//! shapes this repository uses: named-field structs, tuple/newtype structs,
//! unit structs, and enums with unit/tuple/struct variants, plus the
//! container attribute `#[serde(from = "T", into = "T")]` and the field
//! attribute `#[serde(default)]`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// String-keyed object map (ordered for deterministic output).
pub type Map = BTreeMap<String, Value>;

/// A JSON-like number: the lossless union of the integer and float types
/// used across the workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U(u64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::I(v) => v as f64,
            Number::U(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `i64` if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            Number::F(_) => None,
        }
    }

    /// The value as `u64` if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::I(v) => u64::try_from(v).ok(),
            Number::U(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            Number::F(_) => None,
        }
    }
}

/// An owned serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number.
    Num(Number),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// String-keyed object.
    Object(Map),
}

impl Value {
    /// The object map, if this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

fn type_err(expected: &str, got: &Value) -> DeError {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    DeError(format!("expected {expected}, found {kind}"))
}

// ---- primitive impls -------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::Num(Number::U(*self as u64))
                } else {
                    Value::Num(Number::I(*self as i64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => {
                        if let Some(i) = n.as_i64() {
                            <$t>::try_from(i)
                                .map_err(|_| DeError(format!("integer {i} out of range")))
                        } else if let Some(u) = n.as_u64() {
                            <$t>::try_from(u)
                                .map_err(|_| DeError(format!("integer {u} out of range")))
                        } else {
                            Err(DeError(format!("expected integer, found {:?}", n)))
                        }
                    }
                    other => Err(type_err("integer", other)),
                }
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self > i64::MAX as u64 {
            Value::Num(Number::U(*self))
        } else {
            Value::Num(Number::I(*self as i64))
        }
    }
}
impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => n
                .as_u64()
                .ok_or_else(|| DeError(format!("expected u64, found {n:?}"))),
            other => Err(type_err("integer", other)),
        }
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // 128-bit bitsets don't fit a JSON number: split into two words.
        Value::Array(vec![
            ((*self >> 64) as u64).to_value(),
            (*self as u64).to_value(),
        ])
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| type_err("[hi, lo] pair", v))?;
        if arr.len() != 2 {
            return Err(DeError("expected [hi, lo] pair for u128".into()));
        }
        let hi = u64::from_value(&arr[0])?;
        let lo = u64::from_value(&arr[1])?;
        Ok(((hi as u128) << 64) | lo as u128)
    }
}

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    other => Err(type_err("number", other)),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_err("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| type_err("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, found {s:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, got {len}")))
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".into(), self.as_secs().to_value());
        m.insert("nanos".into(), self.subsec_nanos().to_value());
        Value::Object(m)
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_object().ok_or_else(|| type_err("object", v))?;
        let secs = u64::from_value(m.get("secs").unwrap_or(&Value::Null))?;
        let nanos = u32::from_value(m.get("nanos").unwrap_or(&Value::Null))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Arc<[T]> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Arc<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| type_err("tuple array", v))?;
                let expected = [$($n,)+].len();
                if arr.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of {expected}, found array of {}", arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Total order over value trees, used to give hash-based containers a
/// deterministic serialized form. NaN floats tie-break by bit pattern.
pub fn value_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Num(_) => 2,
            Value::Str(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Num(x), Value::Num(y)) => {
            let (xf, yf) = (x.as_f64(), y.as_f64());
            xf.partial_cmp(&yf)
                .unwrap_or_else(|| xf.to_bits().cmp(&yf.to_bits()))
        }
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (i, j) in x.iter().zip(y.iter()) {
                let c = value_cmp(i, j);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((kx, vx), (ky, vy)) in x.iter().zip(y.iter()) {
                let c = kx.cmp(ky).then_with(|| value_cmp(vx, vy));
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

// Maps serialize as sorted arrays of `[key, value]` pairs — keys need not
// be strings, and hash-map iteration order never leaks into the output.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut pairs: Vec<Value> = entries
        .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
        .collect();
    pairs.sort_by(value_cmp);
    Value::Array(pairs)
}

fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    v.as_array()
        .ok_or_else(|| type_err("array of pairs", v))?
        .iter()
        .map(|pair| {
            let items = pair.as_array().ok_or_else(|| type_err("pair", pair))?;
            if items.len() != 2 {
                return Err(DeError::custom("map entry is not a pair"));
            }
            Ok((K::from_value(&items[0])?, V::from_value(&items[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries(v)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(|t| t.to_value()).collect();
        items.sort_by(value_cmp);
        Value::Array(items)
    }
}
impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|t| t.to_value()).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&7i64.to_value()).unwrap(), 7);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            u128::from_value(&(u128::MAX - 3).to_value()).unwrap(),
            u128::MAX - 3
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        assert_eq!(Vec::<(u32, String)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let m: HashMap<String, u32> = [("x".to_string(), 1u32)].into_iter().collect();
        assert_eq!(
            HashMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("no".into())).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u8::from_value(&300u32.to_value()).is_err());
    }
}
