//! Derive macros for the vendored offline `serde` stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote`: the build environment is
//! offline). Supports the container shapes used in this workspace:
//!
//! * named-field structs, tuple/newtype structs, unit structs;
//! * enums with unit, tuple, and struct variants;
//! * container attribute `#[serde(from = "T", into = "T")]`;
//! * field attribute `#[serde(default)]`.
//!
//! Generic containers are intentionally unsupported (none of the
//! workspace's serialized types are generic); deriving on one produces a
//! compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    from: Option<String>,
    into: Option<String>,
}

struct Field {
    name: String,
    default: bool,
}

enum Kind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    kind: Kind,
}

/// Derives `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------- parsing --

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let mut attrs = ContainerAttrs::default();
    for serde_attr in collect_attrs(&tokens, &mut i) {
        parse_container_attr(&serde_attr, &mut attrs)?;
    }
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i)?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("derive expects struct or enum, found `{other}`")),
    };
    let name = expect_ident(&tokens, &mut i)?;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generic type `{name}`"
        ));
    }

    let kind = if is_enum {
        let TokenTree::Group(g) = tokens
            .get(i)
            .ok_or_else(|| "expected enum body".to_string())?
        else {
            return Err("expected enum body".to_string());
        };
        Kind::Enum(parse_variants(g.stream())?)
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            None => Kind::Unit,
            other => return Err(format!("unexpected token in struct body: {other:?}")),
        }
    };

    Ok(Item { name, attrs, kind })
}

/// Collects leading attributes, returning the token streams of `#[serde(...)]`
/// ones and skipping the rest (doc comments, other derives, etc.).
fn collect_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<Vec<TokenTree>> {
    let mut serde_attrs = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    serde_attrs.push(args.stream().into_iter().collect());
                }
            }
            *i += 1;
        }
    }
    serde_attrs
}

fn parse_container_attr(tokens: &[TokenTree], attrs: &mut ContainerAttrs) -> Result<(), String> {
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(key) = &tokens[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        let value = match (tokens.get(i + 1), tokens.get(i + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                i += 3;
                Some(lit.to_string().trim_matches('"').to_string())
            }
            _ => {
                i += 1;
                None
            }
        };
        match (key.as_str(), value) {
            ("from", Some(v)) => attrs.from = Some(v),
            ("into", Some(v)) => attrs.into = Some(v),
            ("default", None) => {} // container-level default: ignored
            (other, _) => {
                return Err(format!(
                    "vendored serde derive does not support container attribute `{other}`"
                ))
            }
        }
        // Skip a separating comma if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(())
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Splits a token list into top-level comma-separated chunks, treating `<...>`
/// nesting as opaque (groups are already atomic token trees).
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream.into_iter().collect()) {
        let mut i = 0;
        let serde_attrs = collect_attrs(&chunk, &mut i);
        let default = serde_attrs.iter().any(
            |a| matches!(a.first(), Some(TokenTree::Ident(id)) if id.to_string() == "default"),
        );
        skip_visibility(&chunk, &mut i);
        let name = expect_ident(&chunk, &mut i)?;
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream.into_iter().collect()).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream.into_iter().collect()) {
        let mut i = 0;
        collect_attrs(&chunk, &mut i);
        let name = expect_ident(&chunk, &mut i)?;
        let kind = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen --

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.attrs.into {
        format!(
            "let repr: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&repr)"
        )
    } else {
        match &item.kind {
            Kind::Unit => "::serde::Value::Null".to_string(),
            Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
            Kind::Named(fields) => {
                let mut s = String::from("let mut m = ::serde::Map::new();\n");
                for f in fields {
                    s.push_str(&format!(
                        "m.insert(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0}));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Object(m)");
                s
            }
            Kind::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("a{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(a0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            arms.push_str(&format!(
                                "{name}::{vn}({binds}) => {{\n\
                                 let mut m = ::serde::Map::new();\n\
                                 m.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                                 ::serde::Value::Object(m)\n}}\n",
                                binds = binds.join(", ")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                            for f in fields {
                                inner.push_str(&format!(
                                    "fm.insert(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}));\n",
                                    f.name
                                ));
                            }
                            arms.push_str(&format!(
                                "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                                 let mut m = ::serde::Map::new();\n\
                                 m.insert(::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(fm));\n\
                                 ::serde::Value::Object(m)\n}}\n",
                                binds = binds.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_from_map(container: &str, f: &Field) -> String {
    let n = &f.name;
    if f.default {
        format!(
            "{n}: match m.get(\"{n}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => ::std::default::Default::default(),\n}},\n"
        )
    } else {
        // Absent fields deserialize from Null so `Option` fields tolerate
        // omission; everything else reports a missing-field error.
        format!(
            "{n}: match m.get(\"{n}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => \
             ::serde::Deserialize::from_value(&::serde::Value::Null).map_err(|_| \
             ::serde::DeError::custom(\"missing field `{n}` in `{container}`\"))?,\n}},\n"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from) = &item.attrs.from {
        format!(
            "let repr: {from} = ::serde::Deserialize::from_value(v)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(repr))"
        )
    } else {
        match &item.kind {
            Kind::Unit => format!("::std::result::Result::Ok({name})"),
            Kind::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Kind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                    .collect();
                format!(
                    "let arr = v.as_array().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected array for `{name}`\"))?;\n\
                     if arr.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"wrong tuple arity for `{name}`\"));\n}}\n\
                     ::std::result::Result::Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            }
            Kind::Named(fields) => {
                let mut s = format!(
                    "let m = v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for `{name}`\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n"
                );
                for f in fields {
                    s.push_str(&field_from_map(name, f));
                }
                s.push_str("})");
                s
            }
            Kind::Enum(variants) => {
                let mut str_arms = String::new();
                let mut obj_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            str_arms.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                            ));
                        }
                        VariantKind::Tuple(1) => {
                            obj_arms.push_str(&format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(inner)?)),\n"
                            ));
                        }
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            obj_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected array for variant \
                                 `{name}::{vn}`\"))?;\n\
                                 if arr.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"wrong arity for variant `{name}::{vn}`\"));\n}}\n\
                                 ::std::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                                elems = elems.join(", ")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            let mut inner_body = format!(
                                "let m = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected object for variant \
                                 `{name}::{vn}`\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{\n"
                            );
                            for f in fields {
                                inner_body.push_str(&field_from_map(name, f));
                            }
                            inner_body.push_str("})");
                            obj_arms.push_str(&format!("\"{vn}\" => {{\n{inner_body}\n}}\n"));
                        }
                    }
                }
                format!(
                    "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n{str_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                     \"unknown variant `{{other}}` of `{name}`\"))),\n}},\n\
                     ::serde::Value::Object(m) => {{\n\
                     let (k, inner) = m.iter().next().ok_or_else(|| \
                     ::serde::DeError::custom(\"empty variant object for `{name}`\"))?;\n\
                     match k.as_str() {{\n{obj_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                     \"unknown variant `{{other}}` of `{name}`\"))),\n}}\n}}\n\
                     other => ::std::result::Result::Err(::serde::DeError::custom(format!(\
                     \"expected string or object for `{name}`, found {{other:?}}\"))),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
