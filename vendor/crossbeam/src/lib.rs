//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used here,
//! and only in SPSC/MPSC mode (receivers are never cloned), so
//! `std::sync::mpsc` is a faithful substitute.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(21u32).unwrap();
        });
        tx.send(21u32).unwrap();
        h.join().unwrap();
        assert_eq!(rx.try_recv().unwrap() + rx.try_recv().unwrap(), 42);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }
}
