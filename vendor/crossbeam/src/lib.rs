//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, bounded, Sender, Receiver}` is
//! used here, and only in SPSC/MPSC mode (receivers are never cloned), so
//! `std::sync::mpsc` is a faithful substitute. Like the real crossbeam,
//! `unbounded` and `bounded` return the *same* `Sender`/`Receiver` types;
//! the bounded flavor wraps `std::sync::mpsc::sync_channel` and reports
//! capacity exhaustion through [`Sender::try_send`].

pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// The sending half of a channel (unbounded or bounded).
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(s) => Flavor::Unbounded(s.clone()),
                Flavor::Bounded(s) => Flavor::Bounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message when the receiving half has disconnected.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(s) => s.send(t),
                Flavor::Bounded(s) => s.send(t),
            }
        }

        /// Attempts to send without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded channel is at capacity,
        /// [`TrySendError::Disconnected`] when the receiver is gone; both
        /// hand the message back.
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Flavor::Unbounded(s) => s
                    .send(t)
                    .map_err(|SendError(v)| TrySendError::Disconnected(v)),
                Flavor::Bounded(s) => s.try_send(t),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Attempts to receive without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is waiting,
        /// [`TryRecvError::Disconnected`] when all senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receives a message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Fails when all senders have disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(Flavor::Unbounded(s)), Receiver(r))
    }

    /// Creates a bounded MPSC channel holding at most `cap` messages
    /// (`cap` is clamped to ≥ 1; rendezvous channels are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::sync_channel(cap.max(1));
        (Sender(Flavor::Bounded(s)), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(21u32).unwrap();
        });
        tx.send(21u32).unwrap();
        h.join().unwrap();
        assert_eq!(rx.try_recv().unwrap() + rx.try_recv().unwrap(), 42);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn bounded_reports_full_and_hands_message_back() {
        let (tx, rx) = bounded(2);
        tx.try_send(1u32).unwrap();
        tx.try_send(2u32).unwrap();
        match tx.try_send(3u32) {
            Err(TrySendError::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv().unwrap(), 1);
        tx.try_send(3u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn bounded_disconnect_detected() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(tx.try_send(7), Err(TrySendError::Disconnected(7))));
    }
}
