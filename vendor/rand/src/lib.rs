//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses: `StdRng` (a
//! xoshiro256++ generator seeded via SplitMix64), `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle,
//! choose}`. Deterministic for a given seed, across platforms.
//!
//! Note: the streams differ from the real `rand` crate's `StdRng` (ChaCha12),
//! so seeded test vectors are stable only within this workspace.

pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling and choosing (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

use rngs::StdRng;

/// Types constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 to fill the state, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Random number generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from uniform random bits (stand-in for sampling with the
/// `Standard` distribution).
pub trait Standard {
    /// Samples one value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}
impl Standard for f32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}
impl Standard for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
