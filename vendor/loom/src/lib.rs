//! Offline stand-in for [`loom`](https://docs.rs/loom): permutation-based
//! model checking of concurrent code, with the API subset the workspace
//! needs. Like the other `vendor/` crates it is a from-scratch,
//! std-backed implementation so the workspace builds without network
//! access.
//!
//! # Supported API
//!
//! * [`model`] — run a closure under every explored thread schedule,
//! * [`thread::spawn`], [`thread::JoinHandle`], [`thread::yield_now`],
//! * [`sync::Arc`] (re-export of `std`), [`sync::Mutex`],
//! * [`sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering}`].
//!
//! # How it differs from real loom
//!
//! Threads run as real OS threads but are *serialized* by a cooperative
//! scheduler: exactly one thread runs at a time, and every atomic or lock
//! operation is a scheduling point where the scheduler picks the next
//! runnable thread. The schedule space is explored exhaustively by
//! depth-first replay of decision prefixes, bounded by the
//! `LOOM_MAX_ITER` environment variable (default 100 000 executions).
//!
//! Memory is sequentially consistent: `Ordering` arguments are accepted
//! but not weakened. The checker therefore finds interleaving bugs (lost
//! updates, publish-before-initialize races at the scheduling level,
//! deadlocks — reported as a panic naming the schedule) but not bugs that
//! require C11 weak-memory reordering, which real loom also models.
//!
//! `yield_now` marks the calling thread as *yielded*: it is rescheduled
//! only after some other thread has taken a step (or when it is the only
//! live thread). This keeps spin-wait loops' schedule spaces finite.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Marker panic payload used to unwind secondary threads once an execution
/// has failed; filtered out when reporting so the original panic wins.
struct AbortToken;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Eligible to be scheduled.
    Runnable,
    /// Called `yield_now`; eligible only once another thread has run.
    Yielded,
    /// Waiting for the thread with the given id to finish.
    JoinBlocked(usize),
    /// Waiting for the lock with the given id to be released.
    LockBlocked(usize),
    /// Finished (normally or by panic).
    Finished,
}

#[derive(Debug)]
struct SchedState {
    threads: Vec<TState>,
    /// Thread id currently allowed to run (`usize::MAX`: none).
    current: usize,
    /// Threads not yet `Finished`.
    live: usize,
    /// Choice prefix replayed from the previous execution.
    replay: Vec<usize>,
    /// `(chosen index, candidate count)` per decision of this execution.
    trace: Vec<(usize, usize)>,
    decision: usize,
    abort: bool,
    failure: Option<String>,
}

struct Scheduler {
    state: StdMutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    fn new(replay: Vec<usize>) -> Self {
        Self {
            state: StdMutex::new(SchedState {
                threads: Vec::new(),
                current: usize::MAX,
                live: 0,
                replay,
                trace: Vec::new(),
                decision: 0,
                abort: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Locks the scheduler state, recovering from poisoning (a panicking
    /// model thread must not wedge the whole exploration).
    fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(TState::Runnable);
        st.live += 1;
        st.threads.len() - 1
    }

    /// Picks the next thread to run. Called with the state lock held.
    fn schedule_next(&self, st: &mut SchedState) {
        if st.live == 0 {
            st.current = usize::MAX;
            self.cv.notify_all();
            return;
        }
        let mut cands: Vec<usize> = (0..st.threads.len())
            .filter(|&i| st.threads[i] == TState::Runnable)
            .collect();
        if cands.is_empty() {
            // Only yielded threads left: let them re-check their condition.
            cands = (0..st.threads.len())
                .filter(|&i| st.threads[i] == TState::Yielded)
                .collect();
        }
        if cands.is_empty() {
            if st.failure.is_none() {
                let blocked: Vec<usize> = (0..st.threads.len())
                    .filter(|&i| st.threads[i] != TState::Finished)
                    .collect();
                st.failure = Some(format!(
                    "deadlock: every live thread is blocked (threads {blocked:?})"
                ));
            }
            st.abort = true;
            st.current = usize::MAX;
            self.cv.notify_all();
            return;
        }
        let mut choice = if st.decision < st.replay.len() {
            st.replay[st.decision]
        } else {
            0
        };
        if choice >= cands.len() {
            choice = cands.len() - 1;
        }
        st.trace.push((choice, cands.len()));
        st.decision += 1;
        // A step is being taken: yielded threads become runnable again.
        for t in st.threads.iter_mut() {
            if *t == TState::Yielded {
                *t = TState::Runnable;
            }
        }
        st.current = cands[choice];
        self.cv.notify_all();
    }

    /// A scheduling point: parks the calling thread in `entry` state, lets
    /// the scheduler pick the next thread, and returns once this thread is
    /// scheduled again. Panics (with [`AbortToken`]) if the execution was
    /// aborted.
    fn yield_point(&self, me: usize, entry: TState) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st.threads[me] = entry;
        self.schedule_next(&mut st);
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.current == me {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[me] = TState::Runnable;
    }

    /// Initial park of a freshly spawned thread. Returns `false` if the
    /// execution aborted before the thread ever ran.
    fn wait_until_scheduled(&self, me: usize) -> bool {
        let mut st = self.lock_state();
        loop {
            if st.abort {
                return false;
            }
            if st.current == me {
                st.threads[me] = TState::Runnable;
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish_thread(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me] = TState::Finished;
        st.live -= 1;
        for t in st.threads.iter_mut() {
            if *t == TState::JoinBlocked(me) {
                *t = TState::Runnable;
            }
        }
        if !st.abort && (st.current == me || st.current == usize::MAX) {
            self.schedule_next(&mut st);
        }
        self.cv.notify_all();
    }

    fn is_finished(&self, id: usize) -> bool {
        self.lock_state().threads[id] == TState::Finished
    }

    fn unblock_lock(&self, lock_id: usize) {
        let mut st = self.lock_state();
        for t in st.threads.iter_mut() {
            if *t == TState::LockBlocked(lock_id) {
                *t = TState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    fn record_failure(&self, msg: String) {
        let mut st = self.lock_state();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Kicks off an execution by making the first scheduling decision.
    fn start(&self) {
        let mut st = self.lock_state();
        self.schedule_next(&mut st);
    }

    fn wait_done(&self) {
        let mut st = self.lock_state();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn outcome(&self) -> (Option<String>, Vec<(usize, usize)>) {
        let st = self.lock_state();
        (st.failure.clone(), st.trace.clone())
    }
}

thread_local! {
    /// The scheduler and thread id of the current OS thread, when it is a
    /// model thread of an active execution.
    static CURRENT: RefCell<Option<(StdArc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn handle() -> Option<(StdArc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<AbortToken>().is_some()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Spawns the root model thread of one execution.
fn spawn_root<F: Fn() + Send + Sync + 'static>(
    sched: &StdArc<Scheduler>,
    f: StdArc<F>,
) -> std::thread::JoinHandle<()> {
    let id = sched.register_thread();
    let s2 = StdArc::clone(sched);
    std::thread::spawn(move || {
        CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&s2), id)));
        if s2.wait_until_scheduled(id) {
            if let Err(e) = catch_unwind(AssertUnwindSafe(|| f())) {
                if !is_abort(e.as_ref()) {
                    s2.record_failure(panic_message(e.as_ref()));
                }
            }
        }
        s2.finish_thread(id);
    })
}

/// Explores the thread schedules of `f`: the closure is executed repeatedly,
/// once per schedule, until the decision tree is exhausted (or the
/// `LOOM_MAX_ITER` execution bound — default 100 000 — is hit, in which
/// case a note is printed and exploration stops).
///
/// # Panics
///
/// Panics if any execution panics (assertion failures inside the model) or
/// deadlocks, reporting the failing schedule as a choice sequence.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let max_iter: usize = std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let mut replay: Vec<usize> = Vec::new();
    let mut iters = 0usize;
    loop {
        iters += 1;
        let sched = StdArc::new(Scheduler::new(std::mem::take(&mut replay)));
        let root = spawn_root(&sched, StdArc::clone(&f));
        sched.start();
        sched.wait_done();
        let _ = root.join();
        let (failure, trace) = sched.outcome();
        if let Some(msg) = failure {
            let schedule: Vec<usize> = trace.iter().map(|(c, _)| *c).collect();
            panic!("loom model failed on execution {iters}\nschedule: {schedule:?}\n{msg}");
        }
        // Depth-first backtrack: deepest decision with an unexplored branch.
        let next = trace
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (c, n))| c + 1 < *n)
            .map(|(i, (c, _))| {
                let mut r: Vec<usize> = trace[..i].iter().map(|(c, _)| *c).collect();
                r.push(c + 1);
                r
            });
        match next {
            Some(r) if iters < max_iter => replay = r,
            Some(_) => {
                eprintln!(
                    "loom: stopping exploration after {iters} executions (LOOM_MAX_ITER bound)"
                );
                break;
            }
            None => break,
        }
    }
}

pub mod thread {
    //! Model-checked threads: [`spawn`], [`JoinHandle`], [`yield_now`].

    use super::*;

    /// Handle to a model thread, returned by [`spawn`].
    pub struct JoinHandle<T> {
        id: usize,
        result: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
        os: std::thread::JoinHandle<()>,
    }

    impl<T> JoinHandle<T> {
        /// Waits (yielding to the scheduler) until the thread finishes and
        /// returns its result; `Err` if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            let (sched, me) = handle().expect("loom::thread::JoinHandle::join outside model");
            sched.yield_point(me, TState::Runnable);
            while !sched.is_finished(self.id) {
                sched.yield_point(me, TState::JoinBlocked(self.id));
            }
            let _ = self.os.join();
            self.result
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("joined thread stored a result")
        }
    }

    /// Spawns a new model thread; must be called from inside [`super::model`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, me) = handle().expect("loom::thread::spawn requires loom::model");
        let id = sched.register_thread();
        let result: StdArc<StdMutex<Option<std::thread::Result<T>>>> =
            StdArc::new(StdMutex::new(None));
        let r2 = StdArc::clone(&result);
        let s2 = StdArc::clone(&sched);
        let os = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&s2), id)));
            if s2.wait_until_scheduled(id) {
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                    }
                    Err(e) => {
                        if !is_abort(e.as_ref()) {
                            s2.record_failure(panic_message(e.as_ref()));
                        }
                        *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(e));
                    }
                }
            }
            s2.finish_thread(id);
        });
        // Spawning is itself a scheduling point: the child may run first.
        sched.yield_point(me, TState::Runnable);
        JoinHandle { id, result, os }
    }

    /// Hints that the thread cannot progress: it is rescheduled only after
    /// another thread has taken a step, keeping spin loops finite.
    pub fn yield_now() {
        if let Some((sched, me)) = handle() {
            sched.yield_point(me, TState::Yielded);
        } else {
            std::thread::yield_now();
        }
    }
}

pub mod sync {
    //! Model-checked synchronization primitives.

    use super::*;
    use std::sync::atomic::AtomicBool as StdAtomicBool;

    pub use std::sync::Arc;

    static NEXT_LOCK_ID: StdAtomicUsize = StdAtomicUsize::new(0);

    /// A mutex whose `lock` is a scheduling point; contention parks the
    /// thread until the holder releases.
    pub struct Mutex<T> {
        id: usize,
        flag: StdAtomicBool,
        inner: StdMutex<T>,
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<StdMutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(value: T) -> Self {
            Self {
                id: NEXT_LOCK_ID.fetch_add(1, StdOrdering::Relaxed),
                flag: StdAtomicBool::new(false),
                inner: StdMutex::new(value),
            }
        }

        /// Acquires the mutex. Never returns `Err`: poisoning is not
        /// modeled (a panicking model thread aborts the whole execution).
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            if let Some((sched, me)) = handle() {
                sched.yield_point(me, TState::Runnable);
                while self.flag.swap(true, StdOrdering::SeqCst) {
                    sched.yield_point(me, TState::LockBlocked(self.id));
                }
            } else {
                self.flag.store(true, StdOrdering::SeqCst);
            }
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
            })
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard live")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard live")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None;
            self.lock.flag.store(false, StdOrdering::SeqCst);
            if let Some((sched, _)) = handle() {
                sched.unblock_lock(self.lock.id);
            }
        }
    }

    pub mod atomic {
        //! Atomics whose every operation is a scheduling point.

        use super::super::{handle, TState};

        pub use std::sync::atomic::Ordering;

        fn yield_here() {
            if let Some((sched, me)) = handle() {
                sched.yield_point(me, TState::Runnable);
            }
        }

        macro_rules! atomic_wrapper {
            ($(#[$meta:meta])* $name:ident, $std:ty, $val:ty) => {
                $(#[$meta])*
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Creates a new atomic with the given initial value.
                    pub const fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Atomic load (scheduling point).
                    pub fn load(&self, order: Ordering) -> $val {
                        yield_here();
                        self.0.load(order)
                    }

                    /// Atomic store (scheduling point).
                    pub fn store(&self, v: $val, order: Ordering) {
                        yield_here();
                        self.0.store(v, order)
                    }

                    /// Atomic swap (scheduling point).
                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        yield_here();
                        self.0.swap(v, order)
                    }

                    /// Atomic compare-exchange (scheduling point).
                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        yield_here();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        atomic_wrapper!(
            /// Model-checked `AtomicBool`.
            AtomicBool,
            std::sync::atomic::AtomicBool,
            bool
        );
        atomic_wrapper!(
            /// Model-checked `AtomicU64`.
            AtomicU64,
            std::sync::atomic::AtomicU64,
            u64
        );
        atomic_wrapper!(
            /// Model-checked `AtomicUsize`.
            AtomicUsize,
            std::sync::atomic::AtomicUsize,
            usize
        );

        macro_rules! atomic_arith {
            ($name:ident, $val:ty) => {
                impl $name {
                    /// Atomic add, returning the previous value
                    /// (scheduling point).
                    pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                        yield_here();
                        self.0.fetch_add(v, order)
                    }

                    /// Atomic max, returning the previous value
                    /// (scheduling point).
                    pub fn fetch_max(&self, v: $val, order: Ordering) -> $val {
                        yield_here();
                        self.0.fetch_max(v, order)
                    }
                }
            };
        }

        atomic_arith!(AtomicU64, u64);
        atomic_arith!(AtomicUsize, usize);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use super::thread;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn explores_lost_update_interleaving() {
        // Two threads perform a non-atomic read-modify-write; exploration
        // must find both the serialized outcome (2) and the lost update (1).
        let outcomes = std::sync::Arc::new(StdMutex::new(HashSet::new()));
        let o2 = outcomes.clone();
        super::model(move || {
            let c = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            o2.lock().unwrap().insert(c.load(Ordering::SeqCst));
        });
        let seen = outcomes.lock().unwrap();
        assert!(
            seen.contains(&2),
            "serialized outcome not explored: {seen:?}"
        );
        assert!(seen.contains(&1), "lost update not explored: {seen:?}");
    }

    #[test]
    fn mutex_preserves_mutual_exclusion() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn yielding_spin_loop_terminates() {
        super::model(|| {
            let done = Arc::new(AtomicBool::new(false));
            let d2 = Arc::clone(&done);
            let h = thread::spawn(move || d2.store(true, Ordering::SeqCst));
            while !done.load(Ordering::SeqCst) {
                thread::yield_now();
            }
            h.join().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn detects_lock_order_deadlock() {
        super::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            h.join().unwrap();
        });
    }
}
