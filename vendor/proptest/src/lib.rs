//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: `Strategy` with `prop_map`,
//! `any::<T>()`, integer range strategies, tuple strategies, the
//! `proptest!` macro with `#![proptest_config(...)]`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from seeded
//! random values (no shrinking); failures report the case number via the
//! panic message so a run is reproducible.

use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case generator.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Derives the RNG for case `case` of the test named `test`.
    pub fn for_case(test: &str, case: u32) -> Self {
        // FNV-1a over the test name so each test gets its own stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
            ),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a default whole-domain strategy (stand-in for `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Just-this-value strategy (stand-in for `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Defines `#[test]` functions over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, seed in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    #[allow(unused_mut)]
                    let mut run = || -> Result<(), String> { $body Ok(()) };
                    if let Err(msg) = run() {
                        panic!("proptest case {case} of {} failed: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err(format!(
                        "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                        stringify!($left),
                        stringify!($right)
                    ));
                }
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err(format!(
                        "{}\n  left: {l:?}\n right: {r:?}",
                        format!($($fmt)+)
                    ));
                }
            }
        }
    }};
}

/// Everything a test file needs, as in `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(n in 2usize..=5usize, seed in any::<u64>()) {
            prop_assert!((2..=5).contains(&n));
            let _ = seed;
        }

        #[test]
        fn prop_map_applies(v in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 20);
        }

        #[test]
        fn tuples_compose((a, b) in (0u32..4, 10i64..20)) {
            prop_assert!(a < 4);
            prop_assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
