//! Offline stand-in for `serde_json`: JSON text rendering and parsing over
//! the vendored `serde` [`Value`] tree.
//!
//! Supports exactly what the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`], and [`from_slice`].

pub use serde::{Map, Number, Value};

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------- writing --

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::I(v) => out.push_str(&v.to_string()),
        Number::U(v) => out.push_str(&v.to_string()),
        Number::F(v) if v.is_finite() => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                // Keep a trailing .0 so floats survive the roundtrip as floats.
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Num(Number::I(-42)));
        assert_eq!(parse("2.5").unwrap(), Value::Num(Number::F(2.5)));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::Num(Number::U(u64::MAX))
        );
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn nested_roundtrip() {
        let v: Vec<(u64, String, Option<f64>)> = vec![
            (1, "alpha \"quoted\"".into(), Some(2.5)),
            (u64::MAX, "π unicode".into(), None),
        ];
        let text = to_string(&v).unwrap();
        let back: Vec<(u64, String, Option<f64>)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(from_str::<u64>("\"nope\"").is_err());
    }

    #[test]
    fn float_integers_keep_fraction_marker() {
        let text = to_string(&vec![1.0f64]).unwrap();
        assert_eq!(text, "[1.0]");
    }
}
