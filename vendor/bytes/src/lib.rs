//! Offline stand-in for the `bytes` crate (the subset this workspace uses).
//!
//! `BytesMut` is a growable write buffer, `Bytes` an immutable read cursor
//! over a shared allocation; `Buf`/`BufMut` provide the big-endian accessors
//! used by `muse-runtime::codec`.

use std::sync::Arc;

/// Read-side cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Current readable bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write-side accessors (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable write buffer.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Extracts the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable shared byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16(300);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_i64(-42);
        buf.put_f64(2.5);
        buf.put_slice(b"abc");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 300);
        assert_eq!(b.get_u32(), 70_000);
        assert_eq!(b.get_u64(), 1 << 40);
        assert_eq!(b.get_i64(), -42);
        assert_eq!(b.get_f64(), 2.5);
        let mut s = [0u8; 3];
        b.copy_to_slice(&mut s);
        assert_eq!(&s, b"abc");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn buf_via_mut_ref() {
        fn take(mut buf: impl Buf) -> u16 {
            buf.get_u16()
        }
        let mut buf = BytesMut::new();
        buf.put_u16(9);
        buf.put_u16(11);
        let mut b = buf.freeze();
        assert_eq!(take(&mut b), 9);
        assert_eq!(b.get_u16(), 11);
    }
}
