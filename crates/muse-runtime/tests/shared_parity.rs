//! Property-based parity of shared multi-query evaluation.
//!
//! For randomized workloads over `AND`, `SEQ`, `OR`, and `NSEQ` patterns —
//! with deliberate duplicate registrations and predicate-band variants —
//! the shared deployment (structurally identical projections collapsed
//! into one physical task fanning out to many logical sinks, sources
//! looked up through the discrimination index) must deliver exactly the
//! same per-query match sets as the independent deployment that gives
//! every graph vertex its own physical task.

use muse_core::algorithms::amuse::AMuseConfig;
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::catalog::Catalog;
use muse_core::event::{Timestamp, Value};
use muse_core::graph::PlanContext;
use muse_core::network::{Network, NetworkBuilder};
use muse_core::query::{CmpOp, Pattern, Predicate};
use muse_core::types::{AttrId, EventTypeId, NodeId, PrimId};
use muse_core::workload::Workload;
use muse_runtime::deploy::{Deployment, Sharing};
use muse_runtime::matcher::Match;
use muse_runtime::sim::{run_simulation, SimConfig};
use muse_sim::traces::{generate_traces, TraceConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn t(i: u16) -> EventTypeId {
    EventTypeId(i)
}

fn network() -> Network {
    NetworkBuilder::new(3, 5)
        .node(NodeId(0), [t(0), t(3)])
        .node(NodeId(1), [t(1), t(4)])
        .node(NodeId(2), [t(2), t(0)])
        .rate(t(0), 4.0)
        .rate(t(1), 4.0)
        .rate(t(2), 3.0)
        .rate(t(3), 2.0)
        .rate(t(4), 2.0)
        .build()
}

/// One pattern recipe: operator kind over a small type selection, plus an
/// optional unary band predicate distinguishing variants of a structure.
#[derive(Debug, Clone)]
struct Recipe {
    kind: u8,
    window: Timestamp,
    band: Option<(i64, i64)>,
}

fn pattern_for(kind: u8) -> (Pattern, Vec<Predicate>) {
    let eq = |a: u8, b: u8| {
        Predicate::binary(
            (PrimId(a), AttrId(0)),
            CmpOp::Eq,
            (PrimId(b), AttrId(0)),
            0.2,
        )
    };
    match kind % 5 {
        0 => (
            Pattern::seq([
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ]),
            vec![eq(0, 1)],
        ),
        1 => (
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            vec![eq(0, 1)],
        ),
        2 => (
            Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(3)),
            ]),
            vec![eq(0, 1)],
        ),
        3 => (
            // OR splits into one OR-free query per alternative inside
            // `Workload::from_patterns`.
            Pattern::or([
                Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::seq([Pattern::leaf(t(3)), Pattern::leaf(t(4))]),
            ]),
            vec![eq(0, 1)],
        ),
        _ => (
            // Predicate-free NSEQ: predicates on negated operators have
            // scope rules of their own, tested elsewhere.
            Pattern::nseq(
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ),
            vec![],
        ),
    }
}

fn build_workload(recipes: &[Recipe]) -> Workload {
    let patterns: Vec<(Pattern, Vec<Predicate>, Timestamp)> = recipes
        .iter()
        .map(|r| {
            let (pattern, mut preds) = pattern_for(r.kind);
            if let Some((lo, hi)) = r.band {
                preds.push(Predicate::unary(
                    PrimId(0),
                    AttrId(1),
                    CmpOp::Ge,
                    Value::Int(lo),
                    0.5,
                ));
                preds.push(Predicate::unary(
                    PrimId(0),
                    AttrId(1),
                    CmpOp::Le,
                    Value::Int(hi),
                    0.5,
                ));
            }
            (pattern, preds, r.window)
        })
        .collect();
    Workload::from_patterns(Catalog::with_anonymous_types(5), patterns)
        .expect("generated patterns are valid")
}

fn fingerprints(matches: &[Vec<Match>]) -> Vec<BTreeSet<Vec<u64>>> {
    matches
        .iter()
        .map(|q| q.iter().map(Match::fingerprint).collect())
        .collect()
}

/// Derives `count` recipes from a seed: operator kind, window, and an
/// optional band predicate per recipe (the vendored proptest stub has no
/// collection strategies, so the recipe list is expanded from a seeded
/// RNG instead).
fn recipes_from_seed(count: usize, seed: u64) -> Vec<Recipe> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let kind = rng.gen_range(0u8..5);
            let window = [50u64, 120, 300][rng.gen_range(0..3usize)];
            let band = if rng.gen_bool(0.5) {
                let lo = rng.gen_range(0i64..8);
                Some((lo, lo + 3))
            } else {
                None
            };
            Recipe { kind, window, band }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shared and independent deployments of the same plan produce
    /// identical per-query match sets — including workloads that contain
    /// exact duplicate registrations (every recipe list is doubled).
    #[test]
    fn shared_matches_independent(
        count in 1usize..4,
        gen_seed in any::<u64>(),
        trace_seed in 0u64..50,
    ) {
        let recipes = recipes_from_seed(count, gen_seed);
        // Duplicate every recipe: duplicates exercise both the planner's
        // structural memoization and sink fanout to many logical queries.
        let mut doubled = recipes.clone();
        doubled.extend(recipes);
        let workload = build_workload(&doubled);
        let net = network();
        let plan = amuse_workload(&workload, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(workload.queries(), &net, &plan.table);
        let shared = Deployment::new_with(&plan.merged, &ctx, Sharing::Shared);
        let independent = Deployment::new_with(&plan.merged, &ctx, Sharing::Independent);
        prop_assert_eq!(&shared.queries, &independent.queries);

        let trace = generate_traces(&net, &TraceConfig {
            duration: 25.0,
            ticks_per_unit: 10.0,
            rate_scale: 1.0,
            key_domain: 3,
            band_domain: 10,
            seed: trace_seed,
        });
        let config = SimConfig::default();
        let shared_report = run_simulation(&shared, &trace, &config);
        let independent_report = run_simulation(&independent, &trace, &config);
        prop_assert_eq!(
            fingerprints(&shared_report.matches),
            fingerprints(&independent_report.matches)
        );
        // Per-sink attribution keeps the aggregate counters equal too.
        prop_assert_eq!(
            shared_report.metrics.sink_matches,
            independent_report.metrics.sink_matches
        );
    }
}
