//! Provenance witness-closure and cross-executor parity.
//!
//! Three properties of the causal provenance tracer:
//!
//! 1. **Witness closure** (property-based): for randomized workloads over
//!    `AND`, `SEQ`, `OR`, and `NSEQ` patterns, filtering the trace down to
//!    exactly a record's witness sequence numbers and replaying it through
//!    a fresh simulation reproduces the recorded match identically.
//! 2. **Absence windows**: NSEQ matches carry non-empty absence windows
//!    naming the negated type, and the full trace really is empty of that
//!    type strictly inside each window.
//! 3. **Executor parity**: the simulator and the threaded executor — with
//!    and without a mid-run crash — record identical provenance sets
//!    (same match hashes, witnesses, and absence windows), because
//!    sampling is keyed on the order-independent match hash.

use muse_core::algorithms::amuse::AMuseConfig;
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::catalog::Catalog;
use muse_core::event::{Event, Timestamp, Value};
use muse_core::graph::PlanContext;
use muse_core::network::{Network, NetworkBuilder};
use muse_core::query::{CmpOp, Pattern, Predicate};
use muse_core::types::{AttrId, EventTypeId, NodeId, PrimId};
use muse_core::workload::Workload;
use muse_runtime::deploy::Deployment;
use muse_runtime::matcher::Match;
use muse_runtime::sim::{run_simulation, SimConfig};
use muse_runtime::telemetry::{RunTelemetry, TelemetrySpec};
use muse_runtime::threaded::{run_threaded, FaultPlan, ThreadedConfig};
use muse_sim::traces::{generate_traces, TraceConfig};
use muse_telemetry::ProvenanceRecord;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

fn t(i: u16) -> EventTypeId {
    EventTypeId(i)
}

fn network() -> Network {
    NetworkBuilder::new(3, 5)
        .node(NodeId(0), [t(0), t(3)])
        .node(NodeId(1), [t(1), t(4)])
        .node(NodeId(2), [t(2), t(0)])
        .rate(t(0), 4.0)
        .rate(t(1), 4.0)
        .rate(t(2), 3.0)
        .rate(t(3), 2.0)
        .rate(t(4), 2.0)
        .build()
}

#[derive(Debug, Clone)]
struct Recipe {
    kind: u8,
    window: Timestamp,
    band: Option<(i64, i64)>,
}

fn pattern_for(kind: u8) -> (Pattern, Vec<Predicate>) {
    let eq = |a: u8, b: u8| {
        Predicate::binary(
            (PrimId(a), AttrId(0)),
            CmpOp::Eq,
            (PrimId(b), AttrId(0)),
            0.2,
        )
    };
    match kind % 5 {
        0 => (
            Pattern::seq([
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ]),
            vec![eq(0, 1)],
        ),
        1 => (
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            vec![eq(0, 1)],
        ),
        2 => (
            Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(3)),
            ]),
            vec![eq(0, 1)],
        ),
        3 => (
            Pattern::or([
                Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::seq([Pattern::leaf(t(3)), Pattern::leaf(t(4))]),
            ]),
            vec![eq(0, 1)],
        ),
        _ => (
            Pattern::nseq(
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ),
            vec![],
        ),
    }
}

fn build_workload(recipes: &[Recipe]) -> Workload {
    let patterns: Vec<(Pattern, Vec<Predicate>, Timestamp)> = recipes
        .iter()
        .map(|r| {
            let (pattern, mut preds) = pattern_for(r.kind);
            if let Some((lo, hi)) = r.band {
                preds.push(Predicate::unary(
                    PrimId(0),
                    AttrId(1),
                    CmpOp::Ge,
                    Value::Int(lo),
                    0.5,
                ));
                preds.push(Predicate::unary(
                    PrimId(0),
                    AttrId(1),
                    CmpOp::Le,
                    Value::Int(hi),
                    0.5,
                ));
            }
            (pattern, preds, r.window)
        })
        .collect();
    Workload::from_patterns(Catalog::with_anonymous_types(5), patterns)
        .expect("generated patterns are valid")
}

fn recipes_from_seed(count: usize, seed: u64) -> Vec<Recipe> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let kind = rng.gen_range(0u8..5);
            let window = [50u64, 120, 300][rng.gen_range(0..3usize)];
            let band = if rng.gen_bool(0.5) {
                let lo = rng.gen_range(0i64..8);
                Some((lo, lo + 3))
            } else {
                None
            };
            Recipe { kind, window, band }
        })
        .collect()
}

fn deploy(recipes: &[Recipe], net: &Network) -> Deployment {
    let workload = build_workload(recipes);
    let plan = amuse_workload(&workload, net, &AMuseConfig::default()).unwrap();
    let ctx = PlanContext::new(workload.queries(), net, &plan.table);
    Deployment::new(&plan.merged, &ctx)
}

fn trace(net: &Network, seed: u64) -> Vec<Event> {
    generate_traces(
        net,
        &TraceConfig {
            duration: 25.0,
            ticks_per_unit: 10.0,
            rate_scale: 1.0,
            key_domain: 3,
            band_domain: 10,
            seed,
        },
    )
}

/// Full sampling into a ring large enough that nothing is evicted at
/// these trace sizes (wide-window AND recipes can emit ~100k matches).
fn full_spec() -> TelemetrySpec {
    TelemetrySpec {
        provenance_sample: 1,
        provenance_capacity: 1 << 20,
        ..TelemetrySpec::default()
    }
}

/// Executor configs with identical eviction horizons. The workloads here
/// mix windows (50..300), so the threaded chunk must be pinned to the
/// *smallest* window and the slack widened to cover one chunk of
/// inter-node skew for every query (`slack · window ≥ chunk + window`);
/// the default chunk (largest window) would silently evict small-window
/// partials mid-skew and lose matches the simulator keeps.
const CHUNK: Timestamp = 50;
const SLACK: f64 = 8.0;

fn sim_config(spec: TelemetrySpec) -> SimConfig {
    SimConfig {
        slack: SLACK,
        telemetry: Some(spec),
        ..SimConfig::default()
    }
}

fn threaded_config(spec: TelemetrySpec) -> ThreadedConfig {
    ThreadedConfig {
        slack: SLACK,
        chunk_ticks: Some(CHUNK),
        telemetry: Some(spec),
        ..ThreadedConfig::default()
    }
}

fn seq_key(m: &Match) -> Vec<u64> {
    let mut seqs: Vec<u64> = m.entries().iter().map(|(_, e)| e.seq).collect();
    seqs.sort_unstable();
    seqs
}

fn find_recorded<'a>(matches: &'a [Vec<Match>], rec: &ProvenanceRecord) -> Option<&'a Match> {
    let mut want = rec.witness_seqs();
    want.sort_unstable();
    matches
        .get(rec.query as usize)?
        .iter()
        .find(|m| seq_key(m) == want)
}

/// The closure property of one record: replaying only the witness events
/// reproduces the recorded match (full structural equality, not just the
/// seq fingerprint).
fn closure_holds(
    deployment: &Deployment,
    events: &[Event],
    rec: &ProvenanceRecord,
    original: &Match,
) -> bool {
    let seqs: BTreeSet<u64> = rec.witness_seqs().into_iter().collect();
    let filtered: Vec<Event> = events
        .iter()
        .filter(|e| seqs.contains(&e.seq))
        .cloned()
        .collect();
    if filtered.len() != seqs.len() {
        return false;
    }
    let replay = run_simulation(deployment, &filtered, &SimConfig::default());
    find_recorded(&replay.matches, rec) == Some(original)
}

/// One record's comparable payload: witness seqs in slot order plus
/// absence windows as `(ty, lo, hi)` tuples.
type ProvenanceKey = (Vec<u64>, BTreeSet<(u16, u64, u64)>);

/// Canonical comparable form of one run's provenance: match hash →
/// (witness seqs in slot order, absence windows as tuples).
fn provenance_index(run: &RunTelemetry) -> BTreeMap<u64, ProvenanceKey> {
    run.provenance
        .records()
        .map(|rec| {
            let absence: BTreeSet<(u16, u64, u64)> =
                rec.absence.iter().map(|a| (a.ty, a.lo, a.hi)).collect();
            (rec.match_hash, (rec.witness_seqs(), absence))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every recorded sink match is explained by its witness set alone:
    /// replaying just those events through a fresh simulation reproduces
    /// the match. Bounded per case to keep replay counts sane.
    #[test]
    fn witness_replay_reproduces_match(
        count in 1usize..4,
        gen_seed in any::<u64>(),
        trace_seed in 0u64..50,
    ) {
        let net = network();
        let recipes = recipes_from_seed(count, gen_seed);
        let deployment = deploy(&recipes, &net);
        let events = trace(&net, trace_seed);
        let config = SimConfig {
            telemetry: Some(full_spec()),
            ..SimConfig::default()
        };
        let mut report = run_simulation(&deployment, &events, &config);
        let run = report.telemetry.take().expect("telemetry requested");
        prop_assert_eq!(run.provenance.dropped(), 0, "ring must not evict");
        prop_assert_eq!(run.provenance.len() as u64, report.metrics.sink_matches);
        for rec in run.provenance.records().take(40) {
            let original = find_recorded(&report.matches, rec);
            prop_assert!(original.is_some(), "record {:016x} names no delivered match", rec.match_hash);
            prop_assert!(
                closure_holds(&deployment, &events, rec, original.unwrap()),
                "witness replay diverged for {:016x} (query {})",
                rec.match_hash,
                rec.query
            );
            // Negation-free queries never carry absence windows; NSEQ
            // sink matches always do (checked exhaustively below).
            if deployment.queries[rec.query as usize].nseq_contexts().is_empty() {
                prop_assert!(rec.absence.is_empty());
            }
        }
    }
}

#[test]
fn nseq_records_carry_valid_absence_windows() {
    let net = network();
    // A single pure-NSEQ workload (recipe kind 4): every sink match must
    // explain its negation with at least one absence window.
    let recipes = vec![Recipe {
        kind: 4,
        window: 300,
        band: None,
    }];
    let deployment = deploy(&recipes, &net);
    let events = trace(&net, 9);
    let config = SimConfig {
        telemetry: Some(full_spec()),
        ..SimConfig::default()
    };
    let mut report = run_simulation(&deployment, &events, &config);
    let run = report.telemetry.take().unwrap();
    assert!(report.metrics.sink_matches > 0, "workload must match");
    let mut checked = 0usize;
    for rec in run.provenance.records() {
        assert!(
            !rec.absence.is_empty(),
            "NSEQ record {:016x} lost its absence window",
            rec.match_hash
        );
        for a in &rec.absence {
            assert!(a.lo <= a.hi, "window must be ordered");
            // The full trace honors the window: no event of the negated
            // type strictly inside it (otherwise the match would not have
            // been emitted in the first place — this pins the recorded
            // window to the matcher's actual semantics).
            let violation = events
                .iter()
                .any(|e| e.ty.0 == a.ty && e.time > a.lo && e.time < a.hi);
            assert!(
                !violation,
                "record {:016x}: negated type {} present inside ({}, {})",
                rec.match_hash, a.ty, a.lo, a.hi
            );
        }
        let original = find_recorded(&report.matches, rec).expect("delivered");
        assert!(closure_holds(&deployment, &events, rec, original));
        checked += 1;
    }
    assert!(checked > 0, "sampling at 1 must record matches");
}

#[test]
fn sim_and_threaded_record_identical_provenance() {
    let net = network();
    let recipes = recipes_from_seed(3, 7);
    let deployment = deploy(&recipes, &net);
    let events = trace(&net, 13);
    let mut sim_report = run_simulation(&deployment, &events, &sim_config(full_spec()));
    let threaded_report = run_threaded(&deployment, &events, &threaded_config(full_spec()));
    let sim_run = sim_report.telemetry.take().unwrap();
    let threaded_run = threaded_report.telemetry.expect("telemetry requested");
    let sim_idx = provenance_index(&sim_run);
    let threaded_idx = provenance_index(&threaded_run);
    assert!(!sim_idx.is_empty(), "workload must record matches");
    assert_eq!(
        sim_idx, threaded_idx,
        "executors must record identical witness sets and absence windows"
    );
}

#[test]
fn sampling_is_deterministic_across_executors() {
    let net = network();
    let recipes = recipes_from_seed(3, 7);
    let deployment = deploy(&recipes, &net);
    let events = trace(&net, 13);
    let sampled_spec = TelemetrySpec {
        provenance_sample: 4,
        provenance_capacity: 1 << 20,
        ..TelemetrySpec::default()
    };
    let mut sim_report = run_simulation(&deployment, &events, &sim_config(sampled_spec.clone()));
    let threaded_report = run_threaded(&deployment, &events, &threaded_config(sampled_spec));
    let sim_idx = provenance_index(&sim_report.telemetry.take().unwrap());
    let threaded_idx = provenance_index(&threaded_report.telemetry.unwrap());
    assert_eq!(sim_idx, threaded_idx, "hash-keyed sampling must agree");
    for hash in sim_idx.keys() {
        assert_eq!(hash % 4, 0, "sampled hash must be in the 1-in-4 class");
    }
}

#[test]
fn crash_and_replay_preserves_provenance() {
    let net = network();
    let recipes = recipes_from_seed(3, 7);
    let deployment = deploy(&recipes, &net);
    let events = trace(&net, 13);
    let baseline = run_threaded(&deployment, &events, &threaded_config(full_spec()));
    let baseline_idx = provenance_index(baseline.telemetry.as_ref().unwrap());
    assert!(!baseline_idx.is_empty(), "workload must record matches");
    for node in 0..3usize {
        let local = events.iter().filter(|e| e.origin.index() == node).count() as u64;
        let config = ThreadedConfig {
            fault: Some(FaultPlan {
                node,
                crash_at: local / 2,
                restart_delay: Duration::ZERO,
            }),
            ..threaded_config(full_spec())
        };
        let faulted = run_threaded(&deployment, &events, &config);
        assert_eq!(
            faulted.metrics.recovery.crashes, 1,
            "crash on node {node} must fire"
        );
        assert!(
            !faulted.flight_dumps.is_empty(),
            "crash must publish a flight dump"
        );
        for dump in &faulted.flight_dumps {
            let decoded = muse_runtime::flight::decode_dump(dump).expect("dump decodes");
            assert!(!decoded.records.is_empty(), "dump must carry records");
        }
        // Telemetry is observational, not checkpointed: the crashed
        // chunk's re-execution may record a match twice, so parity is on
        // the hash-keyed *set* (dedup is the ring's documented consumer
        // contract), not on record counts.
        let faulted_idx = provenance_index(faulted.telemetry.as_ref().unwrap());
        assert_eq!(
            faulted_idx, baseline_idx,
            "crash on node {node} changed the recorded provenance set"
        );
    }
}
