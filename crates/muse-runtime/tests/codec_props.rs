//! Property suite for the binary wire codec.
//!
//! Two invariants over randomized matches (all three value kinds, varied
//! payload shapes and entry counts):
//! 1. `decode_match(encode_match(m)) == m` — lossless roundtrip,
//! 2. `encoded_len(m) == encode_match(m).len()` — the arithmetic size the
//!    executors use for byte accounting stays in lockstep with the actual
//!    encoder (the batched send path never encodes, so this equality is
//!    what keeps `bytes_sent` honest).

use muse_core::event::{Event, Payload, Value};
use muse_core::types::{AttrId, EventTypeId, NodeId, PrimId};
use muse_runtime::codec::{decode_match, encode_match, encoded_event_len, encoded_len};
use muse_runtime::matcher::Match;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u8..3) {
        0 => Value::Int(rng.gen::<u64>() as i64),
        // Finite, exactly representable floats (roundtrip uses equality).
        1 => Value::Float((rng.gen::<u32>() as f64 - 2_147_483_648.0) / 8.0),
        _ => {
            let len = rng.gen_range(0usize..16);
            let s: String = (0..len)
                .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
                .collect();
            Value::Str(s)
        }
    }
}

fn random_event(rng: &mut StdRng) -> Event {
    let mut payload = Payload::new();
    for _ in 0..rng.gen_range(0usize..6) {
        payload.set(AttrId(rng.gen_range(0u8..12)), random_value(rng));
    }
    Event::with_payload(
        rng.gen::<u64>(),
        EventTypeId(rng.gen_range(0u16..64)),
        rng.gen::<u64>(),
        NodeId(rng.gen_range(0u16..32)),
        payload,
    )
}

fn random_match(rng: &mut StdRng, max_entries: usize) -> Match {
    let n = rng.gen_range(0..=max_entries);
    Match::new(
        (0..n)
            .map(|_| (PrimId(rng.gen_range(0u8..16)), random_event(rng)))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn match_roundtrips_losslessly(seed in any::<u64>(), max_entries in 0usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_match(&mut rng, max_entries);
        let decoded = decode_match(encode_match(&m));
        prop_assert_eq!(&decoded, &m);
    }

    #[test]
    fn encoded_len_equals_wire_bytes(seed in any::<u64>(), max_entries in 0usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_match(&mut rng, max_entries);
        let wire = encode_match(&m);
        prop_assert_eq!(encoded_len(&m), wire.len());
        // The per-event size decomposes the match size exactly.
        let from_events: usize = 2 + m
            .entries()
            .iter()
            .map(|(_, e)| 1 + encoded_event_len(e))
            .sum::<usize>();
        prop_assert_eq!(from_events, wire.len());
    }

    #[test]
    fn single_event_roundtrips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_event(&mut rng);
        let m = Match::single(PrimId(rng.gen_range(0u8..16)), e.clone());
        let decoded = decode_match(encode_match(&m));
        prop_assert_eq!(decoded.entries().len(), 1);
        prop_assert_eq!(&decoded.entries()[0].1, &e);
    }
}
