//! Simulator-vs-threaded parity on query classes beyond plain SEQ/AND:
//! disjunctions (OR, split into per-alternative queries) and negated
//! sequences (NSEQ, exercising the threaded executor's deferred-negation
//! release), plus batched-vs-naive transport equivalence on both.
//!
//! The simulator processes events in global timestamp order and is the
//! correctness reference; the threaded executor must reproduce its match
//! sets and transmission counts under every transport mode.

use muse_core::algorithms::amuse::AMuseConfig;
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::catalog::Catalog;
use muse_core::event::{Event, Timestamp};
use muse_core::graph::PlanContext;
use muse_core::network::{Network, NetworkBuilder};
use muse_core::query::{Pattern, Predicate};
use muse_core::types::{EventTypeId, NodeId};
use muse_core::workload::Workload;
use muse_runtime::deploy::Deployment;
use muse_runtime::matcher::Match;
use muse_runtime::sim::{run_simulation, SimConfig};
use muse_runtime::threaded::{run_threaded, ThreadedConfig, TransportMode};
use std::collections::BTreeSet;

fn t(i: u16) -> EventTypeId {
    EventTypeId(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}

/// The Fig. 1 network of the paper: three nodes, mixed producers.
fn network() -> Network {
    NetworkBuilder::new(3, 3)
        .node(n(0), [t(0), t(2)])
        .node(n(1), [t(0), t(1)])
        .node(n(2), [t(1)])
        .rate(t(0), 20.0)
        .rate(t(1), 20.0)
        .rate(t(2), 1.0)
        .build()
}

fn trace(network: &Network, seed: u64) -> Vec<Event> {
    muse_sim::traces::generate_traces(
        network,
        &muse_sim::traces::TraceConfig {
            duration: 30.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.05,
            key_domain: 0,
            band_domain: 0,
            seed,
        },
    )
}

/// Splits (for OR), plans, and deploys a pattern workload on the network.
fn deploy(pattern: Pattern, window: Timestamp, network: &Network) -> Deployment {
    let workload = Workload::from_patterns(
        Catalog::with_anonymous_types(3),
        [(pattern, Vec::<Predicate>::new(), window)],
    )
    .expect("pattern builds a workload");
    let plan =
        amuse_workload(&workload, network, &AMuseConfig::default()).expect("aMuSE plans workload");
    let ctx = PlanContext::new(workload.queries(), network, &plan.table);
    Deployment::new(&plan.merged, &ctx)
}

fn fingerprints(matches: &[Match]) -> BTreeSet<Vec<u64>> {
    matches.iter().map(Match::fingerprint).collect()
}

/// OR splits into one query per alternative; NSEQ hosts a negation guard.
fn or_pattern() -> Pattern {
    Pattern::seq([
        Pattern::or([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
        Pattern::leaf(t(2)),
    ])
}

fn nseq_pattern() -> Pattern {
    // Rare first and last (t2, t1 on distinct nodes), frequent negated
    // middle (t0) so the guard actually suppresses candidates.
    Pattern::nseq(
        Pattern::leaf(t(2)),
        Pattern::leaf(t(0)),
        Pattern::leaf(t(1)),
    )
}

fn assert_parity(deployment: &Deployment, events: &[Event], config: &ThreadedConfig, ctx: &str) {
    let sim = run_simulation(deployment, events, &SimConfig::default());
    let threaded = run_threaded(deployment, events, config);
    assert_eq!(
        sim.matches.len(),
        threaded.matches.len(),
        "{ctx}: query count"
    );
    for (q, (s, t)) in sim.matches.iter().zip(&threaded.matches).enumerate() {
        assert_eq!(
            fingerprints(s),
            fingerprints(t),
            "{ctx}: query {q} match sets diverge (sim {} vs threaded {})",
            s.len(),
            t.len()
        );
    }
    assert_eq!(
        sim.metrics.messages_sent, threaded.metrics.messages_sent,
        "{ctx}: network transmissions diverge"
    );
    assert_eq!(
        sim.metrics.sink_matches, threaded.metrics.sink_matches,
        "{ctx}: sink match counts diverge"
    );
    assert_eq!(
        sim.metrics.join.emitted, threaded.metrics.join.emitted,
        "{ctx}: join emission counters diverge"
    );
}

#[test]
fn or_query_threaded_matches_simulator() {
    let net = network();
    let deployment = deploy(or_pattern(), 5_000, &net);
    assert!(
        deployment.queries.len() >= 2,
        "OR must split into one query per alternative"
    );
    let mut total = 0;
    for seed in [7, 23, 41] {
        let events = trace(&net, seed);
        let sim = run_simulation(&deployment, &events, &SimConfig::default());
        total += sim.metrics.sink_matches;
        assert_parity(
            &deployment,
            &events,
            &ThreadedConfig::default(),
            &format!("OR seed {seed}"),
        );
    }
    assert!(total > 0, "OR workload must produce matches");
}

#[test]
fn nseq_query_threaded_matches_simulator() {
    let net = network();
    let deployment = deploy(nseq_pattern(), 5_000, &net);
    let mut total = 0;
    for seed in [5, 17, 29] {
        let events = trace(&net, seed);
        let sim = run_simulation(&deployment, &events, &SimConfig::default());
        total += sim.metrics.sink_matches;
        assert_parity(
            &deployment,
            &events,
            &ThreadedConfig::default(),
            &format!("NSEQ seed {seed}"),
        );
    }
    assert!(total > 0, "NSEQ workload must produce matches");
}

#[test]
fn nseq_guard_actually_suppresses() {
    // Sanity that the negation is load-bearing: the same SEQ without the
    // guard must admit at least as many (and on this trace strictly more)
    // matches than the NSEQ version.
    let net = network();
    let with_guard = deploy(nseq_pattern(), 5_000, &net);
    let without_guard = deploy(
        Pattern::seq([Pattern::leaf(t(2)), Pattern::leaf(t(1))]),
        5_000,
        &net,
    );
    let mut suppressed = false;
    for seed in [5, 17, 29] {
        let events = trace(&net, seed);
        let guarded = run_simulation(&with_guard, &events, &SimConfig::default());
        let open = run_simulation(&without_guard, &events, &SimConfig::default());
        assert!(guarded.metrics.sink_matches <= open.metrics.sink_matches);
        suppressed |= guarded.metrics.sink_matches < open.metrics.sink_matches;
    }
    assert!(
        suppressed,
        "the frequent negated type must suppress at least one match"
    );
}

#[test]
fn naive_transport_parity_on_or_and_nseq() {
    let net = network();
    for (label, pattern) in [("OR", or_pattern()), ("NSEQ", nseq_pattern())] {
        let deployment = deploy(pattern, 5_000, &net);
        let events = trace(&net, 23);
        let batched = run_threaded(&deployment, &events, &ThreadedConfig::default());
        let naive = run_threaded(
            &deployment,
            &events,
            &ThreadedConfig {
                transport: TransportMode::Naive,
                ..ThreadedConfig::default()
            },
        );
        for (q, (b, nv)) in batched.matches.iter().zip(&naive.matches).enumerate() {
            assert_eq!(
                fingerprints(b),
                fingerprints(nv),
                "{label}: query {q} diverges between transports"
            );
        }
        assert_eq!(batched.metrics.messages_sent, naive.metrics.messages_sent);
        assert_eq!(batched.metrics.bytes_sent, naive.metrics.bytes_sent);
        assert_parity(
            &deployment,
            &events,
            &ThreadedConfig {
                transport: TransportMode::Naive,
                ..ThreadedConfig::default()
            },
            &format!("{label} naive"),
        );
    }
}

#[test]
fn steady_state_send_path_recycles_frames() {
    // The acceptance check of the batched transport: after warm-up, frame
    // buffers come from the recycling pool, not the allocator. Per-message
    // frames maximize pool traffic; the reuse counter must dominate.
    let net = network();
    // The paper's Fig. 1 query ships every partial AND match across the
    // network — by far the most frame traffic of the test workloads.
    let deployment = deploy(
        Pattern::seq([
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]),
        5_000,
        &net,
    );
    let events = muse_sim::traces::generate_traces(
        &net,
        &muse_sim::traces::TraceConfig {
            duration: 40.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.05,
            key_domain: 0,
            band_domain: 0,
            seed: 23,
        },
    );
    let report = run_threaded(
        &deployment,
        &events,
        &ThreadedConfig {
            transport: TransportMode::Batched {
                batch: 1,
                capacity: 8,
            },
            ..ThreadedConfig::default()
        },
    );
    let t = &report.metrics.transport;
    assert!(t.frames_sent > 0, "workload must ship frames");
    assert!(
        t.pool_reuses > t.pool_allocs,
        "steady-state sends must reuse pooled buffers (allocs {} vs reuses {})",
        t.pool_allocs,
        t.pool_reuses
    );
    assert!(report.metrics.transport.pool_reuse_ratio() > 0.5);
}

#[test]
fn fanout_tables_mirror_route_tables() {
    let net = network();
    for pattern in [or_pattern(), nseq_pattern()] {
        let deployment = deploy(pattern, 5_000, &net);
        assert_eq!(deployment.fanouts.len(), deployment.routes.len());
        for (task, routes) in deployment.routes.iter().enumerate() {
            let f = &deployment.fanouts[task];
            assert_eq!(f.local.len() + f.remote.len(), routes.len());
            for r in routes {
                if r.remote {
                    let dest = deployment.tasks[r.target].node.index();
                    assert!(f.remote.contains(&(dest, r.target, r.slot)));
                    assert!(f.remote_nodes.contains(&dest));
                } else {
                    assert!(f.local.contains(&(r.target, r.slot)));
                }
            }
            let mut sorted = f.remote_nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, f.remote_nodes, "remote_nodes sorted and deduped");
        }
    }
}
