//! End-to-end live migration: snapshot a run under plan A, certify the
//! A→B migration with `muse-verify`'s plan-diff pass, map the state with
//! [`checkpoint::map_snapshot`], and resume under plan B — in the
//! simulator and the threaded executor. Certified migrations restore
//! fingerprint-identical and resume to the uninterrupted run's results;
//! rejected migrations must fail the restore instead of corrupting state.

use muse_core::algorithms::amuse::AMuseConfig;
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::catalog::Catalog;
use muse_core::event::{Event, Timestamp};
use muse_core::graph::{MuseGraph, PlanContext};
use muse_core::network::{Network, NetworkBuilder};
use muse_core::projection::ProjectionTable;
use muse_core::query::{Pattern, Predicate, Query};
use muse_core::types::{EventTypeId, NodeId};
use muse_core::workload::Workload;
use muse_runtime::checkpoint::{self, CheckpointError};
use muse_runtime::deploy::Deployment;
use muse_runtime::matcher::Match;
use muse_runtime::sim::{SimConfig, SimExecutor};
use muse_runtime::threaded::{run_threaded, run_threaded_resumed, ThreadedConfig};
use muse_verify::{verify_migration, MigrationPlan, Report};
use std::collections::BTreeSet;

fn t(i: u16) -> EventTypeId {
    EventTypeId(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}

fn network() -> Network {
    NetworkBuilder::new(3, 3)
        .node(n(0), [t(0), t(2)])
        .node(n(1), [t(0), t(1)])
        .node(n(2), [t(1)])
        .rate(t(0), 20.0)
        .rate(t(1), 20.0)
        .rate(t(2), 1.0)
        .build()
}

fn trace(network: &Network, seed: u64) -> Vec<Event> {
    muse_sim::traces::generate_traces(
        network,
        &muse_sim::traces::TraceConfig {
            duration: 30.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.05,
            key_domain: 0,
            band_domain: 0,
            seed,
        },
    )
}

/// The Fig. 1 `SEQ(AND(t0, t1), t2)` query — partial matches cross the
/// network, so the migrated state is genuinely distributed.
fn pattern() -> Pattern {
    Pattern::seq([
        Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
        Pattern::leaf(t(2)),
    ])
}

/// One placed plan: queries, projection table, graph, and the deployment
/// built from them (kept together so a `PlanContext` can be re-derived for
/// the migration pass).
struct Placed {
    queries: Vec<Query>,
    table: ProjectionTable,
    graph: MuseGraph,
    deployment: Deployment,
}

fn place(window: Timestamp, network: &Network) -> Placed {
    let workload = Workload::from_patterns(
        Catalog::with_anonymous_types(3),
        [(pattern(), Vec::<Predicate>::new(), window)],
    )
    .expect("pattern builds a workload");
    let plan =
        amuse_workload(&workload, network, &AMuseConfig::default()).expect("aMuSE plans workload");
    let queries = workload.queries().to_vec();
    let ctx = PlanContext::new(&queries, network, &plan.table);
    let deployment = Deployment::new(&plan.merged, &ctx);
    Placed {
        queries,
        table: plan.table,
        graph: plan.merged,
        deployment,
    }
}

fn certify(a: &Placed, b: &Placed, network: &Network) -> (Report, MigrationPlan) {
    let actx = PlanContext::new(&a.queries, network, &a.table);
    let bctx = PlanContext::new(&b.queries, network, &b.table);
    verify_migration(&a.graph, &actx, &b.graph, &bctx, None)
}

fn fingerprints(matches: &[Match]) -> BTreeSet<Vec<u64>> {
    matches.iter().map(Match::fingerprint).collect()
}

/// A certified identity migration resumes the simulator to exactly the
/// uninterrupted run's results, and the mapped snapshot claims the new
/// plan's fingerprint.
#[test]
fn certified_migration_is_lossless_in_sim() {
    let net = network();
    let a = place(5_000, &net);
    let b = place(5_000, &net);
    let events = trace(&net, 11);
    let half = events.len() / 2;

    let mut exec = SimExecutor::new(&a.deployment, SimConfig::default());
    exec.process_trace(&events[..half]);
    let bytes = checkpoint::snapshot(&exec).expect("sim snapshots");

    let (report, plan) = certify(&a, &b, &net);
    assert!(plan.safe, "identity migration must certify:\n{report}");

    let mapped = checkpoint::map_snapshot(
        &a.deployment,
        &b.deployment,
        &plan,
        SimConfig::default().slack,
        &bytes,
    )
    .expect("certified migration restores");
    assert_eq!(
        mapped.plan,
        b.deployment.fingerprint(),
        "mapped snapshot must claim the new plan's fingerprint"
    );

    let mut resumed = checkpoint::restore_mapped(
        &a.deployment,
        &b.deployment,
        &plan,
        SimConfig::default(),
        &bytes,
    )
    .expect("certified migration restores into an executor");
    resumed.process_trace(&events[half..]);
    let migrated = resumed.finish();

    let mut uninterrupted = SimExecutor::new(&b.deployment, SimConfig::default());
    uninterrupted.process_trace(&events);
    let baseline = uninterrupted.finish();

    assert!(!baseline.matches[0].is_empty(), "trace produces matches");
    assert_eq!(
        fingerprints(&migrated.matches[0]),
        fingerprints(&baseline.matches[0]),
        "migrated run diverges from the uninterrupted run"
    );
    assert_eq!(migrated.metrics.sink_matches, baseline.metrics.sink_matches);
}

/// The same certified migration resumes the threaded executor: the mapped
/// snapshot re-encodes and feeds the ordinary resume path, and the results
/// match an uninterrupted threaded run.
#[test]
fn certified_migration_is_lossless_threaded() {
    let net = network();
    let a = place(5_000, &net);
    let b = place(5_000, &net);
    let events = trace(&net, 17);
    let half = events.len() / 2;

    let mut exec = SimExecutor::new(&a.deployment, SimConfig::default());
    exec.process_trace(&events[..half]);
    let bytes = checkpoint::snapshot(&exec).expect("sim snapshots");

    let (report, plan) = certify(&a, &b, &net);
    assert!(plan.safe, "identity migration must certify:\n{report}");

    let config = ThreadedConfig::default();
    let mapped =
        checkpoint::map_snapshot(&a.deployment, &b.deployment, &plan, config.slack, &bytes)
            .expect("certified migration restores");
    let mapped_bytes = checkpoint::encode(&mapped);
    let migrated = run_threaded_resumed(&b.deployment, &events, &config, &mapped_bytes)
        .expect("mapped snapshot resumes the threaded executor");

    let baseline = run_threaded(&b.deployment, &events, &config);
    assert!(!baseline.matches[0].is_empty(), "trace produces matches");
    assert_eq!(
        fingerprints(&migrated.matches[0]),
        fingerprints(&baseline.matches[0]),
        "migrated threaded run diverges from the uninterrupted run"
    );
}

/// A widened window certifies with a replay obligation and restores; the
/// resumed run completes and reaches at least the carried state's matches.
#[test]
fn widened_window_migration_restores() {
    let net = network();
    let a = place(5_000, &net);
    let b = place(8_000, &net);
    let events = trace(&net, 23);
    let half = events.len() / 2;

    let mut exec = SimExecutor::new(&a.deployment, SimConfig::default());
    exec.process_trace(&events[..half]);
    let carried_so_far = exec.matches()[0].len();
    let bytes = checkpoint::snapshot(&exec).expect("sim snapshots");

    let (report, plan) = certify(&a, &b, &net);
    assert!(plan.safe, "widened window must certify:\n{report}");
    assert!(plan.needs_replay, "widening carries a replay obligation");

    let mut resumed = checkpoint::restore_mapped(
        &a.deployment,
        &b.deployment,
        &plan,
        SimConfig::default(),
        &bytes,
    )
    .expect("certified migration restores");
    resumed.process_trace(&events[half..]);
    let migrated = resumed.finish();
    assert!(
        migrated.matches[0].len() >= carried_so_far,
        "carried matches must survive the migration"
    );
}

/// An uncertified plan — here a narrowed window — must fail the restore
/// with `MigrationRejected` in both executor paths. This is the soundness
/// gate: no state ever crosses an unsafe migration.
#[test]
fn rejected_migration_fails_restore() {
    let net = network();
    let a = place(5_000, &net);
    let b = place(2_000, &net);
    let events = trace(&net, 29);

    let mut exec = SimExecutor::new(&a.deployment, SimConfig::default());
    exec.process_trace(&events[..events.len() / 2]);
    let bytes = checkpoint::snapshot(&exec).expect("sim snapshots");

    let (report, plan) = certify(&a, &b, &net);
    assert!(!plan.safe, "narrowed window must not certify:\n{report}");

    match checkpoint::restore_mapped(
        &a.deployment,
        &b.deployment,
        &plan,
        SimConfig::default(),
        &bytes,
    ) {
        Err(CheckpointError::MigrationRejected(why)) => {
            assert!(why.contains("not certified safe"), "{why}");
        }
        Err(other) => panic!("expected MigrationRejected, got {other:?}"),
        Ok(_) => panic!("unsafe migration must not restore"),
    }
    match checkpoint::map_snapshot(
        &a.deployment,
        &b.deployment,
        &plan,
        SimConfig::default().slack,
        &bytes,
    ) {
        Err(CheckpointError::MigrationRejected(_)) => {}
        other => panic!("expected MigrationRejected, got {other:?}"),
    }
}

/// The snapshot fed to a migration must actually come from the old plan:
/// a foreign snapshot fails with `PlanMismatch` even when the migration
/// itself is certified.
#[test]
fn migration_rejects_foreign_snapshot() {
    let net = network();
    let a = place(5_000, &net);
    let b = place(5_000, &net);
    let other = place(3_000, &net);
    let events = trace(&net, 31);

    let mut exec = SimExecutor::new(&other.deployment, SimConfig::default());
    exec.process_trace(&events[..events.len() / 2]);
    let bytes = checkpoint::snapshot(&exec).expect("sim snapshots");

    let (report, plan) = certify(&a, &b, &net);
    assert!(plan.safe, "{report}");

    match checkpoint::map_snapshot(
        &a.deployment,
        &b.deployment,
        &plan,
        SimConfig::default().slack,
        &bytes,
    ) {
        Err(CheckpointError::PlanMismatch { found, .. }) => {
            assert_eq!(found, other.deployment.fingerprint());
        }
        other => panic!("expected PlanMismatch, got {other:?}"),
    }
}
