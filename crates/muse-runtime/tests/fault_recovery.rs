//! Crash-recovery tests for the threaded executor (the paper's §7.3
//! Ambrosia-style fault tolerance): a node crash injected at an arbitrary
//! injection index must be invisible in the results — the recovered run
//! produces the same match sets and deterministic counters as the
//! uninterrupted one — and snapshots round-trip between the simulator and
//! the threaded executor in both directions.

use muse_core::algorithms::amuse::AMuseConfig;
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::catalog::Catalog;
use muse_core::event::{Event, Timestamp};
use muse_core::graph::PlanContext;
use muse_core::network::{Network, NetworkBuilder};
use muse_core::query::{Pattern, Predicate};
use muse_core::types::{EventTypeId, NodeId};
use muse_core::workload::Workload;
use muse_runtime::checkpoint::{self, CheckpointError};
use muse_runtime::deploy::Deployment;
use muse_runtime::matcher::Match;
use muse_runtime::sim::{SimConfig, SimExecutor};
use muse_runtime::threaded::{
    run_threaded, run_threaded_resumed, FaultPlan, ThreadedConfig, ThreadedReport,
};
use std::collections::BTreeSet;
use std::time::Duration;

fn t(i: u16) -> EventTypeId {
    EventTypeId(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}

/// The Fig. 1 network of the paper: three nodes, mixed producers.
fn network() -> Network {
    NetworkBuilder::new(3, 3)
        .node(n(0), [t(0), t(2)])
        .node(n(1), [t(0), t(1)])
        .node(n(2), [t(1)])
        .rate(t(0), 20.0)
        .rate(t(1), 20.0)
        .rate(t(2), 1.0)
        .build()
}

fn trace(network: &Network, seed: u64) -> Vec<Event> {
    muse_sim::traces::generate_traces(
        network,
        &muse_sim::traces::TraceConfig {
            duration: 30.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.05,
            key_domain: 0,
            band_domain: 0,
            seed,
        },
    )
}

fn deploy(pattern: Pattern, window: Timestamp, network: &Network) -> Deployment {
    let workload = Workload::from_patterns(
        Catalog::with_anonymous_types(3),
        [(pattern, Vec::<Predicate>::new(), window)],
    )
    .expect("pattern builds a workload");
    let plan =
        amuse_workload(&workload, network, &AMuseConfig::default()).expect("aMuSE plans workload");
    let ctx = PlanContext::new(workload.queries(), network, &plan.table);
    Deployment::new(&plan.merged, &ctx)
}

/// The Fig. 1 SEQ(AND(t0, t1), t2) query — ships partial matches across
/// the network, so a crash loses genuinely distributed state.
fn fig1_pattern() -> Pattern {
    Pattern::seq([
        Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
        Pattern::leaf(t(2)),
    ])
}

fn fingerprints(matches: &[Match]) -> BTreeSet<Vec<u64>> {
    matches.iter().map(Match::fingerprint).collect()
}

/// Deterministic counters that must be identical between a faulted and an
/// uninterrupted run (order-dependent engine counters like join probes are
/// deliberately excluded — replay changes interleaving, not results).
fn assert_equal_outcomes(a: &ThreadedReport, b: &ThreadedReport, ctx: &str) {
    for (q, (ma, mb)) in a.matches.iter().zip(&b.matches).enumerate() {
        assert_eq!(
            fingerprints(ma),
            fingerprints(mb),
            "{ctx}: query {q} match sets diverge"
        );
    }
    assert_eq!(
        a.metrics.events_injected, b.metrics.events_injected,
        "{ctx}: events_injected"
    );
    assert_eq!(
        a.metrics.messages_sent, b.metrics.messages_sent,
        "{ctx}: messages_sent"
    );
    assert_eq!(
        a.metrics.bytes_sent, b.metrics.bytes_sent,
        "{ctx}: bytes_sent"
    );
    assert_eq!(
        a.metrics.local_deliveries, b.metrics.local_deliveries,
        "{ctx}: local_deliveries"
    );
    assert_eq!(
        a.metrics.sink_matches, b.metrics.sink_matches,
        "{ctx}: sink_matches"
    );
    assert_eq!(
        a.metrics.join.emitted, b.metrics.join.emitted,
        "{ctx}: join.emitted"
    );
}

/// Every sink match either produced a latency sample or was explicitly
/// counted as dropped — the accounting bug this PR fixes made samples
/// vanish silently.
fn assert_latency_invariant(r: &ThreadedReport, ctx: &str) {
    assert_eq!(
        r.metrics.sink_matches,
        r.wall_latencies_ns.len() as u64 + r.metrics.latency_samples_dropped,
        "{ctx}: sink_matches must equal latency samples + dropped"
    );
}

#[test]
fn crash_at_arbitrary_injection_is_lossless() {
    let net = network();
    let deployment = deploy(fig1_pattern(), 5_000, &net);
    let events = trace(&net, 23);
    let baseline = run_threaded(&deployment, &events, &ThreadedConfig::default());
    assert!(
        baseline.metrics.sink_matches > 0,
        "workload must produce matches"
    );
    // Crash each node in turn at injection indices spanning first event,
    // early, mid-chunk, and deep into the run (bounded by what the node
    // actually injects, so the crash is guaranteed to fire).
    for node in 0..3usize {
        let local = events.iter().filter(|e| e.origin.index() == node).count() as u64;
        assert!(local > 2, "node {node} must inject events");
        let mut points = vec![0u64, 1, local / 3, (2 * local) / 3, local - 1];
        points.dedup();
        for crash_at in points {
            let config = ThreadedConfig {
                fault: Some(FaultPlan {
                    node,
                    crash_at,
                    restart_delay: Duration::ZERO,
                }),
                ..ThreadedConfig::default()
            };
            let faulted = run_threaded(&deployment, &events, &config);
            let ctx = format!("crash node {node} at injection {crash_at}");
            assert_eq!(
                faulted.metrics.recovery.crashes, 1,
                "{ctx}: crash must fire"
            );
            assert!(
                faulted.metrics.recovery.snapshots_taken > 0,
                "{ctx}: fault mode checkpoints each chunk"
            );
            assert_equal_outcomes(&faulted, &baseline, &ctx);
            assert_latency_invariant(&faulted, &ctx);
        }
    }
}

#[test]
fn crash_with_downtime_still_converges() {
    // A nonzero restart delay keeps the node dark while peers keep
    // producing — senders must ride out the backpressure (bounded-backoff
    // retries) and the results must still converge.
    let net = network();
    let deployment = deploy(fig1_pattern(), 5_000, &net);
    let events = trace(&net, 41);
    let baseline = run_threaded(&deployment, &events, &ThreadedConfig::default());
    let config = ThreadedConfig {
        fault: Some(FaultPlan {
            node: 1,
            crash_at: 10,
            restart_delay: Duration::from_millis(2),
        }),
        ..ThreadedConfig::default()
    };
    let faulted = run_threaded(&deployment, &events, &config);
    assert_eq!(faulted.metrics.recovery.crashes, 1);
    assert!(
        faulted.metrics.recovery.recovery_ns >= 2_000_000,
        "recovery time includes the configured downtime"
    );
    assert_equal_outcomes(&faulted, &baseline, "crash with downtime");
    assert_latency_invariant(&faulted, "crash with downtime");
}

#[test]
fn crash_never_due_behaves_like_baseline() {
    let net = network();
    let deployment = deploy(fig1_pattern(), 5_000, &net);
    let events = trace(&net, 23);
    let baseline = run_threaded(&deployment, &events, &ThreadedConfig::default());
    let config = ThreadedConfig {
        fault: Some(FaultPlan {
            node: 1,
            crash_at: u64::MAX,
            restart_delay: Duration::ZERO,
        }),
        ..ThreadedConfig::default()
    };
    let armed = run_threaded(&deployment, &events, &config);
    assert_eq!(armed.metrics.recovery.crashes, 0, "crash must not fire");
    assert_equal_outcomes(&armed, &baseline, "armed but never due");
}

#[test]
fn checkpoint_mode_emits_final_snapshot_and_preserves_results() {
    let net = network();
    let deployment = deploy(fig1_pattern(), 5_000, &net);
    let events = trace(&net, 23);
    let baseline = run_threaded(&deployment, &events, &ThreadedConfig::default());
    let config = ThreadedConfig {
        checkpoint: true,
        ..ThreadedConfig::default()
    };
    let report = run_threaded(&deployment, &events, &config);
    assert_equal_outcomes(&report, &baseline, "checkpoint mode");
    assert!(report.metrics.recovery.snapshots_taken > 0);
    assert!(report.metrics.recovery.snapshot_bytes > 0);
    let snap = report.final_snapshot.as_deref().expect("final snapshot");
    let decoded = checkpoint::decode_for(&deployment, snap).expect("snapshot decodes");
    assert_eq!(decoded.plan, deployment.fingerprint());
    assert!(decoded.pending.is_empty(), "end-of-run snapshot quiescent");
}

#[test]
fn threaded_snapshot_resumes_in_simulator() {
    let net = network();
    let deployment = deploy(fig1_pattern(), 5_000, &net);
    let events = trace(&net, 23);
    // Matching store slack on both sides so eviction cannot differ across
    // the handoff (the threaded default is wider than the sim default).
    let sim_config = SimConfig {
        slack: 4.0,
        ..SimConfig::default()
    };
    let full = {
        let mut exec = SimExecutor::new(&deployment, sim_config.clone());
        exec.process_trace(&events);
        exec.finish()
    };
    let n = events.len();
    for split in [n / 4, n / 2, 3 * n / 4] {
        let config = ThreadedConfig {
            checkpoint: true,
            ..ThreadedConfig::default()
        };
        let prefix = run_threaded(&deployment, &events[..split], &config);
        let snap = prefix.final_snapshot.as_deref().expect("final snapshot");
        let mut resumed =
            checkpoint::restore(&deployment, sim_config.clone(), snap).expect("sim restores");
        resumed.process_trace(&events[split..]);
        let report = resumed.finish();
        for (q, (a, b)) in report.matches.iter().zip(&full.matches).enumerate() {
            assert_eq!(
                fingerprints(a),
                fingerprints(b),
                "split {split}: query {q} diverges"
            );
        }
        assert_eq!(
            report.metrics.sink_matches, full.metrics.sink_matches,
            "split {split}: sink_matches"
        );
        assert_eq!(
            report.metrics.events_injected, full.metrics.events_injected,
            "split {split}: events_injected"
        );
        assert_eq!(
            report.metrics.messages_sent, full.metrics.messages_sent,
            "split {split}: messages_sent"
        );
        assert_eq!(
            report.metrics.join.emitted, full.metrics.join.emitted,
            "split {split}: join.emitted"
        );
    }
}

#[test]
fn simulator_snapshot_resumes_in_threaded() {
    let net = network();
    let deployment = deploy(fig1_pattern(), 5_000, &net);
    let events = trace(&net, 23);
    let sim_config = SimConfig {
        slack: 4.0,
        ..SimConfig::default()
    };
    let full = {
        let mut exec = SimExecutor::new(&deployment, sim_config.clone());
        exec.process_trace(&events);
        exec.finish()
    };
    let n = events.len();
    for split in [n / 4, n / 2, 3 * n / 4] {
        let mut exec = SimExecutor::new(&deployment, sim_config.clone());
        exec.process_trace(&events[..split]);
        let snap = checkpoint::snapshot(&exec).expect("sim snapshots");
        drop(exec);
        let report = run_threaded_resumed(
            &deployment,
            &events[split..],
            &ThreadedConfig::default(),
            &snap,
        )
        .expect("threaded resumes from sim snapshot");
        for (q, (a, b)) in report.matches.iter().zip(&full.matches).enumerate() {
            assert_eq!(
                fingerprints(a),
                fingerprints(b),
                "split {split}: query {q} diverges"
            );
        }
        assert_eq!(
            report.metrics.sink_matches, full.metrics.sink_matches,
            "split {split}: sink_matches"
        );
        assert_eq!(
            report.metrics.events_injected, full.metrics.events_injected,
            "split {split}: events_injected"
        );
        assert_eq!(
            report.metrics.messages_sent, full.metrics.messages_sent,
            "split {split}: messages_sent"
        );
        // Matches completed from grafted pre-split partials have no wall
        // injection record in the resumed run; the accounting must name
        // them instead of silently shrinking the sample set.
        assert_latency_invariant(&report, &format!("split {split}"));
    }
}

#[test]
fn resume_rejects_foreign_plan() {
    let net = network();
    let deployment = deploy(fig1_pattern(), 5_000, &net);
    let other = deploy(
        Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(2))]),
        5_000,
        &net,
    );
    let events = trace(&net, 23);
    let mut exec = SimExecutor::new(&deployment, SimConfig::default());
    exec.process_trace(&events[..events.len() / 2]);
    let snap = checkpoint::snapshot(&exec).expect("sim snapshots");
    match run_threaded_resumed(&other, &events, &ThreadedConfig::default(), &snap) {
        Err(CheckpointError::PlanMismatch {
            expected, found, ..
        }) => {
            assert_eq!(expected, other.fingerprint());
            assert_eq!(found, deployment.fingerprint());
        }
        Err(other) => panic!("wrong error: {other:?}"),
        Ok(_) => panic!("foreign plan must be rejected"),
    }
}
