//! The deploy gate: `Deployment::verified` refuses plans with
//! `Error`-severity diagnostics, and `Deployment::new` panics on them.

use muse_core::graph::{MuseGraph, PlanContext, Vertex};
use muse_core::prelude::*;
use muse_runtime::deploy::Deployment;

fn example() -> (Vec<Query>, Network, ProjectionTable, MuseGraph) {
    let mut catalog = Catalog::new();
    let c = catalog.add_event_type("C").unwrap();
    let l = catalog.add_event_type("L").unwrap();
    let f = catalog.add_event_type("F").unwrap();
    let network = NetworkBuilder::new(3, 3)
        .node(NodeId(0), [c, f])
        .node(NodeId(1), [c, l])
        .node(NodeId(2), [l])
        .rate(c, 100.0)
        .rate(l, 100.0)
        .rate(f, 1.0)
        .build();
    let pattern = Pattern::seq([
        Pattern::and([Pattern::leaf(c), Pattern::leaf(l)]),
        Pattern::leaf(f),
    ]);
    let query = Query::build(QueryId(0), &pattern, vec![], 1_000).unwrap();
    let plan = amuse(&query, &network, &AMuseConfig::default()).unwrap();
    (vec![query], network, plan.table, plan.graph)
}

/// Drops one primitive source vertex from the graph, breaking Def. 7(i).
fn break_graph(graph: &MuseGraph) -> MuseGraph {
    let victim = graph
        .sources()
        .into_iter()
        .next()
        .expect("graph has a source");
    let mut broken = MuseGraph::new();
    for v in graph.vertices().filter(|v| *v != victim) {
        broken.add_vertex(v);
    }
    for (a, b) in graph.edges().filter(|(a, b)| *a != victim && *b != victim) {
        broken.add_edge(a, b);
    }
    broken
}

#[test]
fn verified_accepts_algorithm_graph() {
    let (queries, network, table, graph) = example();
    let ctx = PlanContext::new(&queries, &network, &table);
    let deployment = Deployment::verified(&graph, &ctx).expect("amuse graph verifies");
    assert_eq!(deployment.tasks.len(), graph.num_vertices());
}

#[test]
fn verified_refuses_faulty_graph_with_report() {
    let (queries, network, table, graph) = example();
    let broken = break_graph(&graph);
    let ctx = PlanContext::new(&queries, &network, &table);
    let report = Deployment::verified(&broken, &ctx).expect_err("broken graph must be refused");
    assert!(report.has_errors());
    assert!(
        report.has_code(muse_verify::Code::MissingPrimitiveVertex),
        "{report}"
    );
}

#[test]
#[should_panic(expected = "refusing to deploy")]
fn new_panics_on_faulty_graph() {
    let (queries, network, table, graph) = example();
    let broken = break_graph(&graph);
    let ctx = PlanContext::new(&queries, &network, &table);
    let _ = Deployment::new(&broken, &ctx);
}

#[test]
fn verified_refuses_cyclic_graph() {
    let (queries, network, table, graph) = example();
    let mut cyclic = graph.clone();
    // Reverse an existing edge to close a 2-cycle.
    let (a, b) = graph.edges().next().expect("graph has edges");
    cyclic.add_edge(b, a);
    let ctx = PlanContext::new(&queries, &network, &table);
    let report = Deployment::verified(&cyclic, &ctx).expect_err("cyclic graph must be refused");
    assert!(report.has_code(muse_verify::Code::GraphCycle), "{report}");
}

#[test]
fn verified_refuses_primitive_at_non_producer() {
    let (queries, network, table, graph) = example();
    let mut bad = graph.clone();
    // Node 2 generates only L; plant a C-primitive vertex there.
    let c_proj = table
        .id_of(
            QueryId(0),
            muse_core::types::PrimSet::single(muse_core::types::PrimId(0)),
        )
        .expect("primitive projection registered");
    bad.add_vertex(Vertex::new(c_proj, NodeId(2)));
    let ctx = PlanContext::new(&queries, &network, &table);
    let report = Deployment::verified(&bad, &ctx).expect_err("misplaced primitive refused");
    assert!(
        report.has_code(muse_verify::Code::PrimitiveAtNonProducer),
        "{report}"
    );
}
