//! Property-based equivalence of the indexed join engine.
//!
//! The indexed, window-pruned [`JoinTask`] must emit a byte-identical
//! (fingerprint-deduplicated, per-trigger) match stream to the naive
//! reference join [`NaiveJoinTask`] — which buffers unsorted, probes the
//! full cross-product, and retains on every arrival — on randomized
//! out-of-order streams, windows, slack factors, eviction strides, and
//! slot layouts (disjoint, overlapping, many-way, and negation-guarded).
//!
//! Invariants checked per generated stream (see DESIGN.md, "Join engine
//! internals"):
//! 1. every trigger's emitted fingerprint list is identical,
//! 2. the live buffered-match count is identical after every trigger,
//! 3. the indexed engine's output does not depend on the eviction stride,
//! 4. total emission counters agree.

use muse_core::event::{Event, Timestamp};
use muse_core::query::{Pattern, Query};
use muse_core::types::{EventTypeId, NodeId, PrimId, PrimSet, QueryId};
use muse_runtime::matcher::{JoinTask, Match, NaiveJoinTask};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ps(prims: impl IntoIterator<Item = u8>) -> PrimSet {
    prims.into_iter().map(PrimId).collect()
}

/// A query plus the slot layout of the join under test.
struct Shape {
    query: Query,
    slots: Vec<PrimSet>,
}

/// The four slot layouts exercised: disjoint predecessors, overlapping
/// predecessors (shared primitive B), a three-way primitive join, and an
/// `NSEQ` query with a negation guard slot.
fn shape(kind: u8, window: Timestamp) -> Shape {
    let seq_abc = || {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ]),
            vec![],
            window,
        )
        .unwrap()
    };
    match kind % 4 {
        0 => Shape {
            query: seq_abc(),
            slots: vec![ps([0, 1]), ps([2])],
        },
        1 => Shape {
            query: seq_abc(),
            slots: vec![ps([0, 1]), ps([1, 2])],
        },
        2 => Shape {
            query: seq_abc(),
            slots: vec![ps([0]), ps([1]), ps([2])],
        },
        _ => Shape {
            query: Query::build(
                QueryId(0),
                &Pattern::nseq(
                    Pattern::leaf(EventTypeId(0)),
                    Pattern::leaf(EventTypeId(1)),
                    Pattern::leaf(EventTypeId(2)),
                ),
                vec![],
                window,
            )
            .unwrap(),
            slots: vec![ps([0, 2]), ps([1])],
        },
    }
}

/// Generates a randomized, bounded-out-of-order arrival stream for the
/// shape: `(slot, match)` pairs whose base time advances while individual
/// events jitter backwards, so arrivals cross window and slack boundaries
/// in both directions. Matches on slots sharing primitive B draw the B
/// event from a small recent pool, so overlapping inputs sometimes agree
/// and sometimes clash.
fn arrivals(shape: &Shape, window: Timestamp, n: usize, seed: u64) -> Vec<(usize, Match)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = 0u64;
    let mut fresh = |time: Timestamp, ty: u16| {
        seq += 1;
        Event::new(seq, EventTypeId(ty), time, NodeId(0))
    };
    // Pool of B events reusable by any slot containing primitive 1.
    let mut b_pool: Vec<Event> = Vec::new();
    let mut out = Vec::with_capacity(n);
    // Steps small relative to the window keep many matches live at once
    // (skip-till-any-match pressure); jitter beyond the step makes the
    // stream genuinely out-of-order.
    let step = rng.gen_range(2u64..8);
    let jitter = rng.gen_range(0u64..window.max(2));
    for k in 0..n {
        let base = 10 + jitter + k as u64 * step;
        let t = base.saturating_sub(rng.gen_range(0..=jitter.max(1)));
        let slot = rng.gen_range(0..shape.slots.len());
        let prims: Vec<PrimId> = shape.slots[slot].iter().collect();
        let mut events = Vec::with_capacity(prims.len());
        for (j, prim) in prims.iter().enumerate() {
            let pt = t + j as u64 * rng.gen_range(1u64..4);
            if prim.0 == 1 && !b_pool.is_empty() && rng.gen_bool(0.6) {
                let idx = b_pool.len() - 1 - rng.gen_range(0..b_pool.len().min(3));
                events.push((*prim, b_pool[idx].clone()));
            } else {
                let e = fresh(pt, prim.0 as u16);
                if prim.0 == 1 {
                    b_pool.push(e.clone());
                }
                events.push((*prim, e));
            }
        }
        out.push((slot, Match::new(events)));
    }
    out
}

fn fingerprints(matches: &[Match]) -> Vec<Vec<u64>> {
    matches.iter().map(Match::fingerprint).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn indexed_join_equals_naive_reference(
        kind in 0u8..4,
        window in 10u64..=200,
        slack_idx in 0usize..3,
        stride in 1u64..=300,
        seed in any::<u64>(),
    ) {
        let slack = [1.0, 2.0, 4.0][slack_idx];
        let shape = shape(kind, window);
        let target = shape.query.prims();
        let mut naive =
            NaiveJoinTask::with_slack(&shape.query, target, &shape.slots, slack);
        let mut indexed =
            JoinTask::with_slack(&shape.query, target, &shape.slots, slack)
                .with_evict_stride(stride);
        // A second indexed engine with a very different stride: physical
        // drain timing must never leak into the output.
        let mut indexed_alt =
            JoinTask::with_slack(&shape.query, target, &shape.slots, slack)
                .with_evict_stride(1_000_000);

        for (trigger, (slot, m)) in
            arrivals(&shape, window, 150, seed).into_iter().enumerate()
        {
            let want = fingerprints(&naive.on_match(slot, m.clone()));
            let got = fingerprints(&indexed.on_match(slot, m.clone()));
            let got_alt = fingerprints(&indexed_alt.on_match(slot, m));
            prop_assert_eq!(
                &got, &want,
                "trigger {}: indexed ≠ naive (kind {}, window {}, slack {}, stride {})",
                trigger, kind, window, slack, stride
            );
            prop_assert_eq!(
                &got_alt, &want,
                "trigger {}: stride changed the output",
                trigger
            );
            prop_assert_eq!(indexed.buffered(), naive.buffered());
            prop_assert_eq!(indexed_alt.buffered(), naive.buffered());
        }
        prop_assert_eq!(indexed.emitted(), naive.emitted());
        prop_assert_eq!(indexed_alt.emitted(), naive.emitted());
    }

    /// The indexed engine's stats stay internally consistent on random
    /// streams: guards + attempts partition the probes, successes never
    /// exceed attempts, and the live count never exceeds the peak.
    #[test]
    fn join_stats_are_consistent(
        kind in 0u8..4,
        window in 10u64..=200,
        seed in any::<u64>(),
    ) {
        let shape = shape(kind, window);
        let target = shape.query.prims();
        let mut join = JoinTask::new(&shape.query, target, &shape.slots);
        for (slot, m) in arrivals(&shape, window, 100, seed) {
            join.on_match(slot, m);
        }
        let s = *join.stats();
        prop_assert_eq!(s.inputs, 100);
        prop_assert_eq!(s.probes, s.guard_rejects + s.merge_attempts);
        prop_assert!(s.merge_successes <= s.merge_attempts);
        prop_assert!(s.emitted == join.emitted());
        prop_assert!(join.buffered() as u64 <= s.peak_buffered);
        prop_assert!(s.merge_success_ratio() >= 0.0 && s.merge_success_ratio() <= 1.0);
        prop_assert!(s.guard_pass_ratio() >= 0.0 && s.guard_pass_ratio() <= 1.0);
    }
}
