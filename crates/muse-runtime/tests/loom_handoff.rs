//! Model-checked interleavings of the threaded executor's worker/watermark
//! handoff (`threaded.rs`): producers stamp an inject clock, push work over
//! a channel-like queue, and set a done flag; the consumer drains, observes
//! the stamps, and advances a `fetch_max` watermark.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `loom` CI lane in
//! `scripts/ci.sh`); the vendored `loom` explores every schedule of the
//! model, so a pass means no interleaving loses an event or regresses the
//! watermark.
#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::Mutex;
use loom::thread;
use std::collections::VecDeque;
use std::sync::Arc;

/// The producer publishes each event's inject timestamp *before* pushing
/// its sequence number and *before* raising `done`; under acquire loads the
/// consumer must observe every stamp of every popped event, and draining
/// after observing `done` must find all events.
#[test]
fn inject_clock_visible_at_sink() {
    loom::model(|| {
        const EVENTS: usize = 2;
        let inject_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..EVENTS).map(|_| AtomicU64::new(0)).collect());
        let queue: Arc<Mutex<VecDeque<usize>>> = Arc::new(Mutex::new(VecDeque::new()));
        let done = Arc::new(AtomicBool::new(false));
        let watermark = Arc::new(AtomicU64::new(0));

        let producer = {
            let (inject_ns, queue, done) = (inject_ns.clone(), queue.clone(), done.clone());
            thread::spawn(move || {
                for seq in 0..EVENTS {
                    // Stamp, then publish: the store must happen-before the
                    // push that makes `seq` visible.
                    inject_ns[seq].store((seq as u64 + 1) * 100, Ordering::Release);
                    queue.lock().unwrap().push_back(seq);
                }
                done.store(true, Ordering::Release);
            })
        };

        let consumer = {
            let (inject_ns, queue, done, watermark) = (
                inject_ns.clone(),
                queue.clone(),
                done.clone(),
                watermark.clone(),
            );
            thread::spawn(move || {
                let mut seen = 0usize;
                loop {
                    let popped = queue.lock().unwrap().pop_front();
                    if let Some(seq) = popped {
                        let stamp = inject_ns[seq].load(Ordering::Acquire);
                        assert_eq!(
                            stamp,
                            (seq as u64 + 1) * 100,
                            "inject stamp of event {seq} not visible at the sink"
                        );
                        watermark.fetch_max(stamp, Ordering::AcqRel);
                        seen += 1;
                        continue;
                    }
                    if done.load(Ordering::Acquire) {
                        // Re-drain after the done flag: events pushed before
                        // `done` was raised must still be in the queue.
                        if let Some(seq) = queue.lock().unwrap().pop_front() {
                            let stamp = inject_ns[seq].load(Ordering::Acquire);
                            watermark.fetch_max(stamp, Ordering::AcqRel);
                            seen += 1;
                            continue;
                        }
                        break;
                    }
                    thread::yield_now();
                }
                seen
            })
        };

        producer.join().unwrap();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, EVENTS, "consumer lost events");
        assert_eq!(
            watermark.load(Ordering::Acquire),
            EVENTS as u64 * 100,
            "watermark did not reach the last inject stamp"
        );
    });
}

/// Two workers racing `fetch_max` on the shared watermark: each worker's
/// subsequent load must be at least its own contribution (monotonicity),
/// and after both join the clock holds the global max.
#[test]
fn watermark_fetch_max_monotonic_across_workers() {
    loom::model(|| {
        let clock = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (1..=2u64)
            .map(|w| {
                let clock = clock.clone();
                thread::spawn(move || {
                    let mine = w * 10;
                    clock.fetch_max(mine, Ordering::AcqRel);
                    let observed = clock.load(Ordering::Acquire);
                    assert!(
                        observed >= mine,
                        "worker {w} saw the watermark regress below its own advance"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.load(Ordering::Acquire), 20);
    });
}
