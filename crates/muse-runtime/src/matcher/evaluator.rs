//! Incremental skip-till-any-match evaluation of a query (projection) over
//! a primitive event stream.
//!
//! The paper adopts the *greedy* event selection policy (skip-till-any-match
//! [Agrawal et al. 2008]): every event may extend every compatible partial
//! match, and partial matches are never consumed. The number of matches can
//! grow exponentially in the number of processed events (§2.2) — this is
//! exactly the per-node state that MuSE graphs shrink by distributing
//! evaluation.
//!
//! The evaluator doubles as (a) the centralized ground-truth engine used to
//! verify distributed execution, and (b) the per-node engine for evaluating
//! a projection whose inputs are all local.

use super::join::default_stride;
use super::store::{MatchStore, StoreState};
use super::{is_valid_match, nseq_violated, Match};
use muse_core::event::Event;
use muse_core::query::{NSeqContext, OrderRel, Query};
use muse_core::types::{PrimId, PrimSet};

/// An incremental evaluator for one projection (identified by its primitive
/// set) of a query, fed with primitive events in global trace order.
///
/// # Examples
///
/// ```
/// use muse_core::event::Event;
/// use muse_core::query::{Pattern, Query};
/// use muse_core::types::{EventTypeId, NodeId, QueryId};
/// use muse_runtime::matcher::Evaluator;
///
/// // SEQ(A, B) within 100 ticks.
/// let query = Query::build(
///     QueryId(0),
///     &Pattern::seq([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
///     vec![],
///     100,
/// )
/// .unwrap();
/// let trace = vec![
///     Event::new(0, EventTypeId(0), 10, NodeId(0)), // a
///     Event::new(1, EventTypeId(1), 20, NodeId(0)), // b → match (a, b)
///     Event::new(2, EventTypeId(1), 30, NodeId(0)), // b → match (a, b')
/// ];
/// let matches = Evaluator::for_query(&query).run(&trace);
/// assert_eq!(matches.len(), 2); // skip-till-any-match: both pairs
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Evaluator {
    query: Query,
    /// All primitives of the evaluated projection.
    prims: PrimSet,
    /// Primitives whose events form emitted matches.
    positive: PrimSet,
    /// Open partial matches, indexed by first timestamp with watermark
    /// eviction (same [`MatchStore`] as the join engine's slot stores).
    partials: MatchStore,
    /// `NSEQ` contexts fully contained in `prims`, with the forbidden
    /// matches observed so far and a sub-evaluator producing them.
    negations: Vec<Negation>,
    /// Minimum horizon progress between physical prefix drains.
    evict_stride: muse_core::event::Timestamp,
    /// Total partial matches ever created (a load proxy; §7.3 attributes
    /// latency/throughput to per-node partial-match state).
    partials_created: u64,
    /// Largest number of simultaneously open partials observed at this
    /// evaluator level (excluding sub-evaluators).
    #[serde(default)]
    peak_partials: usize,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Negation {
    context: NSeqContext,
    sub: Box<Evaluator>,
    forbidden: MatchStore,
}

/// The checkpointable dynamic state of an [`Evaluator`]: open partials,
/// load counters, and — recursively — each negation's sub-evaluator state
/// and forbidden-match store. The static structure (query, primitive
/// sets, eviction stride, the negation list itself) is *not* captured: a
/// restore target is rebuilt from the deployment plan first, and the
/// state is grafted onto it after a structural check.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalState {
    /// Open partial matches.
    pub partials: StoreState,
    /// Total partials ever created at this level.
    pub partials_created: u64,
    /// Peak simultaneously-open partials at this level.
    pub peak_partials: u64,
    /// Per-negation `(sub-evaluator state, forbidden store state)`, in the
    /// evaluator's negation order.
    pub negations: Vec<(EvalState, StoreState)>,
}

impl Evaluator {
    /// Creates an evaluator for the full query.
    pub fn for_query(query: &Query) -> Self {
        Self::new(query, query.prims())
    }

    /// Creates an evaluator for the projection of `query` induced by
    /// `prims`. The projection must be negation-closed.
    pub fn new(query: &Query, prims: PrimSet) -> Self {
        Self::with_positive(query, prims, prims.difference(query.negated_prims()))
    }

    /// Internal constructor: `positive` overrides which primitives form the
    /// emitted matches (used for sub-evaluators of negated patterns, whose
    /// primitives are negated in the outer query but positive locally).
    pub(crate) fn with_positive(query: &Query, prims: PrimSet, positive: PrimSet) -> Self {
        let negations = query
            .nseq_contexts()
            .iter()
            .filter(|ctx| {
                // The context is checked here iff fully contained and its
                // negated primitives are part of this evaluator's scope.
                let full = ctx.first.union(ctx.negated).union(ctx.last);
                full.is_subset(prims) && !ctx.negated.is_disjoint(prims)
            })
            .map(|ctx| Negation {
                context: *ctx,
                sub: Box::new(Evaluator::with_positive(query, ctx.negated, ctx.negated)),
                forbidden: MatchStore::new(),
            })
            .collect();
        Self {
            prims,
            positive,
            partials: MatchStore::new(),
            negations,
            evict_stride: default_stride(query.window()),
            partials_created: 0,
            peak_partials: 0,
            query: query.clone(),
        }
    }

    /// The primitives of the evaluated projection.
    pub fn prims(&self) -> PrimSet {
        self.prims
    }

    /// Number of currently open (live) partial matches, including
    /// sub-evaluators. Partials past the eviction watermark do not count,
    /// whether or not they have been physically drained yet.
    pub fn open_partials(&self) -> usize {
        self.partials.len()
            + self
                .negations
                .iter()
                .map(|n| n.sub.open_partials())
                .sum::<usize>()
    }

    /// Total partial matches ever created (including sub-evaluators).
    pub fn partials_created(&self) -> u64 {
        self.partials_created
            + self
                .negations
                .iter()
                .map(|n| n.sub.partials_created())
                .sum::<u64>()
    }

    /// Peak number of simultaneously open partials, summed over this
    /// evaluator and its sub-evaluators (each level tracks its own peak,
    /// so the sum is an upper bound on the true concurrent peak).
    pub fn peak_open_partials(&self) -> usize {
        self.peak_partials
            + self
                .negations
                .iter()
                .map(|n| n.sub.peak_open_partials())
                .sum::<usize>()
    }

    /// Captures the evaluator's dynamic state for a checkpoint.
    pub fn save_state(&self) -> EvalState {
        EvalState {
            partials: self.partials.save_state(),
            partials_created: self.partials_created,
            peak_partials: self.peak_partials as u64,
            negations: self
                .negations
                .iter()
                .map(|n| (n.sub.save_state(), n.forbidden.save_state()))
                .collect(),
        }
    }

    /// Grafts a saved dynamic state onto this (freshly rebuilt)
    /// evaluator. Fails when the state's negation structure does not match
    /// the evaluator's — the symptom of restoring against a different
    /// query than the one that produced the snapshot.
    pub fn restore_state(&mut self, state: EvalState) -> Result<(), &'static str> {
        if state.negations.len() != self.negations.len() {
            return Err("evaluator negation count differs from snapshot");
        }
        self.partials = MatchStore::restore_state(state.partials);
        self.partials_created = state.partials_created;
        self.peak_partials = state.peak_partials as usize;
        for (neg, (sub, forbidden)) in self.negations.iter_mut().zip(state.negations) {
            neg.sub.restore_state(sub)?;
            neg.forbidden = MatchStore::restore_state(forbidden);
        }
        Ok(())
    }

    /// Feeds one event (in global trace order) and returns the complete
    /// matches it triggers.
    pub fn on_event(&mut self, event: &Event) -> Vec<Match> {
        let horizon = event.time.saturating_sub(self.query.window());
        // Feed negated-pattern sub-evaluators first: a forbidden pattern
        // ending before a candidate's suffix is always observed first in
        // trace order.
        for negation in &mut self.negations {
            for found in negation.sub.on_event(event) {
                negation.forbidden.insert(found);
            }
            negation
                .forbidden
                .advance_horizon(horizon, self.evict_stride);
        }

        let mut emitted = Vec::new();
        // Which positive primitives can this event instantiate?
        let candidates: Vec<PrimId> = self
            .positive
            .iter()
            .filter(|p| self.query.prim_type(*p) == event.ty)
            .collect();
        if candidates.is_empty() {
            self.partials.advance_horizon(horizon, self.evict_stride);
            return emitted;
        }

        let mut created: Vec<Match> = Vec::new();
        for prim in candidates {
            // Extend every compatible open partial (skip-till-any-match).
            // The index skips partials that start before `time − window`
            // outright — `can_extend` would reject every one of them.
            for stored in self.partials.live_from(horizon) {
                let pm = &stored.m;
                if pm.get(prim).is_some() {
                    continue;
                }
                if !self.can_extend(pm, prim, event) {
                    continue;
                }
                let extended = pm
                    .merge(&Match::single(prim, event.clone()))
                    .expect("prim not yet assigned");
                if extended.prims() == self.positive {
                    if self.passes_negation(&extended) {
                        emitted.push(extended);
                    }
                } else {
                    created.push(extended);
                }
            }
            // Start a fresh partial from the event alone.
            let fresh = Match::single(prim, event.clone());
            if is_valid_match(&fresh, &self.query) {
                if self.positive == PrimSet::single(prim) {
                    if self.passes_negation(&fresh) {
                        emitted.push(fresh);
                    }
                } else {
                    created.push(fresh);
                }
            }
        }
        self.partials_created += created.len() as u64;
        self.partials.insert_batch(created);
        self.partials.advance_horizon(horizon, self.evict_stride);
        self.peak_partials = self.peak_partials.max(self.partials.len());
        emitted
    }

    /// Runs the evaluator over a whole trace, collecting all matches.
    pub fn run(&mut self, events: &[Event]) -> Vec<Match> {
        let mut out = Vec::new();
        for e in events {
            out.extend(self.on_event(e));
        }
        out
    }

    /// Checks whether assigning `event` to `prim` is compatible with the
    /// partial match: order constraints against already-assigned
    /// primitives (the event is the newest, so any `Before` obligation of
    /// `prim` towards an assigned primitive fails), decidable predicates,
    /// and the window.
    fn can_extend(&self, pm: &Match, prim: PrimId, event: &Event) -> bool {
        if event.time.saturating_sub(pm.first_time()) > self.query.window() {
            return false;
        }
        for (q, _) in pm.entries() {
            if self.query.order_rel(prim, *q) == OrderRel::Before {
                return false;
            }
        }
        // Predicates decidable once `prim` is assigned.
        for pred in self.query.predicates() {
            let prims = pred.prims();
            if !prims.contains(prim) {
                continue;
            }
            let assigned_after = pm.prims().union(PrimSet::single(prim));
            if prims.is_subset(assigned_after) {
                let ok = pred.evaluate(|p| if p == prim { Some(event) } else { pm.get(p) });
                if ok != Some(true) {
                    return false;
                }
            }
        }
        true
    }

    /// Checks all fully-contained `NSEQ` contexts against the collected
    /// (live) forbidden matches.
    fn passes_negation(&self, m: &Match) -> bool {
        self.negations.iter().all(|n| {
            n.forbidden
                .live()
                .iter()
                .all(|f| !nseq_violated(m, &f.m, n.context.first, n.context.last, &self.query))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::event::{Payload, Timestamp, Value};
    use muse_core::query::{CmpOp, Pattern, Predicate};
    use muse_core::types::{AttrId, EventTypeId, NodeId, QueryId};

    fn ev(seq: u64, ty: u16, time: Timestamp) -> Event {
        Event::new(seq, EventTypeId(ty), time, NodeId(0))
    }

    fn ev_key(seq: u64, ty: u16, time: Timestamp, key: i64) -> Event {
        let mut p = Payload::new();
        p.set(AttrId(0), Value::Int(key));
        Event::with_payload(seq, EventTypeId(ty), time, NodeId(0), p)
    }

    fn seq_ab(window: Timestamp) -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
            vec![],
            window,
        )
        .unwrap()
    }

    #[test]
    fn seq_matches_in_order_only() {
        let q = seq_ab(100);
        let mut ev1 = Evaluator::for_query(&q);
        // a@1, b@2, a@3, b@4 → matches: (a1,b2), (a1,b4), (a3,b4).
        let trace = [ev(0, 0, 1), ev(1, 1, 2), ev(2, 0, 3), ev(3, 1, 4)];
        let matches = ev1.run(&trace);
        let fps: Vec<Vec<u64>> = matches.iter().map(Match::fingerprint).collect();
        assert_eq!(fps.len(), 3);
        assert!(fps.contains(&vec![0, 1]));
        assert!(fps.contains(&vec![0, 3]));
        assert!(fps.contains(&vec![2, 3]));
    }

    #[test]
    fn window_excludes_stale_partials() {
        let q = seq_ab(10);
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 0, 1), ev(1, 1, 20)];
        assert!(e.run(&trace).is_empty());
        // Within the window it matches.
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 0, 15), ev(1, 1, 20)];
        assert_eq!(e.run(&trace).len(), 1);
    }

    #[test]
    fn and_matches_any_order() {
        let q = Query::build(
            QueryId(0),
            &Pattern::and([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
            vec![],
            100,
        )
        .unwrap();
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 1, 1), ev(1, 0, 2)];
        assert_eq!(e.run(&trace).len(), 1);
    }

    #[test]
    fn skip_till_any_match_explodes_combinatorially() {
        // n a-events followed by one b: n matches of SEQ(A, B).
        let q = seq_ab(1000);
        let mut e = Evaluator::for_query(&q);
        let mut trace: Vec<Event> = (0..10).map(|i| ev(i, 0, i)).collect();
        trace.push(ev(10, 1, 50));
        assert_eq!(e.run(&trace).len(), 10);
    }

    #[test]
    fn predicates_filter_matches() {
        let pred = Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(1), AttrId(0)),
            0.5,
        );
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
            vec![pred],
            100,
        )
        .unwrap();
        let mut e = Evaluator::for_query(&q);
        let trace = [ev_key(0, 0, 1, 7), ev_key(1, 0, 2, 8), ev_key(2, 1, 3, 7)];
        let matches = e.run(&trace);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].fingerprint(), vec![0, 2]);
    }

    #[test]
    fn nested_seq_and() {
        // SEQ(AND(A, B), C): both A and B before C.
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
                Pattern::leaf(EventTypeId(2)),
            ]),
            vec![],
            100,
        )
        .unwrap();
        let mut e = Evaluator::for_query(&q);
        // b@1, a@2, c@3 → one match; c@0 first would not.
        let trace = [ev(0, 1, 1), ev(1, 0, 2), ev(2, 2, 3)];
        assert_eq!(e.run(&trace).len(), 1);
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 2, 1), ev(1, 1, 2), ev(2, 0, 3)];
        assert!(e.run(&trace).is_empty());
    }

    #[test]
    fn projection_evaluation() {
        // Evaluate only the projection SEQ(A, C) of SEQ(A, B, C).
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ]),
            vec![],
            100,
        )
        .unwrap();
        let prims: PrimSet = [PrimId(0), PrimId(2)].into_iter().collect();
        let mut e = Evaluator::new(&q, prims);
        // a@1, c@2 is a projection match even though no b occurred.
        let trace = [ev(0, 0, 1), ev(1, 2, 2)];
        let matches = e.run(&trace);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].prims(), prims);
    }

    #[test]
    fn nseq_blocks_matches_with_forbidden_event() {
        // NSEQ(A, B, C): A…C matches only without a B in between.
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 0, 1), ev(1, 1, 2), ev(2, 2, 3)];
        assert!(e.run(&trace).is_empty());
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 0, 1), ev(1, 2, 3), ev(2, 1, 5)];
        assert_eq!(e.run(&trace).len(), 1);
    }

    #[test]
    fn nseq_forbidden_composite_pattern() {
        // NSEQ(A, SEQ(B, D), C): only a full B→D sequence in between blocks.
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::seq([Pattern::leaf(EventTypeId(1)), Pattern::leaf(EventTypeId(3))]),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        // A, B (no D), C: matches.
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 0, 1), ev(1, 1, 2), ev(2, 2, 5)];
        assert_eq!(e.run(&trace).len(), 1);
        // A, B, D, C: blocked.
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 0, 1), ev(1, 1, 2), ev(2, 3, 3), ev(3, 2, 5)];
        assert!(e.run(&trace).is_empty());
        // A, D, B, C (wrong forbidden order): matches.
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 0, 1), ev(1, 3, 2), ev(2, 1, 3), ev(3, 2, 5)];
        assert_eq!(e.run(&trace).len(), 1);
    }

    #[test]
    fn partials_accounting() {
        let q = seq_ab(1000);
        let mut e = Evaluator::for_query(&q);
        let trace: Vec<Event> = (0..5).map(|i| ev(i, 0, i)).collect();
        e.run(&trace);
        assert_eq!(e.open_partials(), 5);
        assert_eq!(e.partials_created(), 5);
    }

    #[test]
    fn save_restore_mid_stream_resumes_identically() {
        // NSEQ exercises the recursive negation state (sub-evaluator +
        // forbidden store) alongside the open-partial store.
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        let trace: Vec<Event> = (0..30).map(|i| ev(i, (i % 3) as u16, i * 4)).collect();
        let full: Vec<Vec<u64>> = Evaluator::for_query(&q)
            .run(&trace)
            .iter()
            .map(Match::fingerprint)
            .collect();
        for split in [1usize, 7, 15, 29] {
            let mut first = Evaluator::for_query(&q);
            let mut out: Vec<Vec<u64>> = first
                .run(&trace[..split])
                .iter()
                .map(Match::fingerprint)
                .collect();
            let saved = first.save_state();
            drop(first);
            let mut resumed = Evaluator::for_query(&q);
            resumed.restore_state(saved).unwrap();
            out.extend(resumed.run(&trace[split..]).iter().map(Match::fingerprint));
            assert_eq!(out, full, "split at {split}");
        }
    }

    #[test]
    fn restore_rejects_mismatched_structure() {
        let with_neg = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        let saved = Evaluator::for_query(&with_neg).save_state();
        let mut plain = Evaluator::for_query(&seq_ab(100));
        assert!(plain.restore_state(saved).is_err());
    }

    #[test]
    fn duplicate_type_prims_supported() {
        // SEQ(A, A): both prims reference type 0 (centralized evaluation
        // supports this even though aMuSE does not).
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(0))]),
            vec![],
            100,
        )
        .unwrap();
        let mut e = Evaluator::for_query(&q);
        let trace = [ev(0, 0, 1), ev(1, 0, 2), ev(2, 0, 3)];
        // Matches: (0,1), (0,2), (1,2).
        assert_eq!(e.run(&trace).len(), 3);
    }
}
