//! Sorted, window-pruned storage for (partial) matches — the index behind
//! the join engine and the evaluator's open-partial set.
//!
//! Entries are kept sorted by their earliest constituent timestamp so a
//! probe can binary-search the window-compatible slice instead of scanning
//! the whole buffer. Eviction is split in two:
//!
//! * a *logical horizon* (watermark) that only ever advances and is applied
//!   on every read — readers never observe an entry a retain-per-arrival
//!   strategy would already have dropped, and
//! * a *physical drain* that truncates the dead prefix, but only once the
//!   horizon has advanced by at least a configurable stride, amortizing the
//!   O(n) memmove over many arrivals.
//!
//! Because the horizon is monotone, the set of live entries is always a
//! suffix of the sorted vector; "evict" is a prefix truncation, never a
//! scattered retain.

use super::Match;
use muse_core::event::Timestamp;
use serde::{Deserialize, Serialize};

/// A buffered match with its cached time span (so probes never re-scan the
/// match's events for timestamps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredMatch {
    /// Earliest constituent timestamp — the sort key.
    pub first: Timestamp,
    /// Latest constituent timestamp.
    pub last: Timestamp,
    /// The match itself.
    pub m: Match,
}

/// The checkpointable dynamic state of a [`MatchStore`]: the buffered
/// matches in physical entry order (live and not-yet-drained dead alike)
/// plus the eviction bookkeeping. The cached `first`/`last` spans are
/// *not* part of the state — they are recomputed from each match on
/// restore, so a snapshot can never desynchronize them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreState {
    /// Buffered matches in entry order (sorted by first timestamp, ties in
    /// insertion order).
    pub matches: Vec<Match>,
    /// Logical eviction watermark.
    pub horizon: Timestamp,
    /// Horizon value at the last physical drain.
    pub drained_at: Timestamp,
    /// Dead entries physically dropped so far.
    pub evicted: u64,
}

/// An indexed buffer of matches ordered by [`Match::first_time`], with
/// watermark-based eviction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchStore {
    /// Sorted by `first` (ties keep insertion order).
    entries: Vec<StoredMatch>,
    /// Logical eviction watermark: entries with `first < horizon` are dead.
    horizon: Timestamp,
    /// Horizon value at the last physical drain.
    drained_at: Timestamp,
    /// Dead entries physically dropped so far.
    evicted: u64,
}

impl MatchStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a match, keeping the buffer sorted by first timestamp.
    /// Entries with equal keys keep their insertion order.
    pub fn insert(&mut self, m: Match) {
        let (first, last) = (m.first_time(), m.last_time());
        let idx = self.entries.partition_point(|e| e.first <= first);
        self.entries.insert(idx, StoredMatch { first, last, m });
    }

    /// Inserts a batch of matches in one merge pass (cheaper than repeated
    /// [`MatchStore::insert`] when many matches arrive per trigger).
    pub fn insert_batch(&mut self, batch: Vec<Match>) {
        if batch.is_empty() {
            return;
        }
        let mut incoming: Vec<StoredMatch> = batch
            .into_iter()
            .map(|m| StoredMatch {
                first: m.first_time(),
                last: m.last_time(),
                m,
            })
            .collect();
        // Stable, so same-key batch entries keep their creation order.
        incoming.sort_by_key(|e| e.first);
        if self
            .entries
            .last()
            .is_none_or(|e| e.first <= incoming[0].first)
        {
            self.entries.append(&mut incoming);
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + incoming.len());
        let mut new = incoming.into_iter().peekable();
        for old in self.entries.drain(..) {
            // Existing entries come first among equal keys.
            while new.peek().is_some_and(|n| n.first < old.first) {
                merged.push(new.next().unwrap());
            }
            merged.push(old);
        }
        merged.extend(new);
        self.entries = merged;
    }

    /// Index of the first live entry.
    fn live_start(&self) -> usize {
        self.entries.partition_point(|e| e.first < self.horizon)
    }

    /// The live (non-evicted) entries, oldest first.
    pub fn live(&self) -> &[StoredMatch] {
        &self.entries[self.live_start()..]
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len() - self.live_start()
    }

    /// `true` when no live entry remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physically buffered entries (live + not-yet-drained dead).
    pub fn physical_len(&self) -> usize {
        self.entries.len()
    }

    /// The live entries that could merge with a probe spanning
    /// `[first, last]` into a match within `window`: exactly those whose
    /// first timestamp lies in `[max(horizon, last − window), first + window]`.
    /// Anything outside would force the merged span beyond the window, so
    /// skipping it cannot change the join's output.
    pub fn compatible(
        &self,
        first: Timestamp,
        last: Timestamp,
        window: Timestamp,
    ) -> &[StoredMatch] {
        let lo = self.horizon.max(last.saturating_sub(window));
        let hi = first.saturating_add(window);
        let start = self.entries.partition_point(|e| e.first < lo);
        let end = self.entries.partition_point(|e| e.first <= hi);
        &self.entries[start..end.max(start)]
    }

    /// The live entries with first timestamp ≥ `lo` (no upper bound) —
    /// the evaluator's probe, whose window check lives in `can_extend`.
    pub fn live_from(&self, lo: Timestamp) -> &[StoredMatch] {
        let lo = self.horizon.max(lo);
        let start = self.entries.partition_point(|e| e.first < lo);
        &self.entries[start..]
    }

    /// Advances the logical horizon (monotone; smaller values are ignored)
    /// and physically truncates the dead prefix once the horizon has moved
    /// at least `stride` past the last drain. Returns the number of entries
    /// dropped by this call.
    pub fn advance_horizon(&mut self, horizon: Timestamp, stride: Timestamp) -> u64 {
        if horizon > self.horizon {
            self.horizon = horizon;
        }
        if self.horizon < self.drained_at.saturating_add(stride.max(1)) {
            return 0;
        }
        let dead = self.live_start();
        if dead > 0 {
            self.entries.drain(..dead);
            self.evicted += dead as u64;
        }
        self.drained_at = self.horizon;
        dead as u64
    }

    /// Current logical horizon.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Entries physically dropped over the store's lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Captures the store's dynamic state for a checkpoint.
    pub fn save_state(&self) -> StoreState {
        StoreState {
            matches: self.entries.iter().map(|e| e.m.clone()).collect(),
            horizon: self.horizon,
            drained_at: self.drained_at,
            evicted: self.evicted,
        }
    }

    /// Rebuilds a store from a saved state. The matches must be in the
    /// order [`MatchStore::save_state`] exported them (already sorted by
    /// first timestamp with insertion-order ties), so no re-sort happens
    /// and tie order — which determines probe order — survives the
    /// round trip exactly.
    pub fn restore_state(state: StoreState) -> Self {
        Self {
            entries: state
                .matches
                .into_iter()
                .map(|m| StoredMatch {
                    first: m.first_time(),
                    last: m.last_time(),
                    m,
                })
                .collect(),
            horizon: state.horizon,
            drained_at: state.drained_at,
            evicted: state.evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::event::Event;
    use muse_core::types::{EventTypeId, NodeId, PrimId};

    fn m(seq: u64, time: Timestamp) -> Match {
        Match::single(PrimId(0), Event::new(seq, EventTypeId(0), time, NodeId(0)))
    }

    fn firsts(s: &[StoredMatch]) -> Vec<Timestamp> {
        s.iter().map(|e| e.first).collect()
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut s = MatchStore::new();
        for (seq, t) in [(0, 30), (1, 10), (2, 20), (3, 10)] {
            s.insert(m(seq, t));
        }
        assert_eq!(firsts(s.live()), vec![10, 10, 20, 30]);
        // Equal keys keep insertion order.
        assert_eq!(s.live()[0].m.fingerprint(), vec![1]);
        assert_eq!(s.live()[1].m.fingerprint(), vec![3]);
    }

    #[test]
    fn insert_batch_matches_repeated_insert() {
        let mut a = MatchStore::new();
        let mut b = MatchStore::new();
        for (seq, t) in [(0, 5), (1, 40), (2, 20)] {
            a.insert(m(seq, t));
            b.insert(m(seq, t));
        }
        let batch: Vec<Match> = [(3, 20), (4, 1), (5, 60)].map(|(q, t)| m(q, t)).into();
        for x in batch.clone() {
            a.insert(x);
        }
        b.insert_batch(batch);
        assert_eq!(a, b);
    }

    #[test]
    fn compatible_slices_by_window() {
        let mut s = MatchStore::new();
        for (seq, t) in [(0, 0), (1, 50), (2, 100), (3, 150), (4, 200)] {
            s.insert(m(seq, t));
        }
        // Probe [100, 100] with window 60: firsts in [40, 160].
        assert_eq!(firsts(s.compatible(100, 100, 60)), vec![50, 100, 150]);
        // Horizon cuts the lower end further.
        s.advance_horizon(120, 1_000_000);
        assert_eq!(firsts(s.compatible(100, 100, 60)), vec![150]);
    }

    #[test]
    fn horizon_is_logical_until_stride_elapses() {
        let mut s = MatchStore::new();
        for (seq, t) in [(0, 0), (1, 10), (2, 90)] {
            s.insert(m(seq, t));
        }
        // Large stride: no physical drain yet, but reads hide the dead.
        assert_eq!(s.advance_horizon(50, 1_000), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.physical_len(), 3);
        assert_eq!(firsts(s.live()), vec![90]);
        assert!(s.compatible(95, 95, 100).iter().all(|e| e.first >= 50));
        // Once the horizon moves ≥ stride past the last drain, it truncates.
        assert_eq!(s.advance_horizon(1_060, 1_000), 3);
        assert_eq!(s.physical_len(), 0);
        assert_eq!(s.evicted(), 3);
    }

    #[test]
    fn horizon_never_regresses() {
        let mut s = MatchStore::new();
        s.insert(m(0, 100));
        s.advance_horizon(150, 1);
        assert_eq!(s.len(), 0);
        // A smaller watermark (out-of-order input) must not resurrect.
        s.advance_horizon(50, 1);
        assert_eq!(s.horizon(), 150);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn save_restore_roundtrip_preserves_everything() {
        let mut s = MatchStore::new();
        for (seq, t) in [(5, 1), (0, 30), (1, 10), (2, 20), (3, 10), (4, 90)] {
            s.insert(m(seq, t));
        }
        // Leave the store mid-lifecycle: one physical drain on record
        // (t=1 dropped), then a logical-only advance that hides the t=10
        // entries without draining them.
        s.advance_horizon(5, 1);
        s.advance_horizon(12, 1_000);
        assert_eq!(s.evicted(), 1);
        assert_eq!(s.physical_len(), 5);
        let restored = MatchStore::restore_state(s.save_state());
        assert_eq!(restored, s);
        // Insertion-order ties survive (seq 1 before seq 3 at t=10), and
        // the hidden-but-buffered dead prefix is included.
        let all: Vec<u64> = restored
            .entries
            .iter()
            .map(|e| e.m.fingerprint()[0])
            .collect();
        assert_eq!(all, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn live_from_applies_horizon_and_bound() {
        let mut s = MatchStore::new();
        for (seq, t) in [(0, 10), (1, 20), (2, 30)] {
            s.insert(m(seq, t));
        }
        assert_eq!(firsts(s.live_from(15)), vec![20, 30]);
        s.advance_horizon(25, 1_000);
        assert_eq!(firsts(s.live_from(0)), vec![30]);
    }
}
