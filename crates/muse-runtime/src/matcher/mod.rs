//! Match representation and query semantics (§2.2 of the paper).
//!
//! A *match* assigns one event to each (positive) primitive operator of a
//! query or projection. The match is valid when the assigned events respect
//! the operator tree's order constraints, the time window, and the
//! predicates; `NSEQ` absence is checked separately against the forbidden
//! pattern's matches ([`nseq_violated`]).

pub mod evaluator;
pub mod join;
pub mod store;

use muse_core::event::{Event, Timestamp};
use muse_core::query::{OrderRel, Query};
use muse_core::types::PrimSet;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub use evaluator::{EvalState, Evaluator};
pub use join::{JoinState, JoinTask, NaiveJoinTask, SlotSpec};
pub use store::{MatchStore, StoreState, StoredMatch};

/// A (partial) match: events assigned to primitive operators, sorted by
/// primitive id. Prim ids are those of the *source query*, so matches of
/// different projections of one query merge without renaming.
///
/// The event list is shared (`Arc`), so cloning a match — which the join
/// engine does once per store insert and per network route — is O(1) and
/// allocation-free instead of a deep copy of every payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Match {
    events: Arc<[(muse_core::types::PrimId, Event)]>,
}

impl Match {
    /// Creates a match from `(prim, event)` pairs.
    pub fn new(mut events: Vec<(muse_core::types::PrimId, Event)>) -> Self {
        events.sort_by_key(|(p, _)| *p);
        Self {
            events: events.into(),
        }
    }

    /// A single-event match for a primitive operator.
    pub fn single(prim: muse_core::types::PrimId, event: Event) -> Self {
        Self {
            events: vec![(prim, event)].into(),
        }
    }

    /// The assigned primitive operators.
    pub fn prims(&self) -> PrimSet {
        self.events.iter().map(|(p, _)| *p).collect()
    }

    /// The event assigned to a primitive operator.
    pub fn get(&self, prim: muse_core::types::PrimId) -> Option<&Event> {
        self.events
            .binary_search_by_key(&prim, |(p, _)| *p)
            .ok()
            .map(|i| &self.events[i].1)
    }

    /// All `(prim, event)` pairs in primitive order.
    pub fn entries(&self) -> &[(muse_core::types::PrimId, Event)] {
        &self.events
    }

    /// Number of assigned primitives.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no primitive is assigned.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Earliest timestamp in the match.
    pub fn first_time(&self) -> Timestamp {
        self.events.iter().map(|(_, e)| e.time).min().unwrap_or(0)
    }

    /// Latest timestamp in the match.
    pub fn last_time(&self) -> Timestamp {
        self.events.iter().map(|(_, e)| e.time).max().unwrap_or(0)
    }

    /// Earliest trace position in the match.
    pub fn first_pos(&self) -> (Timestamp, u64) {
        self.events
            .iter()
            .map(|(_, e)| e.trace_pos())
            .min()
            .unwrap_or((0, 0))
    }

    /// Latest trace position in the match.
    pub fn last_pos(&self) -> (Timestamp, u64) {
        self.events
            .iter()
            .map(|(_, e)| e.trace_pos())
            .max()
            .unwrap_or((0, 0))
    }

    /// Merges two matches of disjoint or agreeing primitive sets. Returns
    /// `None` if a shared primitive is assigned different events (matches
    /// from overlapping projections must agree on shared primitives,
    /// cf. Example 8 of the paper).
    pub fn merge(&self, other: &Match) -> Option<Match> {
        let mut events = self.events.to_vec();
        for (p, e) in other.events.iter() {
            match events.binary_search_by_key(p, |(q, _)| *q) {
                Ok(i) => {
                    if events[i].1.seq != e.seq {
                        return None;
                    }
                }
                Err(i) => events.insert(i, (*p, e.clone())),
            }
        }
        Some(Match {
            events: events.into(),
        })
    }

    /// Checks that both matches assign the same event to every primitive of
    /// `shared` that they both assign. This is a cheap pre-merge guard:
    /// when it returns `false`, [`Match::merge`] is guaranteed to fail, so
    /// the merge's allocation and event copies can be skipped.
    pub fn agrees_on(&self, other: &Match, shared: PrimSet) -> bool {
        shared.iter().all(|p| match (self.get(p), other.get(p)) {
            (Some(a), Some(b)) => a.seq == b.seq,
            _ => true,
        })
    }

    /// A canonical fingerprint (sorted event sequence numbers), usable for
    /// deduplication and comparison with ground-truth results.
    pub fn fingerprint(&self) -> Vec<u64> {
        self.events.iter().map(|(_, e)| e.seq).collect()
    }
}

/// Checks whether an assignment is internally valid w.r.t. the query's
/// order constraints, time window, and the predicates decidable within the
/// assigned primitives. Negation is *not* checked here (see
/// [`nseq_violated`]); completeness (which primitives must be assigned) is
/// the caller's concern.
///
/// Order constraints of a projection equal the restriction of its source
/// query's constraints (projection removes operators but preserves every
/// surviving pair's least common ancestor kind), so the query-level
/// constraint matrix applies to matches of any of its projections.
pub fn is_valid_match(m: &Match, query: &Query) -> bool {
    // Window.
    if m.last_time() - m.first_time() > query.window() {
        return false;
    }
    // Pairwise order constraints.
    for (i, (a, ea)) in m.events.iter().enumerate() {
        for (b, eb) in &m.events[i + 1..] {
            match query.order_rel(*a, *b) {
                OrderRel::Before => {
                    if ea.trace_pos() >= eb.trace_pos() {
                        return false;
                    }
                }
                OrderRel::After => {
                    if ea.trace_pos() <= eb.trace_pos() {
                        return false;
                    }
                }
                OrderRel::Unordered => {}
            }
        }
    }
    // Predicates entirely within the (positive) assignment.
    let positive = m.prims();
    for pred in query.predicates() {
        if pred.prims().is_subset(positive) {
            match pred.evaluate(|p| m.get(p)) {
                Some(true) => {}
                _ => return false,
            }
        }
    }
    true
}

/// Checks whether a forbidden (negated) match `neg` invalidates the
/// positive match `m` for an `NSEQ` context with the given first/last
/// primitive sets: the forbidden pattern must lie strictly between the end
/// of the first part and the start of the last part, and must satisfy the
/// predicates connecting it to the positive assignment.
pub fn nseq_violated(m: &Match, neg: &Match, first: PrimSet, last: PrimSet, query: &Query) -> bool {
    let low = m
        .entries()
        .iter()
        .filter(|(p, _)| first.contains(*p))
        .map(|(_, e)| e.trace_pos())
        .max();
    let high = m
        .entries()
        .iter()
        .filter(|(p, _)| last.contains(*p))
        .map(|(_, e)| e.trace_pos())
        .min();
    let (Some(low), Some(high)) = (low, high) else {
        // Context not (fully) part of this projection: nothing to check.
        return false;
    };
    if !(neg.first_pos() > low && neg.last_pos() < high) {
        return false;
    }
    // Predicates linking the negated primitives to the assignment: the
    // forbidden pattern only counts if it satisfies them.
    let combined_prims = m.prims().union(neg.prims());
    for pred in query.predicates() {
        let prims = pred.prims();
        if !prims.is_disjoint(neg.prims()) && prims.is_subset(combined_prims) {
            let ok = pred.evaluate(|p| neg.get(p).or_else(|| m.get(p)));
            if ok != Some(true) {
                return false;
            }
        }
    }
    true
}

/// The absence constraints a complete match of an `NSEQ` query certifies:
/// for each `NSEQ` context fully assigned by `m`, one
/// `(negated type, lo, hi)` triple per negated primitive, where `lo`/`hi`
/// are the *timestamps* of the witness events bounding the forbidden
/// interval — the same bounds [`nseq_violated`] checks, so a provenance
/// record carrying these windows is a self-contained witness: the match is
/// valid iff no event of the negated type (passing the linking predicates)
/// falls strictly inside any of its windows. Empty for negation-free
/// queries and for partial matches not covering a context.
pub fn absence_windows(
    m: &Match,
    query: &Query,
) -> Vec<(muse_core::types::EventTypeId, Timestamp, Timestamp)> {
    let mut out = Vec::new();
    for ctx in query.nseq_contexts() {
        let low = m
            .entries()
            .iter()
            .filter(|(p, _)| ctx.first.contains(*p))
            .map(|(_, e)| e.trace_pos())
            .max();
        let high = m
            .entries()
            .iter()
            .filter(|(p, _)| ctx.last.contains(*p))
            .map(|(_, e)| e.trace_pos())
            .min();
        let (Some(low), Some(high)) = (low, high) else {
            continue;
        };
        for p in ctx.negated.iter() {
            out.push((query.prim_type(p), low.0, high.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::event::{Payload, Value};
    use muse_core::query::{CmpOp, Pattern, Predicate};
    use muse_core::types::{AttrId, EventTypeId, NodeId, PrimId, QueryId};

    fn ev(seq: u64, ty: u16, time: Timestamp) -> Event {
        Event::new(seq, EventTypeId(ty), time, NodeId(0))
    }

    fn ev_key(seq: u64, ty: u16, time: Timestamp, key: i64) -> Event {
        let mut p = Payload::new();
        p.set(AttrId(0), Value::Int(key));
        Event::with_payload(seq, EventTypeId(ty), time, NodeId(0), p)
    }

    /// SEQ(AND(A, B), C) with window 100.
    fn query() -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
                Pattern::leaf(EventTypeId(2)),
            ]),
            vec![],
            100,
        )
        .unwrap()
    }

    #[test]
    fn match_accessors() {
        let m = Match::new(vec![(PrimId(1), ev(5, 1, 20)), (PrimId(0), ev(3, 0, 10))]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.prims().len(), 2);
        assert_eq!(m.get(PrimId(0)).unwrap().seq, 3);
        assert_eq!(m.first_time(), 10);
        assert_eq!(m.last_time(), 20);
        assert_eq!(m.fingerprint(), vec![3, 5]);
    }

    #[test]
    fn merge_disjoint_and_agreeing() {
        let a = Match::single(PrimId(0), ev(1, 0, 10));
        let b = Match::single(PrimId(1), ev(2, 1, 20));
        let ab = a.merge(&b).unwrap();
        assert_eq!(ab.len(), 2);
        // Overlapping and agreeing.
        let ab2 = ab.merge(&a).unwrap();
        assert_eq!(ab2, ab);
        // Overlapping and disagreeing.
        let a_alt = Match::single(PrimId(0), ev(9, 0, 11));
        assert!(ab.merge(&a_alt).is_none());
    }

    #[test]
    fn valid_match_order_and_window() {
        let q = query();
        // A@10, B@5 (AND: unordered), C@50: valid.
        let m = Match::new(vec![
            (PrimId(0), ev(1, 0, 10)),
            (PrimId(1), ev(0, 1, 5)),
            (PrimId(2), ev(2, 2, 50)),
        ]);
        assert!(is_valid_match(&m, &q));
        // C before A: SEQ violated.
        let m = Match::new(vec![
            (PrimId(0), ev(1, 0, 10)),
            (PrimId(1), ev(0, 1, 5)),
            (PrimId(2), ev(2, 2, 7)),
        ]);
        assert!(!is_valid_match(&m, &q));
        // Window exceeded.
        let m = Match::new(vec![
            (PrimId(0), ev(1, 0, 10)),
            (PrimId(1), ev(0, 1, 5)),
            (PrimId(2), ev(2, 2, 200)),
        ]);
        assert!(!is_valid_match(&m, &q));
    }

    #[test]
    fn seq_tie_on_timestamp_uses_seq() {
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
            vec![],
            100,
        )
        .unwrap();
        // Same timestamp: trace order decided by seq.
        let m = Match::new(vec![(PrimId(0), ev(1, 0, 10)), (PrimId(1), ev(2, 1, 10))]);
        assert!(is_valid_match(&m, &q));
        let m = Match::new(vec![(PrimId(0), ev(2, 0, 10)), (PrimId(1), ev(1, 1, 10))]);
        assert!(!is_valid_match(&m, &q));
    }

    #[test]
    fn predicates_checked() {
        let pred = Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(1), AttrId(0)),
            0.5,
        );
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
            vec![pred],
            100,
        )
        .unwrap();
        let good = Match::new(vec![
            (PrimId(0), ev_key(1, 0, 10, 7)),
            (PrimId(1), ev_key(2, 1, 20, 7)),
        ]);
        assert!(is_valid_match(&good, &q));
        let bad = Match::new(vec![
            (PrimId(0), ev_key(1, 0, 10, 7)),
            (PrimId(1), ev_key(2, 1, 20, 8)),
        ]);
        assert!(!is_valid_match(&bad, &q));
    }

    #[test]
    fn nseq_violation_interval() {
        // NSEQ(A, B, C): B=prim 1 forbidden between A and C.
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        let ctx = q.nseq_contexts()[0];
        let m = Match::new(vec![(PrimId(0), ev(1, 0, 10)), (PrimId(2), ev(5, 2, 50))]);
        // B inside (10, 50): violates.
        let inside = Match::single(PrimId(1), ev(3, 1, 30));
        assert!(nseq_violated(&m, &inside, ctx.first, ctx.last, &q));
        // B before A: fine.
        let before = Match::single(PrimId(1), ev(0, 1, 5));
        assert!(!nseq_violated(&m, &before, ctx.first, ctx.last, &q));
        // B after C: fine.
        let after = Match::single(PrimId(1), ev(9, 1, 60));
        assert!(!nseq_violated(&m, &after, ctx.first, ctx.last, &q));
    }

    #[test]
    fn nseq_violation_respects_predicates() {
        // NSEQ(A, B, C) where the forbidden B must share A's key.
        let pred = Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(1), AttrId(0)),
            0.5,
        );
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![pred],
            100,
        )
        .unwrap();
        let ctx = q.nseq_contexts()[0];
        let m = Match::new(vec![
            (PrimId(0), ev_key(1, 0, 10, 7)),
            (PrimId(2), ev_key(5, 2, 50, 0)),
        ]);
        let matching_key = Match::single(PrimId(1), ev_key(3, 1, 30, 7));
        assert!(nseq_violated(&m, &matching_key, ctx.first, ctx.last, &q));
        let other_key = Match::single(PrimId(1), ev_key(3, 1, 30, 9));
        assert!(!nseq_violated(&m, &other_key, ctx.first, ctx.last, &q));
    }
}
