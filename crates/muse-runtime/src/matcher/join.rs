//! Partial-match joins: evaluating a projection from the matches of its
//! combination's predecessor projections.
//!
//! A MuSE graph vertex `(p, n)` derives matches of `p` from predecessor
//! match streams (§4.3). Distribution makes these streams arrive in
//! arbitrary relative order, so — like the paper's automata whose states
//! accept any still-needed sub-projection result, with order constraints as
//! transition guards — the join buffers matches per input slot and checks
//! all order/window/predicate constraints on the merged assignment.
//!
//! Combination predecessors may *overlap* in their primitive operators
//! (e.g. `SEQ(A,B)` and `SEQ(B,C)` for `SEQ(A,B,C)`); overlapping inputs
//! must agree on the shared primitives' events (cf. Example 8), which
//! [`Match::merge`] enforces.
//!
//! Negated primitives arrive as raw primitive streams (negation-closure
//! keeps their context together, §5.2); per `NSEQ` context the join runs a
//! sub-[`Evaluator`] over the forbidden pattern and suppresses positive
//! matches with a forbidden match strictly inside the context interval.

use super::{is_valid_match, nseq_violated, Evaluator, Match};
use muse_core::event::Timestamp;
use muse_core::query::{NSeqContext, Query};
use muse_core::types::PrimSet;
use serde::{Deserialize, Serialize};

/// Static description of one input slot of a join: the predecessor
/// projection's primitive operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotSpec {
    /// The predecessor projection's primitives.
    pub prims: PrimSet,
    /// `true` if the slot carries only negated primitives (a negation guard
    /// stream rather than a positive input).
    pub negated: bool,
}

/// A join task deriving matches of one target projection from predecessor
/// match streams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinTask {
    query: Query,
    target: PrimSet,
    /// Positive primitives of the target (events of emitted matches).
    positive: PrimSet,
    slots: Vec<SlotSpec>,
    /// Buffered matches per positive slot (parallel to `slots`; negated
    /// slots keep theirs inside `negations`).
    stores: Vec<Vec<Match>>,
    /// `NSEQ` contexts whose absence check happens at this join.
    negations: Vec<NegationCheck>,
    /// Largest timestamp seen on any input.
    max_time: Timestamp,
    /// Eviction slack: stores keep matches for `slack × window` (≥ 1.0;
    /// > 1 tolerates out-of-order arrival in the threaded executor).
    slack: f64,
    /// Matches emitted (for metrics).
    emitted: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NegationCheck {
    context: NSeqContext,
    evaluator: Evaluator,
    forbidden: Vec<Match>,
}

impl JoinTask {
    /// Creates a join for the projection of `query` with primitives
    /// `target`, fed by predecessors with the given primitive sets (the
    /// combination `β(target)` realized by the MuSE graph edges).
    pub fn new(query: &Query, target: PrimSet, predecessors: &[PrimSet]) -> Self {
        Self::with_slack(query, target, predecessors, 1.0)
    }

    /// Like [`JoinTask::new`] with an eviction slack factor for
    /// out-of-order tolerant execution.
    pub fn with_slack(
        query: &Query,
        target: PrimSet,
        predecessors: &[PrimSet],
        slack: f64,
    ) -> Self {
        assert!(slack >= 1.0);
        let negated_prims = query.negated_prims();
        let slots: Vec<SlotSpec> = predecessors
            .iter()
            .map(|&prims| SlotSpec {
                prims,
                negated: prims.is_subset(negated_prims),
            })
            .collect();
        let guard_prims = slots
            .iter()
            .filter(|s| s.negated)
            .fold(PrimSet::empty(), |acc, s| acc.union(s.prims));
        let negations = query
            .nseq_contexts()
            .iter()
            .filter(|ctx| {
                let full = ctx.first.union(ctx.negated).union(ctx.last);
                full.is_subset(target) && !ctx.negated.intersect(guard_prims).is_empty()
            })
            .map(|ctx| NegationCheck {
                context: *ctx,
                evaluator: Evaluator::with_positive(query, ctx.negated, ctx.negated),
                forbidden: Vec::new(),
            })
            .collect();
        let stores = vec![Vec::new(); slots.len()];
        Self {
            query: query.clone(),
            target,
            positive: target.difference(negated_prims),
            slots,
            stores,
            negations,
            max_time: 0,
            slack,
            emitted: 0,
        }
    }

    /// The target projection's primitives.
    pub fn target(&self) -> PrimSet {
        self.target
    }

    /// The input slots.
    pub fn slots(&self) -> &[SlotSpec] {
        &self.slots
    }

    /// Total buffered matches across positive stores.
    pub fn buffered(&self) -> usize {
        self.stores.iter().map(Vec::len).sum()
    }

    /// Matches emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Feeds one match into a slot, returning the complete target matches
    /// it triggers.
    ///
    /// # Panics
    ///
    /// Panics if the slot index is out of range.
    pub fn on_match(&mut self, slot: usize, m: Match) -> Vec<Match> {
        self.max_time = self.max_time.max(m.last_time());
        if self.slots[slot].negated {
            // Negation guard: feed the forbidden-pattern evaluator of each
            // context this primitive belongs to.
            for (prim, event) in m.entries() {
                for neg in &mut self.negations {
                    if neg.context.negated.contains(*prim) {
                        let found = neg.evaluator.on_event(event);
                        neg.forbidden.extend(found);
                    }
                }
            }
            self.evict();
            return Vec::new();
        }

        // Join the new match against all other positive slots.
        let mut acc = vec![m.clone()];
        for (i, spec) in self.slots.iter().enumerate() {
            if i == slot || spec.negated {
                continue;
            }
            let mut next = Vec::new();
            for partial in &acc {
                for stored in &self.stores[i] {
                    if let Some(merged) = partial.merge(stored) {
                        if is_valid_match(&merged, &self.query) {
                            next.push(merged);
                        }
                    }
                }
            }
            acc = next;
            if acc.is_empty() {
                break;
            }
        }
        let mut emitted: Vec<Match> = acc
            .into_iter()
            .filter(|c| c.prims() == self.positive)
            .filter(|c| is_valid_match(c, &self.query))
            .filter(|c| self.passes_negation(c))
            .collect();
        // Deduplicate (overlapping slots can assemble the same final match
        // along different merge orders within one trigger).
        emitted.sort_by_key(Match::fingerprint);
        emitted.dedup_by(|a, b| a.fingerprint() == b.fingerprint());

        self.stores[slot].push(m);
        self.emitted += emitted.len() as u64;
        self.evict();
        emitted
    }

    fn passes_negation(&self, m: &Match) -> bool {
        self.negations.iter().all(|n| {
            n.forbidden
                .iter()
                .all(|f| !nseq_violated(m, f, n.context.first, n.context.last, &self.query))
        })
    }

    /// Drops buffered matches outside the (slack-scaled) window.
    fn evict(&mut self) {
        let horizon = self
            .max_time
            .saturating_sub((self.query.window() as f64 * self.slack) as Timestamp);
        for store in &mut self.stores {
            store.retain(|m| m.first_time() >= horizon);
        }
        for neg in &mut self.negations {
            neg.forbidden.retain(|m| m.first_time() >= horizon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::event::Event;
    use muse_core::query::Pattern;
    use muse_core::types::{EventTypeId, NodeId, PrimId, QueryId};

    fn ev(seq: u64, ty: u16, time: Timestamp) -> Event {
        Event::new(seq, EventTypeId(ty), time, NodeId(0))
    }

    fn ps(prims: impl IntoIterator<Item = u8>) -> PrimSet {
        prims.into_iter().map(PrimId).collect()
    }

    /// SEQ(A, B, C), window 100.
    fn seq_abc() -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ]),
            vec![],
            100,
        )
        .unwrap()
    }

    #[test]
    fn joins_disjoint_predecessors() {
        // β(SEQ(A,B,C)) = {SEQ(A,B), C}.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        let ab = Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]);
        assert!(join.on_match(0, ab).is_empty());
        let c = Match::single(PrimId(2), ev(2, 2, 3));
        let out = join.on_match(1, c);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fingerprint(), vec![0, 1, 2]);
        assert_eq!(join.emitted(), 1);
    }

    #[test]
    fn join_respects_order() {
        // C arriving with a position before B must not match.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        let ab = Match::new(vec![(PrimId(0), ev(1, 0, 5)), (PrimId(1), ev(3, 1, 9))]);
        join.on_match(0, ab);
        let c_early = Match::single(PrimId(2), ev(2, 2, 7));
        assert!(join.on_match(1, c_early).is_empty());
    }

    #[test]
    fn join_out_of_order_arrival() {
        // The C match arrives first; the AB match triggers the emission.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        let c = Match::single(PrimId(2), ev(2, 2, 30));
        assert!(join.on_match(1, c).is_empty());
        let ab = Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]);
        let out = join.on_match(0, ab);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn overlapping_predecessors_must_agree() {
        // β = {SEQ(A,B), SEQ(B,C)}: shared primitive B must be the same
        // event (Example 8 of the paper).
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([1, 2])]);
        let ab = Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]);
        join.on_match(0, ab);
        // Agreeing BC (same B event): emits.
        let bc_agree = Match::new(vec![(PrimId(1), ev(1, 1, 2)), (PrimId(2), ev(2, 2, 3))]);
        assert_eq!(join.on_match(1, bc_agree).len(), 1);
        // Disagreeing BC (different B event): no emission.
        let bc_other = Match::new(vec![(PrimId(1), ev(5, 1, 2)), (PrimId(2), ev(6, 2, 3))]);
        assert!(join.on_match(1, bc_other).is_empty());
    }

    #[test]
    fn skip_till_any_match_multiplicity() {
        // Two AB matches and one C: two emissions.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]),
        );
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(3, 0, 3)), (PrimId(1), ev(4, 1, 4))]),
        );
        let out = join.on_match(1, Match::single(PrimId(2), ev(9, 2, 10)));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn window_eviction() {
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]),
        );
        // A C far in the future evicts the stale AB and matches nothing.
        let out = join.on_match(1, Match::single(PrimId(2), ev(2, 2, 500)));
        assert!(out.is_empty());
        assert_eq!(join.buffered(), 1); // only the C remains
    }

    #[test]
    fn three_way_join() {
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0]), ps([1]), ps([2])]);
        join.on_match(0, Match::single(PrimId(0), ev(0, 0, 1)));
        join.on_match(1, Match::single(PrimId(1), ev(1, 1, 2)));
        let out = join.on_match(2, Match::single(PrimId(2), ev(2, 2, 3)));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn nseq_guard_slot_blocks_matches() {
        // NSEQ(A, B, C) with β = {SEQ(A, C) — via projection {0,2} — , B}.
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 2]), ps([1])]);
        assert!(join.slots()[1].negated);
        // Forbidden B at t=20 arrives before the positive part completes.
        join.on_match(1, Match::single(PrimId(1), ev(1, 1, 20)));
        // AC spanning the B: blocked.
        let ac_spanning = Match::new(vec![(PrimId(0), ev(0, 0, 10)), (PrimId(2), ev(2, 2, 30))]);
        assert!(join.on_match(0, ac_spanning).is_empty());
        // AC after the B: fine.
        let ac_after = Match::new(vec![(PrimId(0), ev(3, 0, 25)), (PrimId(2), ev(4, 2, 30))]);
        assert_eq!(join.on_match(0, ac_after).len(), 1);
    }

    #[test]
    fn nseq_composite_forbidden_pattern_assembled_from_primitives() {
        // NSEQ(A, SEQ(B, D), C): guards arrive as primitive B and D streams
        // and the join assembles the forbidden SEQ(B, D) itself.
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::seq([Pattern::leaf(EventTypeId(1)), Pattern::leaf(EventTypeId(3))]),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        // Positive prims: A=0, C=3? Leaf order: A=0, B=1, D=2, C=3.
        let positive = ps([0, 3]);
        let mut join = JoinTask::new(&q, q.prims(), &[positive, ps([1]), ps([2])]);
        // B@20 then D@25: forbidden pattern completes inside (10, 30).
        join.on_match(1, Match::single(PrimId(1), ev(1, 1, 20)));
        join.on_match(2, Match::single(PrimId(2), ev(2, 3, 25)));
        let ac = Match::new(vec![(PrimId(0), ev(0, 0, 10)), (PrimId(3), ev(5, 2, 30))]);
        assert!(join.on_match(0, ac).is_empty());
        // Only D (no B): no forbidden match, positive emits.
        let mut join = JoinTask::new(&q, q.prims(), &[positive, ps([1]), ps([2])]);
        join.on_match(2, Match::single(PrimId(2), ev(2, 3, 25)));
        let ac = Match::new(vec![(PrimId(0), ev(0, 0, 10)), (PrimId(3), ev(5, 2, 30))]);
        assert_eq!(join.on_match(0, ac).len(), 1);
    }

    #[test]
    fn no_duplicate_emissions_with_overlap() {
        // β = {AB, BC} and also {AC}? Use {AB, BC, AC}: all three overlap;
        // the same final match must be emitted exactly once per trigger.
        let q = seq_abc();
        let mut join =
            JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([1, 2]), ps([0, 2])]);
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]),
        );
        join.on_match(
            1,
            Match::new(vec![(PrimId(1), ev(1, 1, 2)), (PrimId(2), ev(2, 2, 3))]),
        );
        let out = join.on_match(
            2,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(2), ev(2, 2, 3))]),
        );
        assert_eq!(out.len(), 1);
    }
}
