//! Partial-match joins: evaluating a projection from the matches of its
//! combination's predecessor projections.
//!
//! A MuSE graph vertex `(p, n)` derives matches of `p` from predecessor
//! match streams (§4.3). Distribution makes these streams arrive in
//! arbitrary relative order, so — like the paper's automata whose states
//! accept any still-needed sub-projection result, with order constraints as
//! transition guards — the join buffers matches per input slot and checks
//! all order/window/predicate constraints on the merged assignment.
//!
//! Combination predecessors may *overlap* in their primitive operators
//! (e.g. `SEQ(A,B)` and `SEQ(B,C)` for `SEQ(A,B,C)`); overlapping inputs
//! must agree on the shared primitives' events (cf. Example 8), which
//! [`Match::merge`] enforces.
//!
//! Negated primitives arrive as raw primitive streams (negation-closure
//! keeps their context together, §5.2); per `NSEQ` context the join runs a
//! sub-[`Evaluator`] over the forbidden pattern and suppresses positive
//! matches with a forbidden match strictly inside the context interval.
//!
//! # Probe strategy
//!
//! [`JoinTask`] keeps each slot's matches in a [`MatchStore`] sorted by
//! first timestamp. An arriving match probes only the window-compatible
//! slice of each other slot (two binary searches) instead of the full
//! store, visits the slots smallest-slice-first so thin inputs cut the
//! candidate set early, and rejects pairs with a cheap window-span /
//! shared-primitive guard before paying for a merge. Eviction is a logical
//! watermark applied at probe time, with the physical prefix truncated only
//! every [`JoinTask::with_evict_stride`] ticks of horizon progress — the
//! emitted match stream is identical to the naive retain-per-arrival
//! strategy ([`NaiveJoinTask`]), which is kept as the reference
//! implementation for equivalence tests and benchmarks.

use super::evaluator::EvalState;
use super::store::{MatchStore, StoreState};
use super::{is_valid_match, nseq_violated, Evaluator, Match};
use crate::metrics::JoinStats;
use muse_core::event::Timestamp;
use muse_core::query::{NSeqContext, Query};
use muse_core::types::PrimSet;
use serde::{Deserialize, Serialize};

/// Static description of one input slot of a join: the predecessor
/// projection's primitive operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotSpec {
    /// The predecessor projection's primitives.
    pub prims: PrimSet,
    /// `true` if the slot carries only negated primitives (a negation guard
    /// stream rather than a positive input).
    pub negated: bool,
}

/// A join task deriving matches of one target projection from predecessor
/// match streams, with indexed, window-pruned probing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinTask {
    query: Query,
    target: PrimSet,
    /// Positive primitives of the target (events of emitted matches).
    positive: PrimSet,
    slots: Vec<SlotSpec>,
    /// Buffered matches per positive slot (parallel to `slots`; negated
    /// slots keep theirs inside `negations`).
    stores: Vec<MatchStore>,
    /// `NSEQ` contexts whose absence check happens at this join.
    negations: Vec<NegationCheck>,
    /// Largest timestamp seen on any input.
    max_time: Timestamp,
    /// Eviction slack: stores keep matches for `slack × window` (≥ 1.0;
    /// > 1 tolerates out-of-order arrival in the threaded executor).
    slack: f64,
    /// Minimum horizon progress between physical prefix drains.
    evict_stride: Timestamp,
    /// When set, candidate matches of negation-guarded contexts are held in
    /// `deferred` instead of being emitted from [`JoinTask::on_match`], and
    /// the final absence check runs in [`JoinTask::release_deferred`] once
    /// the caller knows every in-flight guard has arrived (the threaded
    /// executor's chunk-quiescence boundary). Joins without negations are
    /// unaffected.
    #[serde(default)]
    defer_negation: bool,
    /// Candidates awaiting their deferred absence check.
    #[serde(default)]
    deferred: Vec<Match>,
    /// Observability counters.
    stats: JoinStats,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NegationCheck {
    context: NSeqContext,
    evaluator: Evaluator,
    forbidden: MatchStore,
}

/// The checkpointable dynamic state of a [`JoinTask`]: per-slot match
/// buffers, per-negation evaluator/forbidden state, the local watermark,
/// deferred candidates, and the task's counters. Static structure (query,
/// slot specs, slack, stride, defer flag) is rebuilt from the deployment
/// plan on restore and validated structurally against this state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinState {
    /// Buffered matches per slot, parallel to the task's slot list
    /// (negated slots carry an empty store — their state lives in
    /// `negations`).
    pub stores: Vec<StoreState>,
    /// Per-negation `(sub-evaluator state, forbidden store state)`.
    pub negations: Vec<(EvalState, StoreState)>,
    /// Largest timestamp seen on any input.
    pub max_time: Timestamp,
    /// Candidates awaiting their deferred absence check.
    pub deferred: Vec<Match>,
    /// Observability counters.
    pub stats: JoinStats,
}

/// A join candidate being assembled across slots, with its cached span.
struct Candidate {
    first: Timestamp,
    last: Timestamp,
    m: Match,
}

impl JoinTask {
    /// Creates a join for the projection of `query` with primitives
    /// `target`, fed by predecessors with the given primitive sets (the
    /// combination `β(target)` realized by the MuSE graph edges).
    pub fn new(query: &Query, target: PrimSet, predecessors: &[PrimSet]) -> Self {
        Self::with_slack(query, target, predecessors, 1.0)
    }

    /// Like [`JoinTask::new`] with an eviction slack factor for
    /// out-of-order tolerant execution.
    pub fn with_slack(
        query: &Query,
        target: PrimSet,
        predecessors: &[PrimSet],
        slack: f64,
    ) -> Self {
        assert!(slack >= 1.0);
        let negated_prims = query.negated_prims();
        let slots: Vec<SlotSpec> = predecessors
            .iter()
            .map(|&prims| SlotSpec {
                prims,
                negated: prims.is_subset(negated_prims),
            })
            .collect();
        let guard_prims = slots
            .iter()
            .filter(|s| s.negated)
            .fold(PrimSet::empty(), |acc, s| acc.union(s.prims));
        let negations = query
            .nseq_contexts()
            .iter()
            .filter(|ctx| {
                let full = ctx.first.union(ctx.negated).union(ctx.last);
                full.is_subset(target) && !ctx.negated.intersect(guard_prims).is_empty()
            })
            .map(|ctx| NegationCheck {
                context: *ctx,
                evaluator: Evaluator::with_positive(query, ctx.negated, ctx.negated),
                forbidden: MatchStore::new(),
            })
            .collect();
        let stores = vec![MatchStore::new(); slots.len()];
        Self {
            query: query.clone(),
            target,
            positive: target.difference(negated_prims),
            slots,
            stores,
            negations,
            max_time: 0,
            slack,
            evict_stride: default_stride(query.window()),
            defer_negation: false,
            deferred: Vec::new(),
            stats: JoinStats::default(),
        }
    }

    /// Sets the watermark stride: the horizon must advance at least this
    /// far before dead store prefixes are physically truncated. Larger
    /// strides amortize eviction further at the cost of memory; the emitted
    /// matches are unaffected.
    pub fn with_evict_stride(mut self, stride: Timestamp) -> Self {
        self.evict_stride = stride.max(1);
        self
    }

    /// The target projection's primitives.
    pub fn target(&self) -> PrimSet {
        self.target
    }

    /// Whether any `NSEQ` absence check runs at this join.
    pub fn has_negations(&self) -> bool {
        !self.negations.is_empty()
    }

    /// Enables (or disables) deferred negation: candidate matches of
    /// negation-guarded contexts are buffered instead of emitted, and the
    /// absence check runs when [`JoinTask::release_deferred`] is called.
    ///
    /// Needed by executors with real network latency, where a forbidden
    /// guard event can physically arrive *after* the positive candidate it
    /// must suppress; deferring the check to a quiescence boundary restores
    /// the arrive-before-candidate property the zero-latency simulator gets
    /// from causal delivery order. No-op for joins without negations.
    pub fn set_defer_negation(&mut self, on: bool) {
        self.defer_negation = on;
    }

    /// Runs the absence check over the deferred candidates and returns the
    /// survivors, in deferral order. Counts them as emitted.
    ///
    /// The caller must guarantee that every guard event that could fall
    /// strictly inside a deferred candidate's context interval has been fed
    /// to this join (chunk quiescence in the threaded executor: any such
    /// guard is older than the candidate's newest event and therefore
    /// belongs to an already-drained chunk).
    pub fn release_deferred(&mut self) -> Vec<Match> {
        if self.deferred.is_empty() {
            return Vec::new();
        }
        let pending = std::mem::take(&mut self.deferred);
        let released: Vec<Match> = pending
            .into_iter()
            .filter(|m| self.passes_negation(m))
            .collect();
        self.stats.emitted += released.len() as u64;
        released
    }

    /// Candidates currently awaiting their deferred absence check.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// The input slots.
    pub fn slots(&self) -> &[SlotSpec] {
        &self.slots
    }

    /// Total live (non-evicted) matches across positive stores.
    pub fn buffered(&self) -> usize {
        self.stores.iter().map(MatchStore::len).sum()
    }

    /// Total physically buffered matches, including dead entries awaiting
    /// the next stride drain.
    pub fn physical_buffered(&self) -> usize {
        self.stores.iter().map(MatchStore::physical_len).sum()
    }

    /// Matches emitted so far.
    pub fn emitted(&self) -> u64 {
        self.stats.emitted
    }

    /// The newest event timestamp this task has seen across its inputs
    /// (its local watermark; 0 before the first input).
    pub fn last_seen(&self) -> Timestamp {
        self.max_time
    }

    /// The join's observability counters.
    pub fn stats(&self) -> &JoinStats {
        &self.stats
    }

    /// Feeds one match into a slot, returning the complete target matches
    /// it triggers.
    ///
    /// # Panics
    ///
    /// Panics if the slot index is out of range.
    pub fn on_match(&mut self, slot: usize, m: Match) -> Vec<Match> {
        self.stats.inputs += 1;
        self.max_time = self.max_time.max(m.last_time());
        if self.slots[slot].negated {
            // Negation guard: feed the forbidden-pattern evaluator of each
            // context this primitive belongs to.
            for (prim, event) in m.entries() {
                for neg in &mut self.negations {
                    if neg.context.negated.contains(*prim) {
                        for found in neg.evaluator.on_event(event) {
                            neg.forbidden.insert(found);
                        }
                    }
                }
            }
            self.evict();
            return Vec::new();
        }

        let window = self.query.window();
        let (m_first, m_last) = (m.first_time(), m.last_time());

        // Fast path for the common no-join case: the merge across slots is
        // a conjunction, so if any other positive slot has nothing
        // compatible buffered the trigger cannot complete — store the
        // partial without allocating the candidate scaffolding below.
        let doomed = self.slots.iter().enumerate().any(|(i, spec)| {
            i != slot
                && !spec.negated
                && self.stores[i]
                    .compatible(m_first, m_last, window)
                    .is_empty()
        });
        if doomed {
            self.stores[slot].insert(m);
            self.evict();
            self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered() as u64);
            return Vec::new();
        }

        // Visit the other positive slots smallest-compatible-slice-first:
        // a thin slot shrinks the candidate set before wide slots multiply
        // it (index as tiebreak keeps the order deterministic).
        let mut order: Vec<(usize, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|&(i, spec)| i != slot && !spec.negated)
            .map(|(i, _)| (self.stores[i].compatible(m_first, m_last, window).len(), i))
            .collect();
        order.sort_unstable();

        let mut acc = vec![Candidate {
            first: m_first,
            last: m_last,
            m: m.clone(),
        }];
        for (_, i) in order {
            let slot_prims = self.slots[i].prims;
            let mut next = Vec::new();
            for cand in &acc {
                let shared = cand.m.prims().intersect(slot_prims);
                let slice = self.stores[i].compatible(cand.first, cand.last, window);
                self.stats.probes += slice.len() as u64;
                for stored in slice {
                    let first = cand.first.min(stored.first);
                    let last = cand.last.max(stored.last);
                    // Cheap guards before the allocating merge: combined
                    // span within the window, shared primitives agree.
                    if last - first > window || !cand.m.agrees_on(&stored.m, shared) {
                        self.stats.guard_rejects += 1;
                        continue;
                    }
                    self.stats.merge_attempts += 1;
                    if let Some(merged) = cand.m.merge(&stored.m) {
                        if is_valid_match(&merged, &self.query) {
                            self.stats.merge_successes += 1;
                            next.push(Candidate {
                                first,
                                last,
                                m: merged,
                            });
                        }
                    }
                }
            }
            acc = next;
            if acc.is_empty() {
                break;
            }
        }
        let mut emitted: Vec<Match> = acc
            .into_iter()
            .map(|c| c.m)
            .filter(|c| c.prims() == self.positive)
            .filter(|c| is_valid_match(c, &self.query))
            .filter(|c| self.passes_negation(c))
            .collect();
        // Deduplicate (overlapping slots can assemble the same final match
        // along different merge orders within one trigger).
        emitted.sort_by_key(Match::fingerprint);
        emitted.dedup_by(|a, b| a.fingerprint() == b.fingerprint());

        self.stores[slot].insert(m);
        if self.defer_negation && !self.negations.is_empty() {
            // Hold candidates for the quiescence-time absence check; the
            // filter above already removed everything rejectable by the
            // guards seen so far (the guard set only grows until release).
            self.deferred.append(&mut emitted);
        } else {
            self.stats.emitted += emitted.len() as u64;
        }
        self.evict();
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered() as u64);
        emitted
    }

    fn passes_negation(&self, m: &Match) -> bool {
        self.negations.iter().all(|n| {
            n.forbidden
                .live()
                .iter()
                .all(|f| !nseq_violated(m, &f.m, n.context.first, n.context.last, &self.query))
        })
    }

    /// Captures the join's dynamic state for a checkpoint.
    pub fn save_state(&self) -> JoinState {
        JoinState {
            stores: self.stores.iter().map(MatchStore::save_state).collect(),
            negations: self
                .negations
                .iter()
                .map(|n| (n.evaluator.save_state(), n.forbidden.save_state()))
                .collect(),
            max_time: self.max_time,
            deferred: self.deferred.clone(),
            stats: self.stats,
        }
    }

    /// Grafts a saved dynamic state onto this (freshly rebuilt) join
    /// task. Fails when the state's slot or negation structure does not
    /// match the task's — the symptom of restoring against a different
    /// plan than the one that produced the snapshot.
    pub fn restore_state(&mut self, state: JoinState) -> Result<(), &'static str> {
        if state.stores.len() != self.stores.len() {
            return Err("join slot count differs from snapshot");
        }
        if state.negations.len() != self.negations.len() {
            return Err("join negation count differs from snapshot");
        }
        self.stores = state
            .stores
            .into_iter()
            .map(MatchStore::restore_state)
            .collect();
        for (neg, (eval, forbidden)) in self.negations.iter_mut().zip(state.negations) {
            neg.evaluator.restore_state(eval)?;
            neg.forbidden = MatchStore::restore_state(forbidden);
        }
        self.max_time = state.max_time;
        self.deferred = state.deferred;
        self.stats = state.stats;
        Ok(())
    }

    /// Advances the eviction watermark to `max_time − slack × window`.
    /// Matches below it become invisible immediately; the sorted prefix is
    /// physically truncated once the watermark has moved a whole stride.
    fn evict(&mut self) {
        let horizon = self
            .max_time
            .saturating_sub((self.query.window() as f64 * self.slack) as Timestamp);
        for store in &mut self.stores {
            self.stats.evicted += store.advance_horizon(horizon, self.evict_stride);
        }
        for neg in &mut self.negations {
            self.stats.evicted += neg.forbidden.advance_horizon(horizon, self.evict_stride);
        }
    }
}

/// Default watermark stride: a quarter window bounds dead entries to a
/// fraction of the live set while draining only a few times per window.
pub(crate) fn default_stride(window: Timestamp) -> Timestamp {
    (window / 4).max(1)
}

/// The straightforward join the indexed [`JoinTask`] replaces: unsorted
/// per-slot buffers, a full cross-product probe relying on
/// [`is_valid_match`] to reject incompatible pairs, and a `retain` scan of
/// every store on every arrival.
///
/// Kept as the reference implementation: the equivalence property suite
/// (`tests/join_equivalence.rs`) checks that [`JoinTask`] emits an
/// identical match stream, and the matcher benchmark measures the indexed
/// engine's speedup against it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveJoinTask {
    query: Query,
    target: PrimSet,
    positive: PrimSet,
    slots: Vec<SlotSpec>,
    stores: Vec<Vec<Match>>,
    negations: Vec<NaiveNegationCheck>,
    max_time: Timestamp,
    slack: f64,
    emitted: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NaiveNegationCheck {
    context: NSeqContext,
    evaluator: Evaluator,
    forbidden: Vec<Match>,
}

impl NaiveJoinTask {
    /// See [`JoinTask::new`].
    pub fn new(query: &Query, target: PrimSet, predecessors: &[PrimSet]) -> Self {
        Self::with_slack(query, target, predecessors, 1.0)
    }

    /// See [`JoinTask::with_slack`].
    pub fn with_slack(
        query: &Query,
        target: PrimSet,
        predecessors: &[PrimSet],
        slack: f64,
    ) -> Self {
        // Reuse the indexed constructor's slot/negation analysis.
        let task = JoinTask::with_slack(query, target, predecessors, slack);
        let stores = vec![Vec::new(); task.slots.len()];
        let negations = task
            .negations
            .iter()
            .map(|n| NaiveNegationCheck {
                context: n.context,
                evaluator: n.evaluator.clone(),
                forbidden: Vec::new(),
            })
            .collect();
        Self {
            query: task.query,
            target: task.target,
            positive: task.positive,
            slots: task.slots,
            stores,
            negations,
            max_time: 0,
            slack,
            emitted: 0,
        }
    }

    /// The input slots.
    pub fn slots(&self) -> &[SlotSpec] {
        &self.slots
    }

    /// Total buffered matches across positive stores.
    pub fn buffered(&self) -> usize {
        self.stores.iter().map(Vec::len).sum()
    }

    /// Matches emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// See [`JoinTask::on_match`].
    pub fn on_match(&mut self, slot: usize, m: Match) -> Vec<Match> {
        self.max_time = self.max_time.max(m.last_time());
        if self.slots[slot].negated {
            for (prim, event) in m.entries() {
                for neg in &mut self.negations {
                    if neg.context.negated.contains(*prim) {
                        let found = neg.evaluator.on_event(event);
                        neg.forbidden.extend(found);
                    }
                }
            }
            self.evict();
            return Vec::new();
        }

        // Join the new match against all other positive slots.
        let mut acc = vec![m.clone()];
        for (i, spec) in self.slots.iter().enumerate() {
            if i == slot || spec.negated {
                continue;
            }
            let mut next = Vec::new();
            for partial in &acc {
                for stored in &self.stores[i] {
                    if let Some(merged) = partial.merge(stored) {
                        if is_valid_match(&merged, &self.query) {
                            next.push(merged);
                        }
                    }
                }
            }
            acc = next;
            if acc.is_empty() {
                break;
            }
        }
        let mut emitted: Vec<Match> = acc
            .into_iter()
            .filter(|c| c.prims() == self.positive)
            .filter(|c| is_valid_match(c, &self.query))
            .filter(|c| self.passes_negation(c))
            .collect();
        emitted.sort_by_key(Match::fingerprint);
        emitted.dedup_by(|a, b| a.fingerprint() == b.fingerprint());

        self.stores[slot].push(m);
        self.emitted += emitted.len() as u64;
        self.evict();
        emitted
    }

    fn passes_negation(&self, m: &Match) -> bool {
        self.negations.iter().all(|n| {
            n.forbidden
                .iter()
                .all(|f| !nseq_violated(m, f, n.context.first, n.context.last, &self.query))
        })
    }

    /// Drops buffered matches outside the (slack-scaled) window.
    fn evict(&mut self) {
        let horizon = self
            .max_time
            .saturating_sub((self.query.window() as f64 * self.slack) as Timestamp);
        for store in &mut self.stores {
            store.retain(|m| m.first_time() >= horizon);
        }
        for neg in &mut self.negations {
            neg.forbidden.retain(|m| m.first_time() >= horizon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::event::Event;
    use muse_core::query::Pattern;
    use muse_core::types::{EventTypeId, NodeId, PrimId, QueryId};

    fn ev(seq: u64, ty: u16, time: Timestamp) -> Event {
        Event::new(seq, EventTypeId(ty), time, NodeId(0))
    }

    fn ps(prims: impl IntoIterator<Item = u8>) -> PrimSet {
        prims.into_iter().map(PrimId).collect()
    }

    /// SEQ(A, B, C), window 100.
    fn seq_abc() -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ]),
            vec![],
            100,
        )
        .unwrap()
    }

    #[test]
    fn joins_disjoint_predecessors() {
        // β(SEQ(A,B,C)) = {SEQ(A,B), C}.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        let ab = Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]);
        assert!(join.on_match(0, ab).is_empty());
        let c = Match::single(PrimId(2), ev(2, 2, 3));
        let out = join.on_match(1, c);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fingerprint(), vec![0, 1, 2]);
        assert_eq!(join.emitted(), 1);
    }

    #[test]
    fn join_respects_order() {
        // C arriving with a position before B must not match.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        let ab = Match::new(vec![(PrimId(0), ev(1, 0, 5)), (PrimId(1), ev(3, 1, 9))]);
        join.on_match(0, ab);
        let c_early = Match::single(PrimId(2), ev(2, 2, 7));
        assert!(join.on_match(1, c_early).is_empty());
    }

    #[test]
    fn join_out_of_order_arrival() {
        // The C match arrives first; the AB match triggers the emission.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        let c = Match::single(PrimId(2), ev(2, 2, 30));
        assert!(join.on_match(1, c).is_empty());
        let ab = Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]);
        let out = join.on_match(0, ab);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn overlapping_predecessors_must_agree() {
        // β = {SEQ(A,B), SEQ(B,C)}: shared primitive B must be the same
        // event (Example 8 of the paper).
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([1, 2])]);
        let ab = Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]);
        join.on_match(0, ab);
        // Agreeing BC (same B event): emits.
        let bc_agree = Match::new(vec![(PrimId(1), ev(1, 1, 2)), (PrimId(2), ev(2, 2, 3))]);
        assert_eq!(join.on_match(1, bc_agree).len(), 1);
        // Disagreeing BC (different B event): no emission.
        let bc_other = Match::new(vec![(PrimId(1), ev(5, 1, 2)), (PrimId(2), ev(6, 2, 3))]);
        assert!(join.on_match(1, bc_other).is_empty());
    }

    #[test]
    fn skip_till_any_match_multiplicity() {
        // Two AB matches and one C: two emissions.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]),
        );
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(3, 0, 3)), (PrimId(1), ev(4, 1, 4))]),
        );
        let out = join.on_match(1, Match::single(PrimId(2), ev(9, 2, 10)));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn window_eviction() {
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]);
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]),
        );
        // A C far in the future evicts the stale AB and matches nothing.
        let out = join.on_match(1, Match::single(PrimId(2), ev(2, 2, 500)));
        assert!(out.is_empty());
        assert_eq!(join.buffered(), 1); // only the C remains
    }

    #[test]
    fn watermark_eviction_is_logical_first() {
        // With a huge stride the dead AB stays physically buffered but is
        // invisible to probes and to `buffered()`.
        let q = seq_abc();
        let mut join =
            JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]).with_evict_stride(1_000_000);
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]),
        );
        assert!(join
            .on_match(1, Match::single(PrimId(2), ev(2, 2, 500)))
            .is_empty());
        assert_eq!(join.buffered(), 1);
        assert_eq!(join.physical_buffered(), 2);
        // An in-window AB joins with the live C; the dead AB stays dead.
        let out = join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(3, 0, 450)), (PrimId(1), ev(4, 1, 460))]),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fingerprint(), vec![3, 4, 2]);
    }

    #[test]
    fn stride_drain_truncates_prefix() {
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([2])]).with_evict_stride(50);
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]),
        );
        join.on_match(1, Match::single(PrimId(2), ev(2, 2, 500)));
        // Horizon jumped 0 → 400 ≥ stride: the dead AB is gone physically.
        assert_eq!(join.physical_buffered(), 1);
        assert!(join.stats().evicted >= 1);
    }

    #[test]
    fn stats_count_probes_and_guards() {
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([1, 2])]);
        let ab = Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]);
        join.on_match(0, ab);
        // Disagreeing BC: rejected by the shared-primitive guard, no merge.
        let bc_other = Match::new(vec![(PrimId(1), ev(5, 1, 2)), (PrimId(2), ev(6, 2, 3))]);
        join.on_match(1, bc_other);
        let s = *join.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.probes, 1);
        assert_eq!(s.guard_rejects, 1);
        assert_eq!(s.merge_attempts, 0);
        // Agreeing BC merges and emits.
        let bc_agree = Match::new(vec![(PrimId(1), ev(1, 1, 2)), (PrimId(2), ev(2, 2, 3))]);
        join.on_match(1, bc_agree);
        let s = *join.stats();
        assert_eq!(s.merge_attempts, 1);
        assert_eq!(s.merge_successes, 1);
        assert_eq!(s.emitted, 1);
        assert!(s.peak_buffered >= 2);
    }

    #[test]
    fn three_way_join() {
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0]), ps([1]), ps([2])]);
        join.on_match(0, Match::single(PrimId(0), ev(0, 0, 1)));
        join.on_match(1, Match::single(PrimId(1), ev(1, 1, 2)));
        let out = join.on_match(2, Match::single(PrimId(2), ev(2, 2, 3)));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn nseq_guard_slot_blocks_matches() {
        // NSEQ(A, B, C) with β = {SEQ(A, C) — via projection {0,2} — , B}.
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::leaf(EventTypeId(1)),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 2]), ps([1])]);
        assert!(join.slots()[1].negated);
        // Forbidden B at t=20 arrives before the positive part completes.
        join.on_match(1, Match::single(PrimId(1), ev(1, 1, 20)));
        // AC spanning the B: blocked.
        let ac_spanning = Match::new(vec![(PrimId(0), ev(0, 0, 10)), (PrimId(2), ev(2, 2, 30))]);
        assert!(join.on_match(0, ac_spanning).is_empty());
        // AC after the B: fine.
        let ac_after = Match::new(vec![(PrimId(0), ev(3, 0, 25)), (PrimId(2), ev(4, 2, 30))]);
        assert_eq!(join.on_match(0, ac_after).len(), 1);
    }

    #[test]
    fn nseq_composite_forbidden_pattern_assembled_from_primitives() {
        // NSEQ(A, SEQ(B, D), C): guards arrive as primitive B and D streams
        // and the join assembles the forbidden SEQ(B, D) itself.
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(EventTypeId(0)),
                Pattern::seq([Pattern::leaf(EventTypeId(1)), Pattern::leaf(EventTypeId(3))]),
                Pattern::leaf(EventTypeId(2)),
            ),
            vec![],
            100,
        )
        .unwrap();
        // Positive prims: A=0, C=3? Leaf order: A=0, B=1, D=2, C=3.
        let positive = ps([0, 3]);
        let mut join = JoinTask::new(&q, q.prims(), &[positive, ps([1]), ps([2])]);
        // B@20 then D@25: forbidden pattern completes inside (10, 30).
        join.on_match(1, Match::single(PrimId(1), ev(1, 1, 20)));
        join.on_match(2, Match::single(PrimId(2), ev(2, 3, 25)));
        let ac = Match::new(vec![(PrimId(0), ev(0, 0, 10)), (PrimId(3), ev(5, 2, 30))]);
        assert!(join.on_match(0, ac).is_empty());
        // Only D (no B): no forbidden match, positive emits.
        let mut join = JoinTask::new(&q, q.prims(), &[positive, ps([1]), ps([2])]);
        join.on_match(2, Match::single(PrimId(2), ev(2, 3, 25)));
        let ac = Match::new(vec![(PrimId(0), ev(0, 0, 10)), (PrimId(3), ev(5, 2, 30))]);
        assert_eq!(join.on_match(0, ac).len(), 1);
    }

    #[test]
    fn no_duplicate_emissions_with_overlap() {
        // β = {AB, BC} and also {AC}? Use {AB, BC, AC}: all three overlap;
        // the same final match must be emitted exactly once per trigger.
        let q = seq_abc();
        let mut join = JoinTask::new(&q, q.prims(), &[ps([0, 1]), ps([1, 2]), ps([0, 2])]);
        join.on_match(
            0,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(1), ev(1, 1, 2))]),
        );
        join.on_match(
            1,
            Match::new(vec![(PrimId(1), ev(1, 1, 2)), (PrimId(2), ev(2, 2, 3))]),
        );
        let out = join.on_match(
            2,
            Match::new(vec![(PrimId(0), ev(0, 0, 1)), (PrimId(2), ev(2, 2, 3))]),
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn naive_join_agrees_on_a_small_stream() {
        // The same out-of-order stream through both engines, emission for
        // emission (the property suite generalizes this to random streams).
        let q = seq_abc();
        let slots = [ps([0, 1]), ps([1, 2])];
        let mut indexed = JoinTask::with_slack(&q, q.prims(), &slots, 2.0);
        let mut naive = NaiveJoinTask::with_slack(&q, q.prims(), &slots, 2.0);
        let feed = [
            (
                0,
                Match::new(vec![(PrimId(0), ev(0, 0, 5)), (PrimId(1), ev(1, 1, 8))]),
            ),
            (
                1,
                Match::new(vec![(PrimId(1), ev(1, 1, 8)), (PrimId(2), ev(2, 2, 9))]),
            ),
            (
                1,
                Match::new(vec![(PrimId(1), ev(3, 1, 2)), (PrimId(2), ev(4, 2, 4))]),
            ),
            (
                0,
                Match::new(vec![(PrimId(0), ev(5, 0, 1)), (PrimId(1), ev(3, 1, 2))]),
            ),
            (
                1,
                Match::new(vec![(PrimId(1), ev(1, 1, 8)), (PrimId(2), ev(6, 2, 300))]),
            ),
            (
                0,
                Match::new(vec![(PrimId(0), ev(7, 0, 290)), (PrimId(1), ev(8, 1, 295))]),
            ),
        ];
        for (slot, m) in feed {
            let a: Vec<Vec<u64>> = indexed
                .on_match(slot, m.clone())
                .iter()
                .map(Match::fingerprint)
                .collect();
            let b: Vec<Vec<u64>> = naive
                .on_match(slot, m)
                .iter()
                .map(Match::fingerprint)
                .collect();
            assert_eq!(a, b);
            assert_eq!(indexed.buffered(), naive.buffered());
        }
        assert_eq!(indexed.emitted(), naive.emitted());
    }
}
