//! Checkpointing of executor state — the stand-in for Ambrosia's "virtual
//! resiliency" (§7.3 of the paper).
//!
//! The paper's case-study engine runs each node inside an Ambrosia
//! *immortal* that checkpoints the application state (input queues and
//! partial matches) and replays logged calls after a failure. Here the
//! equivalent durable state is a [`Snapshot`]: per-task join-engine state
//! (buffered partial matches, negation evaluators, watermarks, counters),
//! in-flight deliveries, the transmission-multiplexing sent-sets, metrics,
//! and collected sink matches. A snapshot taken mid-run and restored into
//! a fresh executor resumes to exactly the same results as an
//! uninterrupted run (verified by the executor and resilience tests).
//!
//! # One schema, both executors
//!
//! The same snapshot schema serves the simulator and the threaded
//! executor: the simulator checkpoints between injections
//! ([`crate::sim::SimExecutor`]), and the threaded executor checkpoints at
//! chunk-quiescence barriers and per-node during fault recovery
//! ([`crate::threaded::run_threaded`] with checkpointing or a fault plan
//! enabled). Because both executors produce and consume the same bytes, a
//! run can be snapshotted under one executor and resumed under the other
//! (the schema round-trip tests exercise both directions). Executor-
//! specific fields are simply empty on the other side: the simulator
//! never has event cursors or wall-clock latencies; a quiesced threaded
//! snapshot never has pending deliveries.
//!
//! # Format
//!
//! The body is encoded with the [`crate::codec`] wire format (not
//! `serde_json` — snapshots of large runs are dominated by buffered
//! matches, which the codec encodes at wire cost), wrapped in a versioned
//! envelope:
//!
//! ```text
//! magic "MUSE" (u32) · version (u16) · plan fingerprint (u64) · body
//! ```
//!
//! The plan fingerprint ([`crate::deploy::Deployment::fingerprint`])
//! guards restores: state grafted onto a different plan would silently
//! corrupt join buffers, so [`restore`] (and every other decode path)
//! fails with [`CheckpointError::PlanMismatch`] instead. Unknown versions
//! fail with [`CheckpointError::UnsupportedVersion`]; truncated or
//! malformed bytes with [`CheckpointError::Malformed`] — never a panic.
//!
//! The one sanctioned way *across* plans is [`map_snapshot`] /
//! [`restore_mapped`]: given a certified-safe `muse-verify`
//! [`MigrationPlan`], state is re-keyed task-by-task from the old
//! deployment onto the new one (live migration of a running network).

use crate::codec::{
    encode_match, try_decode_match, try_get_u16, try_get_u32, try_get_u64, try_get_u8,
};
use crate::deploy::{Deployment, TaskKind};
use crate::matcher::{EvalState, JoinState, Match, StoreState};
use crate::metrics::{JoinStats, Metrics, TransportStats};
use crate::sim::{SimConfig, SimExecutor};
use bytes::{BufMut, BytesMut};
use muse_telemetry::{HistSnapshot, LogHistogram};
use muse_verify::{CarryMode, MigrationPlan};

/// Leading magic of every snapshot ("MUSE" in ASCII).
pub const SNAPSHOT_MAGIC: u32 = 0x4d55_5345;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Errors raised by snapshot encode/decode/restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u16),
    /// The snapshot was produced under a different deployment plan.
    PlanMismatch {
        /// Fingerprint of the deployment being restored into.
        expected: u64,
        /// Fingerprint recorded in the snapshot header.
        found: u64,
        /// Where the snapshot's task structure first diverges from the
        /// target deployment (empty when the decode path could not tell).
        detail: String,
    },
    /// A cross-plan restore was attempted without a certified-safe
    /// [`muse_verify::MigrationPlan`]; the message summarizes why the
    /// verifier refused.
    MigrationRejected(String),
    /// The bytes are truncated or structurally invalid.
    Malformed,
    /// The snapshot's task structure does not fit the deployment (slot or
    /// negation counts differ despite an equal plan fingerprint — only
    /// possible with corrupted state).
    Shape(&'static str),
    /// The snapshot holds in-flight deliveries, which the restoring
    /// executor cannot represent (the threaded executor resumes only from
    /// quiescent snapshots).
    NotQuiescent,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "snapshot magic missing"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            CheckpointError::PlanMismatch {
                expected,
                found,
                detail,
            } => {
                write!(
                    f,
                    "snapshot was taken under a different plan \
                     (deployment {expected:#018x}, snapshot {found:#018x})"
                )?;
                if detail.is_empty() {
                    Ok(())
                } else {
                    write!(f, "; {detail}")
                }
            }
            CheckpointError::MigrationRejected(why) => {
                write!(f, "cross-plan restore refused: {why}")
            }
            CheckpointError::Malformed => write!(f, "snapshot bytes are malformed"),
            CheckpointError::Shape(what) => write!(f, "snapshot shape mismatch: {what}"),
            CheckpointError::NotQuiescent => {
                write!(
                    f,
                    "snapshot holds in-flight deliveries; executor needs quiescence"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One in-flight match delivery (the simulator's scheduled queue; always
/// empty in quiesced threaded-executor snapshots).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingDelivery {
    /// Virtual delivery time.
    pub time: u64,
    /// Sequence number of the triggering event.
    pub trigger: u64,
    /// Scheduling tiebreak (hop counter).
    pub sub: u64,
    /// Receiving task index.
    pub target: usize,
    /// Input slot at the receiver.
    pub slot: usize,
    /// The delivered match.
    pub m: Match,
}

/// A decoded executor snapshot — the unit of checkpointing, shared by the
/// simulator and the threaded executor.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Fingerprint of the producing deployment plan.
    pub plan: u64,
    /// Per-task dynamic join state, parallel to `Deployment::tasks`
    /// (`None` for stateless source tasks).
    pub tasks: Vec<Option<JoinState>>,
    /// In-flight deliveries (simulator only).
    pub pending: Vec<PendingDelivery>,
    /// The simulator's delivery tiebreak counter.
    pub next_sub: u64,
    /// Collected metrics (crash-recovery counters excluded by design:
    /// a crash must not roll back the record of its own recovery).
    pub metrics: Metrics,
    /// Sink matches per query (parallel to `Deployment::queries`).
    pub matches: Vec<Vec<Match>>,
    /// Wall-clock sink latencies (threaded executor only; the simulator
    /// carries its virtual-time latencies inside `metrics`).
    pub wall_latencies_ns: Vec<u64>,
    /// Transmission-multiplexing memory as `(stream sig, from node, to
    /// node, match hash)` — restoring it keeps replayed sends from
    /// double-counting network messages.
    pub sent: Vec<(u64, u16, u16, u64)>,
    /// Per-node next-event cursors into the node-local event partitions
    /// (threaded executor only; empty for the simulator).
    pub cursors: Vec<u64>,
}

impl Snapshot {
    /// An empty snapshot scaffold for a deployment (used by the threaded
    /// executor's per-node shard assembly).
    pub fn empty(deployment: &Deployment) -> Self {
        Self {
            plan: deployment.fingerprint(),
            tasks: vec![None; deployment.tasks.len()],
            pending: Vec::new(),
            next_sub: 0,
            metrics: Metrics::new(deployment.num_nodes),
            matches: vec![Vec::new(); deployment.queries.len()],
            wall_latencies_ns: Vec::new(),
            sent: Vec::new(),
            cursors: Vec::new(),
        }
    }

    /// Merges another snapshot shard into this one: task states and sent
    /// entries are unioned (shards own disjoint tasks/nodes), metrics
    /// merge, matches and latencies concatenate, cursors take the
    /// element-wise maximum.
    pub fn merge_shard(&mut self, other: Snapshot) {
        debug_assert_eq!(self.plan, other.plan);
        for (slot, state) in self.tasks.iter_mut().zip(other.tasks) {
            if state.is_some() {
                *slot = state;
            }
        }
        self.pending.extend(other.pending);
        self.next_sub = self.next_sub.max(other.next_sub);
        self.metrics.merge(&other.metrics);
        for (into, from) in self.matches.iter_mut().zip(other.matches) {
            into.extend(from);
        }
        self.wall_latencies_ns.extend(other.wall_latencies_ns);
        self.sent.extend(other.sent);
        if self.cursors.len() < other.cursors.len() {
            self.cursors.resize(other.cursors.len(), 0);
        }
        for (i, c) in other.cursors.into_iter().enumerate() {
            self.cursors[i] = self.cursors[i].max(c);
        }
    }
}

/// Serializes a simulator's state into a durable snapshot.
pub fn snapshot(executor: &SimExecutor<'_>) -> Result<Vec<u8>, CheckpointError> {
    Ok(encode(&executor.to_snapshot()))
}

/// Restores a simulator from a snapshot against the same deployment.
///
/// The snapshot may come from either executor: a quiesced threaded-
/// executor snapshot restores into the simulator directly (its pending
/// queue is empty by construction).
pub fn restore<'a>(
    deployment: &'a Deployment,
    config: SimConfig,
    bytes: &[u8],
) -> Result<SimExecutor<'a>, CheckpointError> {
    let snap = decode_for(deployment, bytes)?;
    SimExecutor::from_snapshot(deployment, config, snap)
}

/// Decodes a snapshot and verifies it against a deployment's plan
/// fingerprint.
pub fn decode_for(deployment: &Deployment, bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
    let snap = decode(bytes)?;
    let expected = deployment.fingerprint();
    if snap.plan != expected {
        return Err(CheckpointError::PlanMismatch {
            expected,
            found: snap.plan,
            detail: shape_divergence(deployment, &snap),
        });
    }
    if snap.tasks.len() != deployment.tasks.len() {
        return Err(CheckpointError::Shape("task count differs from deployment"));
    }
    if snap.matches.len() != deployment.queries.len() {
        return Err(CheckpointError::Shape(
            "query count differs from deployment",
        ));
    }
    Ok(snap)
}

/// Describes where a snapshot's task structure first diverges from a
/// deployment — the part of a [`CheckpointError::PlanMismatch`] an operator
/// can act on. When every task state fits (the fingerprints differ only in
/// windows, routes, rates, or attribution, which leave the state vector's
/// shape unchanged), says so instead of naming a task.
fn shape_divergence(deployment: &Deployment, snap: &Snapshot) -> String {
    if snap.tasks.len() != deployment.tasks.len() {
        return format!(
            "snapshot carries {} task states, the deployment has {} tasks",
            snap.tasks.len(),
            deployment.tasks.len()
        );
    }
    if snap.matches.len() != deployment.queries.len() {
        return format!(
            "snapshot carries {} per-query match streams, the deployment has {} queries",
            snap.matches.len(),
            deployment.queries.len()
        );
    }
    for (i, saved) in snap.tasks.iter().enumerate() {
        let label = deployment.task_label(i);
        match (&deployment.tasks[i].kind, saved) {
            (TaskKind::Source { .. }, Some(_)) => {
                return format!(
                    "first diverging task {label}: snapshot holds join state \
                     where the deployment places a source"
                );
            }
            (TaskKind::Join { .. }, None) => {
                return format!(
                    "first diverging task {label}: snapshot holds no join state \
                     where the deployment places a join"
                );
            }
            (TaskKind::Join { slots }, Some(state)) if state.stores.len() != slots.len() => {
                return format!(
                    "first diverging task {label}: snapshot join state has {} input \
                     stores, the deployment expects {}",
                    state.stores.len(),
                    slots.len()
                );
            }
            _ => {}
        }
    }
    "every task state fits the target's shape; the plans differ in \
     placement, windows, routes, or attribution"
        .to_string()
}

/// Maps a snapshot taken under `old` into a snapshot restorable under
/// `new`, following a certified [`MigrationPlan`] from
/// `muse-verify`'s plan-diff pass — the runtime half of live migration.
///
/// Physical tasks are paired by [`Deployment::task_key`] (the same
/// shared-collapse key the verifier profiles), duplicates in declaration
/// order. Tasks the plan marks [`CarryMode::Carry`]/[`CarryMode::Replay`]
/// take the old task's join state verbatim; everything else starts from a
/// freshly instantiated state (`slack` must match the restoring executor's
/// eviction slack so fresh and grafted states share a shape). Sink matches
/// follow their [`QueryId`](muse_core::types::QueryId); dropped queries'
/// matches are discarded. Transmission-multiplexing memory is filtered to
/// stream signatures the new plan still emits. The result claims `new`'s
/// fingerprint and restores through the ordinary
/// [`SimExecutor::from_snapshot`] / threaded resume paths.
///
/// # Errors
///
/// [`CheckpointError::MigrationRejected`] when `plan.safe` is `false` —
/// an uncertified mapping would silently corrupt join buffers, which is
/// exactly what the verifier exists to rule out. Otherwise the usual
/// decode errors, [`CheckpointError::PlanMismatch`] when the snapshot was
/// not taken under `old`, and [`CheckpointError::NotQuiescent`] when
/// in-flight deliveries exist (quiesce before migrating).
pub fn map_snapshot(
    old: &Deployment,
    new: &Deployment,
    plan: &MigrationPlan,
    slack: f64,
    bytes: &[u8],
) -> Result<Snapshot, CheckpointError> {
    use std::collections::{HashMap, HashSet, VecDeque};
    if !plan.safe {
        let why = plan
            .actions
            .iter()
            .find(|a| a.mode == CarryMode::Fresh && a.from.is_some() && a.to.is_some())
            .map(|a| format!(" (first unsafe task: {})", a.detail))
            .unwrap_or_default();
        return Err(CheckpointError::MigrationRejected(format!(
            "the migration plan is not certified safe{why}; \
             run `muse-verify migrate` for the full diagnostic report"
        )));
    }
    let snap = decode_for(old, bytes)?;
    if !snap.pending.is_empty() {
        return Err(CheckpointError::NotQuiescent);
    }

    // Old tasks by migration key, duplicates queued in declaration order —
    // the same order the verifier's profile pass saw them.
    let mut old_by_key: HashMap<muse_verify::TaskKey, VecDeque<usize>> = HashMap::new();
    for i in 0..old.tasks.len() {
        old_by_key.entry(old.task_key(i)).or_default().push_back(i);
    }
    // Certified carries by destination key.
    let mut carry_by_to: HashMap<muse_verify::TaskKey, VecDeque<muse_verify::TaskKey>> =
        HashMap::new();
    for a in &plan.actions {
        if let (Some(from), Some(to)) = (a.from, a.to) {
            if matches!(a.mode, CarryMode::Carry | CarryMode::Replay) {
                carry_by_to.entry(to).or_default().push_back(from);
            }
        }
    }

    let mut tasks = Vec::with_capacity(new.tasks.len());
    for i in 0..new.tasks.len() {
        let carried = carry_by_to
            .get_mut(&new.task_key(i))
            .and_then(VecDeque::pop_front)
            .and_then(|from| old_by_key.get_mut(&from).and_then(VecDeque::pop_front))
            .and_then(|old_idx| snap.tasks[old_idx].clone());
        tasks.push(match carried {
            Some(state) => Some(state),
            None => new.make_join(i, slack).map(|j| j.save_state()),
        });
    }

    let old_query_idx: HashMap<_, _> = old
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| (q.id(), i))
        .collect();
    let matches = new
        .queries
        .iter()
        .map(|q| {
            old_query_idx
                .get(&q.id())
                .map(|&i| snap.matches[i].clone())
                .unwrap_or_default()
        })
        .collect();

    let live_sigs: HashSet<u64> = new.tasks.iter().map(|t| t.stream_sig).collect();
    let sent = snap
        .sent
        .iter()
        .filter(|&&(sig, from, to, _)| {
            live_sigs.contains(&sig)
                && (from as usize) < new.num_nodes
                && (to as usize) < new.num_nodes
        })
        .copied()
        .collect();

    let mut metrics = snap.metrics.clone();
    metrics.per_node_processed.resize(new.num_nodes, 0);
    let mut cursors = snap.cursors.clone();
    if !cursors.is_empty() {
        cursors.resize(new.num_nodes, 0);
    }

    Ok(Snapshot {
        plan: new.fingerprint(),
        tasks,
        pending: Vec::new(),
        next_sub: snap.next_sub,
        metrics,
        matches,
        wall_latencies_ns: snap.wall_latencies_ns.clone(),
        sent,
        cursors,
    })
}

/// Restores a simulator under `new` from a snapshot taken under `old`,
/// through a certified [`MigrationPlan`] — [`map_snapshot`] followed by the
/// ordinary snapshot-restore path (which re-validates every grafted state's
/// shape). The fresh states use `config.slack`, keeping them identical to
/// what the executor would build itself.
pub fn restore_mapped<'a>(
    old: &Deployment,
    new: &'a Deployment,
    plan: &MigrationPlan,
    config: SimConfig,
    bytes: &[u8],
) -> Result<SimExecutor<'a>, CheckpointError> {
    let slack = config.slack;
    let snap = map_snapshot(old, new, plan, slack, bytes)?;
    SimExecutor::from_snapshot(new, config, snap)
}

/// Encodes a snapshot into its versioned byte form.
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u32(SNAPSHOT_MAGIC);
    buf.put_u16(SNAPSHOT_VERSION);
    buf.put_u64(snap.plan);
    buf.put_u32(snap.tasks.len() as u32);
    for task in &snap.tasks {
        match task {
            None => buf.put_u8(0),
            Some(state) => {
                buf.put_u8(1);
                put_join(&mut buf, state);
            }
        }
    }
    buf.put_u32(snap.pending.len() as u32);
    for p in &snap.pending {
        buf.put_u64(p.time);
        buf.put_u64(p.trigger);
        buf.put_u64(p.sub);
        buf.put_u32(p.target as u32);
        buf.put_u32(p.slot as u32);
        put_match(&mut buf, &p.m);
    }
    buf.put_u64(snap.next_sub);
    put_metrics(&mut buf, &snap.metrics);
    buf.put_u32(snap.matches.len() as u32);
    for per_query in &snap.matches {
        buf.put_u32(per_query.len() as u32);
        for m in per_query {
            put_match(&mut buf, m);
        }
    }
    buf.put_u32(snap.wall_latencies_ns.len() as u32);
    for &l in &snap.wall_latencies_ns {
        buf.put_u64(l);
    }
    buf.put_u32(snap.sent.len() as u32);
    for &(sig, from, to, mhash) in &snap.sent {
        buf.put_u64(sig);
        buf.put_u16(from);
        buf.put_u16(to);
        buf.put_u64(mhash);
    }
    buf.put_u32(snap.cursors.len() as u32);
    for &c in &snap.cursors {
        buf.put_u64(c);
    }
    buf.into_vec()
}

/// Decodes a snapshot from bytes (no plan check — see [`decode_for`]).
pub fn decode(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
    let buf = &mut &bytes[..];
    let magic = try_get_u32(buf).ok_or(CheckpointError::Malformed)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = try_get_u16(buf).ok_or(CheckpointError::Malformed)?;
    if version != SNAPSHOT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let plan = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let num_tasks = get_len(buf)?;
    let mut tasks = Vec::with_capacity(num_tasks);
    for _ in 0..num_tasks {
        match try_get_u8(buf).ok_or(CheckpointError::Malformed)? {
            0 => tasks.push(None),
            1 => tasks.push(Some(get_join(buf)?)),
            _ => return Err(CheckpointError::Malformed),
        }
    }
    let num_pending = get_len(buf)?;
    let mut pending = Vec::with_capacity(num_pending);
    for _ in 0..num_pending {
        let time = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
        let trigger = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
        let sub = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
        let target = try_get_u32(buf).ok_or(CheckpointError::Malformed)? as usize;
        let slot = try_get_u32(buf).ok_or(CheckpointError::Malformed)? as usize;
        let m = get_match(buf)?;
        pending.push(PendingDelivery {
            time,
            trigger,
            sub,
            target,
            slot,
            m,
        });
    }
    let next_sub = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let metrics = get_metrics(buf)?;
    let num_queries = get_len(buf)?;
    let mut matches = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        let n = get_len(buf)?;
        let mut per_query = Vec::with_capacity(n);
        for _ in 0..n {
            per_query.push(get_match(buf)?);
        }
        matches.push(per_query);
    }
    let n = get_len(buf)?;
    let mut wall_latencies_ns = Vec::with_capacity(n);
    for _ in 0..n {
        wall_latencies_ns.push(try_get_u64(buf).ok_or(CheckpointError::Malformed)?);
    }
    let n = get_len(buf)?;
    let mut sent = Vec::with_capacity(n);
    for _ in 0..n {
        let sig = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
        let from = try_get_u16(buf).ok_or(CheckpointError::Malformed)?;
        let to = try_get_u16(buf).ok_or(CheckpointError::Malformed)?;
        let mhash = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
        sent.push((sig, from, to, mhash));
    }
    let n = get_len(buf)?;
    let mut cursors = Vec::with_capacity(n);
    for _ in 0..n {
        cursors.push(try_get_u64(buf).ok_or(CheckpointError::Malformed)?);
    }
    if !buf.is_empty() {
        return Err(CheckpointError::Malformed);
    }
    Ok(Snapshot {
        plan,
        tasks,
        pending,
        next_sub,
        metrics,
        matches,
        wall_latencies_ns,
        sent,
        cursors,
    })
}

/// Grafts snapshot task states onto freshly built per-task join state.
/// `make` instantiates the join for a task index (`None` for sources);
/// used by both executors so the structural validation lives in one
/// place.
pub(crate) fn restore_task<J>(
    deployment: &Deployment,
    task: usize,
    saved: Option<JoinState>,
    join: &mut Option<J>,
    restore: impl FnOnce(&mut J, JoinState) -> Result<(), &'static str>,
) -> Result<(), CheckpointError> {
    match (&deployment.tasks[task].kind, saved, join) {
        (TaskKind::Source { .. }, None, _) => Ok(()),
        (TaskKind::Join { .. }, Some(state), Some(j)) => {
            restore(j, state).map_err(CheckpointError::Shape)
        }
        (TaskKind::Source { .. }, Some(_), _) => {
            Err(CheckpointError::Shape("join state for a source task"))
        }
        (TaskKind::Join { .. }, None, _) => {
            Err(CheckpointError::Shape("missing join state for a join task"))
        }
        (TaskKind::Join { .. }, Some(_), None) => {
            Err(CheckpointError::Shape("join task failed to instantiate"))
        }
    }
}

// ---------------------------------------------------------------------
// Body field codecs.

fn get_len(buf: &mut &[u8]) -> Result<usize, CheckpointError> {
    let n = try_get_u32(buf).ok_or(CheckpointError::Malformed)? as usize;
    // A length prefix can never exceed the remaining bytes (every element
    // is at least one byte) — reject early so a corrupt length cannot
    // trigger a huge pre-allocation.
    if n > buf.len() {
        return Err(CheckpointError::Malformed);
    }
    Ok(n)
}

fn put_match(buf: &mut BytesMut, m: &Match) {
    use bytes::Buf;
    buf.put_slice(encode_match(m).chunk());
}

fn get_match(buf: &mut &[u8]) -> Result<Match, CheckpointError> {
    try_decode_match(buf).ok_or(CheckpointError::Malformed)
}

fn put_store(buf: &mut BytesMut, s: &StoreState) {
    buf.put_u32(s.matches.len() as u32);
    for m in &s.matches {
        put_match(buf, m);
    }
    buf.put_u64(s.horizon);
    buf.put_u64(s.drained_at);
    buf.put_u64(s.evicted);
}

fn get_store(buf: &mut &[u8]) -> Result<StoreState, CheckpointError> {
    let n = get_len(buf)?;
    let mut matches = Vec::with_capacity(n);
    for _ in 0..n {
        matches.push(get_match(buf)?);
    }
    let horizon = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let drained_at = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let evicted = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    Ok(StoreState {
        matches,
        horizon,
        drained_at,
        evicted,
    })
}

fn put_eval(buf: &mut BytesMut, e: &EvalState) {
    put_store(buf, &e.partials);
    buf.put_u64(e.partials_created);
    buf.put_u64(e.peak_partials);
    buf.put_u32(e.negations.len() as u32);
    for (sub, forbidden) in &e.negations {
        put_eval(buf, sub);
        put_store(buf, forbidden);
    }
}

fn get_eval(buf: &mut &[u8]) -> Result<EvalState, CheckpointError> {
    let partials = get_store(buf)?;
    let partials_created = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let peak_partials = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let n = get_len(buf)?;
    let mut negations = Vec::with_capacity(n);
    for _ in 0..n {
        let sub = get_eval(buf)?;
        let forbidden = get_store(buf)?;
        negations.push((sub, forbidden));
    }
    Ok(EvalState {
        partials,
        partials_created,
        peak_partials,
        negations,
    })
}

fn put_join(buf: &mut BytesMut, j: &JoinState) {
    buf.put_u32(j.stores.len() as u32);
    for s in &j.stores {
        put_store(buf, s);
    }
    buf.put_u32(j.negations.len() as u32);
    for (eval, forbidden) in &j.negations {
        put_eval(buf, eval);
        put_store(buf, forbidden);
    }
    buf.put_u64(j.max_time);
    buf.put_u32(j.deferred.len() as u32);
    for m in &j.deferred {
        put_match(buf, m);
    }
    put_join_stats(buf, &j.stats);
}

fn get_join(buf: &mut &[u8]) -> Result<JoinState, CheckpointError> {
    let n = get_len(buf)?;
    let mut stores = Vec::with_capacity(n);
    for _ in 0..n {
        stores.push(get_store(buf)?);
    }
    let n = get_len(buf)?;
    let mut negations = Vec::with_capacity(n);
    for _ in 0..n {
        let eval = get_eval(buf)?;
        let forbidden = get_store(buf)?;
        negations.push((eval, forbidden));
    }
    let max_time = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let n = get_len(buf)?;
    let mut deferred = Vec::with_capacity(n);
    for _ in 0..n {
        deferred.push(get_match(buf)?);
    }
    let stats = get_join_stats(buf)?;
    Ok(JoinState {
        stores,
        negations,
        max_time,
        deferred,
        stats,
    })
}

fn put_join_stats(buf: &mut BytesMut, s: &JoinStats) {
    for v in [
        s.inputs,
        s.probes,
        s.guard_rejects,
        s.merge_attempts,
        s.merge_successes,
        s.emitted,
        s.evicted,
        s.peak_buffered,
    ] {
        buf.put_u64(v);
    }
}

fn get_join_stats(buf: &mut &[u8]) -> Result<JoinStats, CheckpointError> {
    let mut vals = [0u64; 8];
    for v in &mut vals {
        *v = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    }
    Ok(JoinStats {
        inputs: vals[0],
        probes: vals[1],
        guard_rejects: vals[2],
        merge_attempts: vals[3],
        merge_successes: vals[4],
        emitted: vals[5],
        evicted: vals[6],
        peak_buffered: vals[7],
    })
}

fn put_hist(buf: &mut BytesMut, h: &LogHistogram) {
    let snap = HistSnapshot::from(h.clone());
    buf.put_u64(snap.count);
    buf.put_u64(snap.sum);
    buf.put_u64(snap.min);
    buf.put_u64(snap.max);
    buf.put_u32(snap.buckets.len() as u32);
    for &(i, c) in &snap.buckets {
        buf.put_u32(i);
        buf.put_u64(c);
    }
}

fn get_hist(buf: &mut &[u8]) -> Result<LogHistogram, CheckpointError> {
    let count = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let sum = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let min = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let max = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    let n = get_len(buf)?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        let i = try_get_u32(buf).ok_or(CheckpointError::Malformed)?;
        let c = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
        buckets.push((i, c));
    }
    Ok(LogHistogram::from(HistSnapshot {
        count,
        sum,
        min,
        max,
        buckets,
    }))
}

fn put_metrics(buf: &mut BytesMut, m: &Metrics) {
    for v in [
        m.events_injected,
        m.messages_sent,
        m.bytes_sent,
        m.local_deliveries,
        m.sink_matches,
        m.latency_samples_dropped,
    ] {
        buf.put_u64(v);
    }
    buf.put_u32(m.per_node_processed.len() as u32);
    for &v in &m.per_node_processed {
        buf.put_u64(v);
    }
    buf.put_u32(m.latencies.len() as u32);
    for &v in &m.latencies {
        buf.put_u64(v);
    }
    put_hist(buf, &m.latency_hist);
    put_join_stats(buf, &m.join);
    let t = &m.transport;
    for v in [
        t.frames_sent,
        t.messages_framed,
        t.blocked_sends,
        t.pool_allocs,
        t.pool_reuses,
        t.peak_queue_depth,
    ] {
        buf.put_u64(v);
    }
    put_hist(buf, &t.batch_hist);
    let d = &m.discrimination;
    for v in [d.events, d.candidates_considered, d.candidates_admitted] {
        buf.put_u64(v);
    }
    put_hist(buf, &d.candidate_hist);
    // `m.recovery` is intentionally not encoded: recovery counters live
    // outside the rolled-back state (see `RecoveryStats`).
}

fn get_metrics(buf: &mut &[u8]) -> Result<Metrics, CheckpointError> {
    let mut head = [0u64; 6];
    for v in &mut head {
        *v = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    }
    let n = get_len(buf)?;
    let mut per_node_processed = Vec::with_capacity(n);
    for _ in 0..n {
        per_node_processed.push(try_get_u64(buf).ok_or(CheckpointError::Malformed)?);
    }
    let n = get_len(buf)?;
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        latencies.push(try_get_u64(buf).ok_or(CheckpointError::Malformed)?);
    }
    let latency_hist = get_hist(buf)?;
    let join = get_join_stats(buf)?;
    let mut tvals = [0u64; 6];
    for v in &mut tvals {
        *v = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    }
    let batch_hist = get_hist(buf)?;
    let mut dvals = [0u64; 3];
    for v in &mut dvals {
        *v = try_get_u64(buf).ok_or(CheckpointError::Malformed)?;
    }
    let candidate_hist = get_hist(buf)?;
    Ok(Metrics {
        events_injected: head[0],
        messages_sent: head[1],
        bytes_sent: head[2],
        local_deliveries: head[3],
        sink_matches: head[4],
        latency_samples_dropped: head[5],
        per_node_processed,
        latencies,
        latency_hist,
        join,
        transport: TransportStats {
            frames_sent: tvals[0],
            messages_framed: tvals[1],
            blocked_sends: tvals[2],
            pool_allocs: tvals[3],
            pool_reuses: tvals[4],
            peak_queue_depth: tvals[5],
            batch_hist,
        },
        recovery: Default::default(),
        discrimination: crate::metrics::DiscriminationStats {
            events: dvals[0],
            candidates_considered: dvals[1],
            candidates_admitted: dvals[2],
            candidate_hist,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::algorithms::amuse::{amuse, AMuseConfig};
    use muse_core::graph::PlanContext;
    use muse_core::network::NetworkBuilder;
    use muse_core::query::{Pattern, Query};
    use muse_core::types::{EventTypeId, NodeId, QueryId};

    fn two_node_deployment(window: u64) -> Deployment {
        let t0 = EventTypeId(0);
        let t1 = EventTypeId(1);
        let net = NetworkBuilder::new(2, 2)
            .node(NodeId(0), [t0])
            .node(NodeId(1), [t1])
            .rate(t0, 1.0)
            .rate(t1, 1.0)
            .build();
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(t0), Pattern::leaf(t1)]),
            vec![],
            window,
        )
        .unwrap();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        Deployment::new(&plan.graph, &ctx)
    }

    #[test]
    fn snapshot_roundtrip_empty_executor() {
        let deployment = two_node_deployment(100);
        let executor = SimExecutor::new(&deployment, SimConfig::default());
        let bytes = snapshot(&executor).unwrap();
        let restored = restore(&deployment, SimConfig::default(), &bytes).unwrap();
        assert_eq!(restored.metrics().events_injected, 0);
        assert!(restored.matches().iter().all(Vec::is_empty));
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let deployment = two_node_deployment(100);
        // Garbage, empty, and every truncation of a valid snapshot must be
        // rejected with an error, never a panic.
        assert!(restore(&deployment, SimConfig::default(), b"not a snapshot").is_err());
        assert!(restore(&deployment, SimConfig::default(), b"").is_err());
        let executor = SimExecutor::new(&deployment, SimConfig::default());
        let bytes = snapshot(&executor).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                restore(&deployment, SimConfig::default(), &bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Trailing garbage is also rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(restore(&deployment, SimConfig::default(), &padded).is_err());
    }

    #[test]
    fn plan_mismatch_rejected() {
        let d1 = two_node_deployment(100);
        let d2 = two_node_deployment(200); // different window ⇒ different plan
        let executor = SimExecutor::new(&d1, SimConfig::default());
        let bytes = snapshot(&executor).unwrap();
        let err = match restore(&d2, SimConfig::default(), &bytes) {
            Err(e) => e,
            Ok(_) => panic!("expected PlanMismatch, got a restored executor"),
        };
        match &err {
            CheckpointError::PlanMismatch {
                expected,
                found,
                detail,
            } => {
                assert_eq!(*expected, d2.fingerprint());
                assert_eq!(*found, d1.fingerprint());
                // Only the window differs, so every task shape still fits —
                // the detail must say so rather than blame a task.
                assert!(detail.contains("fits the target's shape"), "{detail}");
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        let text = err.to_string();
        assert!(
            text.contains(&format!("{:#018x}", d2.fingerprint())),
            "{text}"
        );
        assert!(
            text.contains(&format!("{:#018x}", d1.fingerprint())),
            "{text}"
        );
        assert!(text.contains("fits the target's shape"), "{text}");
    }

    #[test]
    fn plan_mismatch_names_first_diverging_task() {
        // Structurally different plans: the snapshot's task vector cannot
        // line up, and the error names where it first diverges.
        let d1 = two_node_deployment(100);
        let t0 = EventTypeId(0);
        let t1 = EventTypeId(1);
        let t2 = EventTypeId(2);
        let net = NetworkBuilder::new(2, 3)
            .node(NodeId(0), [t0, t2])
            .node(NodeId(1), [t1])
            .rate(t0, 1.0)
            .rate(t1, 1.0)
            .rate(t2, 1.0)
            .build();
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(t0), Pattern::leaf(t1), Pattern::leaf(t2)]),
            vec![],
            100,
        )
        .unwrap();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let d2 = Deployment::new(&plan.graph, &ctx);
        let executor = SimExecutor::new(&d1, SimConfig::default());
        let bytes = snapshot(&executor).unwrap();
        match restore(&d2, SimConfig::default(), &bytes) {
            Err(CheckpointError::PlanMismatch { detail, .. }) => {
                assert!(
                    detail.contains("task states") || detail.contains("first diverging task"),
                    "{detail}"
                );
            }
            Err(other) => panic!("expected PlanMismatch, got {other:?}"),
            Ok(_) => panic!("expected PlanMismatch, got a restored executor"),
        }
    }

    #[test]
    fn unsupported_version_rejected() {
        let deployment = two_node_deployment(100);
        let executor = SimExecutor::new(&deployment, SimConfig::default());
        let mut bytes = snapshot(&executor).unwrap();
        // Version field sits right after the 4-byte magic.
        bytes[4] = 0xff;
        assert!(matches!(
            restore(&deployment, SimConfig::default(), &bytes),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn snapshot_decode_is_lossless() {
        let deployment = two_node_deployment(100);
        let mut executor = SimExecutor::new(&deployment, SimConfig::default());
        let events = vec![
            muse_core::event::Event::new(0, EventTypeId(0), 10, NodeId(0)),
            muse_core::event::Event::new(1, EventTypeId(1), 20, NodeId(1)),
            muse_core::event::Event::new(2, EventTypeId(0), 30, NodeId(0)),
        ];
        executor.process_trace(&events);
        let snap = executor.to_snapshot();
        let decoded = decode_for(&deployment, &encode(&snap)).unwrap();
        assert_eq!(decoded, snap);
        assert!(decoded.metrics.sink_matches > 0 || decoded.metrics.events_injected > 0);
    }
}
