//! Checkpointing of executor state — the stand-in for Ambrosia's "virtual
//! resiliency" (§7.3 of the paper).
//!
//! The paper's case-study engine runs each node inside an Ambrosia
//! *immortal* that checkpoints the application state (input queues and
//! partial matches) and replays logged calls after a failure. Here the
//! equivalent durable state is the [`crate::sim::SimState`]: per-task join
//! buffers, pending deliveries, metrics, and collected matches. A snapshot
//! taken mid-run and restored into a fresh executor resumes to exactly the
//! same results as an uninterrupted run (verified by the executor tests).

use crate::deploy::Deployment;
use crate::sim::{SimConfig, SimExecutor, SimState};

/// Errors raised by snapshot/restore.
#[derive(Debug)]
pub enum CheckpointError {
    /// State (de)serialization failed.
    Serde(serde_json::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Serde(e) => write!(f, "checkpoint serialization failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes an executor's state into a durable snapshot.
pub fn snapshot(executor: &SimExecutor<'_>) -> Result<Vec<u8>, CheckpointError> {
    serde_json::to_vec(&executor.state()).map_err(CheckpointError::Serde)
}

/// Restores an executor from a snapshot against the same deployment.
pub fn restore<'a>(
    deployment: &'a Deployment,
    config: SimConfig,
    bytes: &[u8],
) -> Result<SimExecutor<'a>, CheckpointError> {
    let state: SimState = serde_json::from_slice(bytes).map_err(CheckpointError::Serde)?;
    Ok(SimExecutor::from_state(deployment, config, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::algorithms::amuse::{amuse, AMuseConfig};
    use muse_core::graph::PlanContext;
    use muse_core::network::NetworkBuilder;
    use muse_core::query::{Pattern, Query};
    use muse_core::types::{EventTypeId, NodeId, QueryId};

    #[test]
    fn snapshot_roundtrip_empty_executor() {
        let t0 = EventTypeId(0);
        let t1 = EventTypeId(1);
        let net = NetworkBuilder::new(2, 2)
            .node(NodeId(0), [t0])
            .node(NodeId(1), [t1])
            .rate(t0, 1.0)
            .rate(t1, 1.0)
            .build();
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(t0), Pattern::leaf(t1)]),
            vec![],
            100,
        )
        .unwrap();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let executor = SimExecutor::new(&deployment, SimConfig::default());
        let bytes = snapshot(&executor).unwrap();
        let restored = restore(&deployment, SimConfig::default(), &bytes).unwrap();
        assert_eq!(restored.metrics().events_injected, 0);
        assert!(restored.matches().iter().all(Vec::is_empty));
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let t0 = EventTypeId(0);
        let net = NetworkBuilder::new(1, 1)
            .node(NodeId(0), [t0])
            .rate(t0, 1.0)
            .build();
        let q = Query::build(QueryId(0), &Pattern::leaf(t0), vec![], 10).unwrap();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        assert!(restore(&deployment, SimConfig::default(), b"not json").is_err());
    }
}
