//! Compact binary wire format for events and matches.
//!
//! Used (a) to account transmitted bytes realistically in the executors,
//! (b) as the match payload of the threaded executor's channel messages,
//! and (c) as the body encoding of [`crate::checkpoint`] snapshots. The
//! format is length-prefixed and self-describing enough for roundtrips;
//! it is not versioned itself — snapshots wrap it in a versioned,
//! plan-fingerprinted envelope (see `checkpoint`).
//!
//! The in-run decoders ([`decode_event`], [`decode_match`]) panic on
//! malformed input, which is fine for channel payloads this process just
//! encoded; the checked `try_*` variants exist for the snapshot reader,
//! where the input is untrusted bytes from disk.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use muse_core::event::{Event, Payload, Value};
use muse_core::types::{AttrId, EventTypeId, NodeId, PrimId};

use crate::matcher::Match;

/// Encodes a match.
pub fn encode_match(m: &Match) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + m.len() * 32);
    buf.put_u16(m.len() as u16);
    for (prim, event) in m.entries() {
        buf.put_u8(prim.0);
        encode_event(event, &mut buf);
    }
    buf.freeze()
}

/// Decodes a match.
///
/// # Panics
///
/// Panics on malformed input (the format is only produced by
/// [`encode_match`]).
pub fn decode_match(mut buf: impl Buf) -> Match {
    let n = buf.get_u16() as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let prim = PrimId(buf.get_u8());
        let event = decode_event(&mut buf);
        entries.push((prim, event));
    }
    Match::new(entries)
}

/// Checked variant of [`decode_match`] for untrusted input (snapshot
/// bytes): returns `None` on truncation or a malformed value instead of
/// panicking. Consumes from the front of `buf` exactly as far as the
/// match extends on success.
pub fn try_decode_match(buf: &mut &[u8]) -> Option<Match> {
    let n = try_get_u16(buf)? as usize;
    let mut entries = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let prim = PrimId(try_get_u8(buf)?);
        let event = try_decode_event(buf)?;
        entries.push((prim, event));
    }
    Some(Match::new(entries))
}

/// Checked variant of [`decode_event`] for untrusted input; see
/// [`try_decode_match`].
pub fn try_decode_event(buf: &mut &[u8]) -> Option<Event> {
    let seq = try_get_u64(buf)?;
    let ty = EventTypeId(try_get_u16(buf)?);
    let time = try_get_u64(buf)?;
    let origin = NodeId(try_get_u16(buf)?);
    let n_attrs = try_get_u8(buf)? as usize;
    let mut payload = Payload::new();
    for _ in 0..n_attrs {
        let attr = AttrId(try_get_u8(buf)?);
        let value = match try_get_u8(buf)? {
            0 => Value::Int(try_get_u64(buf)? as i64),
            1 => Value::Float(f64::from_bits(try_get_u64(buf)?)),
            2 => {
                let len = try_get_u32(buf)? as usize;
                if buf.len() < len {
                    return None;
                }
                let (head, rest) = buf.split_at(len);
                let s = String::from_utf8(head.to_vec()).ok()?;
                *buf = rest;
                Value::Str(s)
            }
            _ => return None,
        };
        payload.set(attr, value);
    }
    Some(Event::with_payload(seq, ty, time, origin, payload))
}

/// Reads a big-endian `u8` from the front of the slice, if present.
pub fn try_get_u8(buf: &mut &[u8]) -> Option<u8> {
    let (head, rest) = buf.split_first()?;
    *buf = rest;
    Some(*head)
}

/// Reads a big-endian `u16` from the front of the slice, if present.
pub fn try_get_u16(buf: &mut &[u8]) -> Option<u16> {
    if buf.len() < 2 {
        return None;
    }
    let (head, rest) = buf.split_at(2);
    *buf = rest;
    Some(u16::from_be_bytes(head.try_into().unwrap()))
}

/// Reads a big-endian `u32` from the front of the slice, if present.
pub fn try_get_u32(buf: &mut &[u8]) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Some(u32::from_be_bytes(head.try_into().unwrap()))
}

/// Reads a big-endian `u64` from the front of the slice, if present.
pub fn try_get_u64(buf: &mut &[u8]) -> Option<u64> {
    if buf.len() < 8 {
        return None;
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Some(u64::from_be_bytes(head.try_into().unwrap()))
}

/// Encodes an event into the buffer.
pub fn encode_event(e: &Event, buf: &mut BytesMut) {
    buf.put_u64(e.seq);
    buf.put_u16(e.ty.0);
    buf.put_u64(e.time);
    buf.put_u16(e.origin.0);
    buf.put_u8(e.payload.len() as u8);
    for (attr, value) in e.payload.iter() {
        buf.put_u8(attr.0);
        match value {
            Value::Int(v) => {
                buf.put_u8(0);
                buf.put_i64(*v);
            }
            Value::Float(v) => {
                buf.put_u8(1);
                buf.put_f64(*v);
            }
            Value::Str(s) => {
                buf.put_u8(2);
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

/// Decodes an event from the buffer.
pub fn decode_event(buf: &mut impl Buf) -> Event {
    let seq = buf.get_u64();
    let ty = EventTypeId(buf.get_u16());
    let time = buf.get_u64();
    let origin = NodeId(buf.get_u16());
    let n_attrs = buf.get_u8() as usize;
    let mut payload = Payload::new();
    for _ in 0..n_attrs {
        let attr = AttrId(buf.get_u8());
        let value = match buf.get_u8() {
            0 => Value::Int(buf.get_i64()),
            1 => Value::Float(buf.get_f64()),
            2 => {
                let len = buf.get_u32() as usize;
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                Value::Str(String::from_utf8(bytes).expect("valid UTF-8"))
            }
            tag => panic!("unknown value tag {tag}"),
        };
        payload.set(attr, value);
    }
    Event::with_payload(seq, ty, time, origin, payload)
}

/// Encoded size of one event in bytes, computed arithmetically (no buffer
/// is written). Kept in lockstep with [`encode_event`]; the equality is
/// asserted by the codec property suite.
pub fn encoded_event_len(e: &Event) -> usize {
    // seq + ty + time + origin + attr count.
    let mut len = 8 + 2 + 8 + 2 + 1;
    for (_, value) in e.payload.iter() {
        // attr id + value tag.
        len += 1 + 1;
        len += match value {
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len(),
        };
    }
    len
}

/// Encoded size of a match in bytes (what a network transmission costs).
/// Computed arithmetically so the executors' send paths can account bytes
/// without encoding (and allocating) the full wire buffer per match.
pub fn encoded_len(m: &Match) -> usize {
    // Entry count prefix, then one prim id byte per entry plus its event.
    2 + m
        .entries()
        .iter()
        .map(|(_, e)| 1 + encoded_event_len(e))
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        let mut p = Payload::new();
        p.set(AttrId(0), Value::Int(-7));
        p.set(AttrId(3), Value::Float(2.5));
        p.set(AttrId(5), Value::Str("job-42".into()));
        Event::with_payload(99, EventTypeId(4), 123_456, NodeId(17), p)
    }

    #[test]
    fn event_roundtrip() {
        let e = sample_event();
        let mut buf = BytesMut::new();
        encode_event(&e, &mut buf);
        let back = decode_event(&mut buf.freeze());
        assert_eq!(back, e);
    }

    #[test]
    fn match_roundtrip() {
        let m = Match::new(vec![
            (PrimId(0), sample_event()),
            (PrimId(2), Event::new(5, EventTypeId(1), 10, NodeId(0))),
        ]);
        let encoded = encode_match(&m);
        let back = decode_match(encoded);
        assert_eq!(back, m);
    }

    #[test]
    fn empty_match_roundtrip() {
        let m = Match::new(vec![]);
        assert_eq!(decode_match(encode_match(&m)), m);
    }

    #[test]
    fn encoded_len_reflects_payload() {
        let small = Match::single(PrimId(0), Event::new(1, EventTypeId(0), 1, NodeId(0)));
        let big = Match::single(PrimId(0), sample_event());
        assert!(encoded_len(&big) > encoded_len(&small));
    }

    #[test]
    fn try_decode_roundtrips_and_rejects_truncation() {
        let m = Match::new(vec![
            (PrimId(0), sample_event()),
            (PrimId(2), Event::new(5, EventTypeId(1), 10, NodeId(0))),
        ]);
        let encoded = encode_match(&m).chunk().to_vec();
        let mut slice: &[u8] = &encoded;
        assert_eq!(try_decode_match(&mut slice), Some(m));
        assert!(slice.is_empty(), "decode must consume the exact encoding");
        // Every strict prefix is rejected, never panics.
        for cut in 0..encoded.len() {
            let mut short: &[u8] = &encoded[..cut];
            assert_eq!(try_decode_match(&mut short), None, "prefix len {cut}");
        }
        // A bad value tag is rejected.
        let mut bad = encoded.clone();
        // First attr's tag byte: 2 (count) + 1 (prim) + 21 (event header) + 1 (attr id).
        let tag_pos = 2 + 1 + 21 + 1;
        bad[tag_pos] = 9;
        let mut slice: &[u8] = &bad;
        assert_eq!(try_decode_match(&mut slice), None);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for m in [
            Match::new(vec![]),
            Match::single(PrimId(0), Event::new(1, EventTypeId(0), 1, NodeId(0))),
            Match::new(vec![
                (PrimId(0), sample_event()),
                (PrimId(2), Event::new(5, EventTypeId(1), 10, NodeId(0))),
            ]),
        ] {
            assert_eq!(encoded_len(&m), encode_match(&m).len());
        }
    }
}
