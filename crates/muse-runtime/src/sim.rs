//! Deterministic discrete-event execution of a deployment.
//!
//! The simulator drives a [`Deployment`] over a global event trace with a
//! virtual clock: events are injected in trace order, every triggered
//! cascade of match deliveries is processed before the next injection, and
//! deliveries are ordered by `(virtual time, triggering event, hop)` so that
//! causality — in particular the arrive-before-candidate property that the
//! `NSEQ` absence check relies on — holds exactly when the network latency
//! is zero.
//!
//! The simulator is the measurement instrument for the paper's transmission
//! experiments (§7.2, Table 3): it counts every match that crosses the
//! network (once per target node, matching the cost model's shipping rule
//! of §4.4) and the encoded bytes.

use crate::checkpoint::{CheckpointError, PendingDelivery, Snapshot};
use crate::codec::encoded_len;
use crate::deploy::{Deployment, TaskKind};
use crate::matcher::{JoinTask, Match};
use crate::metrics::Metrics;
use crate::telemetry::{ClockDomain, ExecTelemetry, RunTelemetry, TelemetrySpec};
use muse_core::event::{Event, Timestamp};
use muse_core::types::NodeId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Virtual network latency per hop, in ticks. With the default of 0 the
    /// simulation is exactly trace-ordered (required for `NSEQ` queries).
    pub latency: Timestamp,
    /// Join store eviction slack (≥ 1.0).
    pub slack: f64,
    /// Telemetry collection (registry, per-task series, trace); `None`
    /// disables it entirely. Telemetry is observational — it is not part
    /// of checkpointed state and restarts fresh on restore.
    #[serde(default)]
    pub telemetry: Option<TelemetrySpec>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            latency: 0,
            slack: 1.0,
            telemetry: None,
        }
    }
}

/// Runtime state of one task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TaskState {
    /// A source task is stateless.
    Source,
    /// A join task with its buffered matches (boxed: join state is large
    /// compared to the empty source variant).
    Join(Box<JoinTask>),
}

/// A scheduled match delivery.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QItem {
    time: Timestamp,
    trigger: u64,
    sub: u64,
    target: usize,
    slot: usize,
    m: Match,
}

/// Heap adapter ordering deliveries by `(time, trigger, sub)` ascending.
#[derive(Debug, Clone)]
struct HeapEntry(QItem);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on BinaryHeap.
        other.key().cmp(&self.key())
    }
}
impl HeapEntry {
    fn key(&self) -> (Timestamp, u64, u64) {
        (self.0.time, self.0.trigger, self.0.sub)
    }
}

/// Serializable executor state (everything but the deployment itself); the
/// unit of checkpointing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimState {
    /// Per-task runtime state.
    pub states: Vec<TaskState>,
    /// Pending deliveries (drained heap).
    pending: Vec<QItem>,
    next_sub: u64,
    /// Collected metrics.
    pub metrics: Metrics,
    /// Sink matches per query (parallel to `Deployment::queries`).
    pub matches: Vec<Vec<Match>>,
    /// Transmission-multiplexing memory (see `SimExecutor::sent`).
    #[serde(default)]
    sent: Vec<(u64, NodeId, NodeId, u64)>,
}

/// The result of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Sink matches per query (parallel to `Deployment::queries`).
    pub matches: Vec<Vec<Match>>,
    /// Collected metrics.
    pub metrics: Metrics,
    /// Collected telemetry, when [`SimConfig::telemetry`] was set.
    pub telemetry: Option<RunTelemetry>,
}

/// A resumable discrete-event executor.
pub struct SimExecutor<'a> {
    deployment: &'a Deployment,
    config: SimConfig,
    states: Vec<TaskState>,
    heap: BinaryHeap<HeapEntry>,
    next_sub: u64,
    metrics: Metrics,
    matches: Vec<Vec<Match>>,
    /// Already-transmitted streams `(stream sig, from, to, match hash)`:
    /// identical matches of semantically identical tasks are shipped to a
    /// node once and multiplexed (cross-query stream reuse at runtime).
    sent: std::collections::HashSet<(u64, NodeId, NodeId, u64), MuxBuildHasher>,
    /// Telemetry collection state (when enabled by the config).
    telemetry: Option<ExecTelemetry>,
}

impl<'a> SimExecutor<'a> {
    /// Creates an executor with fresh task state.
    pub fn new(deployment: &'a Deployment, config: SimConfig) -> Self {
        let states = (0..deployment.tasks.len())
            .map(|i| match &deployment.tasks[i].kind {
                TaskKind::Source { .. } => TaskState::Source,
                TaskKind::Join { .. } => TaskState::Join(Box::new(
                    deployment
                        .make_join(i, config.slack)
                        .expect("join task instantiates"),
                )),
            })
            .collect();
        let matches = vec![Vec::new(); deployment.queries.len()];
        let metrics = Metrics::new(deployment.num_nodes);
        let telemetry = config.telemetry.as_ref().map(|spec| {
            ExecTelemetry::new(ClockDomain::VirtualTicks, spec, deployment.tasks.len())
        });
        Self {
            deployment,
            config,
            states,
            heap: BinaryHeap::new(),
            next_sub: 0,
            metrics,
            matches,
            sent: Default::default(),
            telemetry,
        }
    }

    /// Feeds a slice of the global trace (events must be in trace order and
    /// non-decreasing across successive calls).
    pub fn process_trace(&mut self, events: &[Event]) {
        for event in events {
            self.maybe_sample(event.time);
            self.inject(event);
            self.drain();
        }
    }

    /// Emits one series sample per join task when the cadence has elapsed
    /// at virtual time `now`.
    fn maybe_sample(&mut self, now: Timestamp) {
        if self
            .telemetry
            .as_ref()
            .is_some_and(|tel| tel.sample_due(now))
        {
            self.sample(now);
        }
    }

    /// Emits one series sample per join task unconditionally.
    fn sample(&mut self, now: Timestamp) {
        let Some(tel) = &mut self.telemetry else {
            return;
        };
        let queue_depth = self.heap.len() as u64;
        for (i, state) in self.states.iter().enumerate() {
            let TaskState::Join(join) = state else {
                continue;
            };
            let stats = join.stats();
            tel.record_task_sample(
                now,
                i,
                self.deployment.tasks[i].node.index(),
                self.deployment.task_label(i),
                queue_depth,
                join.buffered() as u64,
                now.saturating_sub(join.last_seen()),
                [stats.inputs, stats.probes, stats.evicted, stats.emitted],
            );
        }
        tel.end_sample(now);
    }

    /// Injects one event into the source tasks at its origin, consulting
    /// the deployment's discrimination index first: candidate tasks whose
    /// predicate bands reject the event are pruned without evaluating a
    /// single predicate.
    fn inject(&mut self, event: &Event) {
        let deployment = self.deployment;
        let candidates = deployment.candidates_for(event.origin, event.ty);
        if candidates.is_empty() {
            return;
        }
        self.metrics.events_injected += 1;
        self.metrics.record_processed(event.origin.index());
        if let Some(tel) = &mut self.telemetry {
            tel.on_inject(event.time, event.origin.index(), candidates[0].task, event);
        }
        let mut admitted = 0u64;
        for cand in candidates {
            let admits = cand.admits(event);
            if let Some(tel) = &mut self.telemetry {
                tel.on_candidate(cand.task, admits);
            }
            if !admits {
                continue;
            }
            admitted += 1;
            let task = cand.task;
            let TaskKind::Source {
                prim, predicates, ..
            } = &deployment.tasks[task].kind
            else {
                unreachable!("candidates_for returns source tasks");
            };
            let query = &deployment.queries[deployment.tasks[task].query_idx];
            let passes = predicates.iter().all(|&pi| {
                query.predicates()[pi].evaluate(|p| (p == *prim).then_some(event)) == Some(true)
            });
            if !passes {
                continue;
            }
            if let Some(tel) = &mut self.telemetry {
                tel.on_emit(task, event.time, 1);
            }
            let m = Match::single(*prim, event.clone());
            self.route(task, vec![m], event.time, event.seq);
        }
        self.metrics
            .discrimination
            .observe(candidates.len() as u64, admitted);
    }

    /// Routes emitted matches of a task: schedules deliveries, counting
    /// network messages once per (match, remote target node).
    ///
    /// The destination sets come from the deployment's precomputed
    /// [`crate::deploy::Fanout`] (shared with the threaded executor's
    /// transport), so no per-emission route-table clone or per-match
    /// destination vector is built.
    fn route(&mut self, task: usize, outs: Vec<Match>, time: Timestamp, trigger: u64) {
        if outs.is_empty() {
            return;
        }
        // Copy the deployment reference out of `self` so route/fanout
        // borrows don't conflict with the metric and heap updates below.
        let deployment = self.deployment;
        let routes = &deployment.routes[task];
        if routes.is_empty() {
            return;
        }
        let fanout = &deployment.fanouts[task];
        let own_node = deployment.tasks[task].node;
        for m in outs {
            // Count each remote node once (§4.4: matches are shipped to a
            // node once and shared by its placements).
            if !fanout.remote_nodes.is_empty() {
                let bytes = encoded_len(&m) as u64;
                let sig = deployment.tasks[task].stream_sig;
                let mhash = match_hash(&m);
                for &n in &fanout.remote_nodes {
                    let n = NodeId(n as u16);
                    if self.sent.insert((sig, own_node, n, mhash)) {
                        self.metrics.messages_sent += 1;
                        self.metrics.bytes_sent += bytes;
                        if let Some(tel) = &mut self.telemetry {
                            tel.on_ship(time, own_node.index(), n.index(), task, bytes);
                        }
                    }
                }
            }
            for r in routes {
                let delivery_time = if r.remote {
                    time + self.config.latency
                } else {
                    self.metrics.local_deliveries += 1;
                    if let Some(tel) = &mut self.telemetry {
                        tel.on_local();
                    }
                    time
                };
                debug_assert!(
                    r.remote || deployment.tasks[r.target].node == own_node,
                    "local route must stay on the node"
                );
                self.next_sub += 1;
                self.heap.push(HeapEntry(QItem {
                    time: delivery_time,
                    trigger,
                    sub: self.next_sub,
                    target: r.target,
                    slot: r.slot,
                    m: m.clone(),
                }));
            }
        }
    }

    /// Processes all pending deliveries.
    fn drain(&mut self) {
        while let Some(HeapEntry(item)) = self.heap.pop() {
            let spec = &self.deployment.tasks[item.target];
            let node = spec.node.index();
            self.metrics.record_processed(node);
            if let Some(tel) = &mut self.telemetry {
                tel.on_delivery(item.target);
            }
            let outs = match &mut self.states[item.target] {
                TaskState::Join(join) => join.on_match(item.slot, item.m),
                TaskState::Source => unreachable!("deliveries only target joins"),
            };
            if outs.is_empty() {
                continue;
            }
            if let Some(tel) = &mut self.telemetry {
                for m in &outs {
                    tel.on_emit(item.target, m.last_time(), 1);
                }
            }
            if spec.is_sink {
                // One physical sink may feed many logical queries (shared
                // deployments): attribute each match to every subscriber so
                // per-query match sets — and their fingerprints — are
                // identical to independent evaluation.
                let deployment = self.deployment;
                let sink_queries = &deployment.sink_queries[item.target];
                let prov = self
                    .telemetry
                    .as_ref()
                    .map_or(0, |tel| tel.provenance_sample());
                for m in &outs {
                    let latency = item.time.saturating_sub(m.last_time());
                    let mhash = if prov != 0 { match_hash(m) } else { 0 };
                    for &query_idx in sink_queries {
                        self.metrics.sink_matches += 1;
                        self.metrics.record_latency(latency);
                        if let Some(tel) = &mut self.telemetry {
                            tel.on_sink(
                                item.time,
                                node,
                                item.target,
                                m.len(),
                                m.last_time(),
                                latency,
                            );
                            if prov != 0 {
                                tel.on_sink_match(
                                    item.time,
                                    node,
                                    item.target,
                                    &deployment.queries[query_idx],
                                    query_idx,
                                    m,
                                    mhash,
                                );
                            }
                        }
                        self.matches[query_idx].push(m.clone());
                    }
                }
            } else if let Some(tel) = &mut self.telemetry {
                for m in &outs {
                    tel.on_merge(
                        item.time,
                        node,
                        item.target,
                        m.len(),
                        m.last_time().saturating_sub(m.first_time()),
                    );
                }
            }
            self.route(item.target, outs, item.time, item.trigger);
        }
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The sink matches collected so far, per query.
    pub fn matches(&self) -> &[Vec<Match>] {
        &self.matches
    }

    /// Extracts the serializable state (checkpointing support).
    pub fn state(&self) -> SimState {
        let mut pending: Vec<QItem> = self.heap.iter().map(|e| e.0.clone()).collect();
        pending.sort_by_key(|i| (i.time, i.trigger, i.sub));
        let mut sent: Vec<(u64, NodeId, NodeId, u64)> = self.sent.iter().copied().collect();
        sent.sort_unstable();
        SimState {
            states: self.states.clone(),
            pending,
            next_sub: self.next_sub,
            metrics: self.metrics.clone(),
            matches: self.matches.clone(),
            sent,
        }
    }

    /// Rebuilds an executor from a previously extracted state. Telemetry
    /// is observational and not checkpointed: collection restarts fresh
    /// when the config enables it.
    pub fn from_state(deployment: &'a Deployment, config: SimConfig, state: SimState) -> Self {
        let heap = state.pending.into_iter().map(HeapEntry).collect();
        let telemetry = config.telemetry.as_ref().map(|spec| {
            ExecTelemetry::new(ClockDomain::VirtualTicks, spec, deployment.tasks.len())
        });
        Self {
            deployment,
            config,
            states: state.states,
            heap,
            next_sub: state.next_sub,
            metrics: state.metrics,
            matches: state.matches,
            sent: state.sent.into_iter().collect(),
            telemetry,
        }
    }

    /// Captures the executor's state as a portable [`Snapshot`] — the
    /// schema shared with the threaded executor (see [`crate::checkpoint`]).
    pub fn to_snapshot(&self) -> Snapshot {
        let tasks = self
            .states
            .iter()
            .map(|s| match s {
                TaskState::Source => None,
                TaskState::Join(join) => Some(join.save_state()),
            })
            .collect();
        let mut pending: Vec<PendingDelivery> = self
            .heap
            .iter()
            .map(|e| PendingDelivery {
                time: e.0.time,
                trigger: e.0.trigger,
                sub: e.0.sub,
                target: e.0.target,
                slot: e.0.slot,
                m: e.0.m.clone(),
            })
            .collect();
        pending.sort_by_key(|p| (p.time, p.trigger, p.sub));
        let mut sent: Vec<(u64, u16, u16, u64)> = self
            .sent
            .iter()
            .map(|&(sig, from, to, mhash)| (sig, from.0, to.0, mhash))
            .collect();
        sent.sort_unstable();
        Snapshot {
            plan: self.deployment.fingerprint(),
            tasks,
            pending,
            next_sub: self.next_sub,
            metrics: self.metrics.clone(),
            matches: self.matches.clone(),
            wall_latencies_ns: Vec::new(),
            sent,
            cursors: Vec::new(),
        }
    }

    /// Rebuilds an executor from a decoded [`Snapshot`] (which may have
    /// been produced by either executor). Join tasks are re-instantiated
    /// from the deployment plan and the snapshot's dynamic state is
    /// grafted on; wall-clock latencies and event cursors, which only the
    /// threaded executor interprets, are ignored. Telemetry restarts
    /// fresh.
    pub fn from_snapshot(
        deployment: &'a Deployment,
        config: SimConfig,
        snap: Snapshot,
    ) -> Result<Self, CheckpointError> {
        if snap.tasks.len() != deployment.tasks.len() {
            return Err(CheckpointError::Shape("task count differs from deployment"));
        }
        if snap.matches.len() != deployment.queries.len() {
            return Err(CheckpointError::Shape(
                "query count differs from deployment",
            ));
        }
        let mut states = Vec::with_capacity(deployment.tasks.len());
        for (i, saved) in snap.tasks.into_iter().enumerate() {
            let mut join = match &deployment.tasks[i].kind {
                TaskKind::Source { .. } => None,
                TaskKind::Join { .. } => Some(
                    deployment
                        .make_join(i, config.slack)
                        .ok_or(CheckpointError::Shape("join task failed to instantiate"))?,
                ),
            };
            crate::checkpoint::restore_task(deployment, i, saved, &mut join, |j, state| {
                j.restore_state(state)
            })?;
            states.push(match join {
                None => TaskState::Source,
                Some(j) => TaskState::Join(Box::new(j)),
            });
        }
        for p in &snap.pending {
            let is_join = matches!(states.get(p.target), Some(TaskState::Join(_)));
            if !is_join {
                return Err(CheckpointError::Shape(
                    "pending delivery targets a non-join task",
                ));
            }
        }
        let heap = snap
            .pending
            .into_iter()
            .map(|p| {
                HeapEntry(QItem {
                    time: p.time,
                    trigger: p.trigger,
                    sub: p.sub,
                    target: p.target,
                    slot: p.slot,
                    m: p.m,
                })
            })
            .collect();
        let sent = snap
            .sent
            .into_iter()
            .map(|(sig, from, to, mhash)| (sig, NodeId(from), NodeId(to), mhash))
            .collect();
        let telemetry = config.telemetry.as_ref().map(|spec| {
            ExecTelemetry::new(ClockDomain::VirtualTicks, spec, deployment.tasks.len())
        });
        Ok(Self {
            deployment,
            config,
            states,
            heap,
            next_sub: snap.next_sub,
            metrics: snap.metrics,
            matches: snap.matches,
            sent,
            telemetry,
        })
    }

    /// Finishes the run and returns the report, folding per-join engine
    /// counters into the metrics.
    pub fn finish(mut self) -> SimReport {
        self.drain();
        // Final series sample at the global watermark before folding.
        let now = self
            .states
            .iter()
            .filter_map(|s| match s {
                TaskState::Join(j) => Some(j.last_seen()),
                TaskState::Source => None,
            })
            .max()
            .unwrap_or(0);
        self.sample(now);
        for state in &self.states {
            if let TaskState::Join(join) = state {
                self.metrics.join.merge(join.stats());
            }
        }
        let telemetry = self.telemetry.take().map(|tel| {
            let tasks = crate::telemetry::task_summaries(
                self.deployment,
                0..self.deployment.tasks.len(),
                |i| match &self.states[i] {
                    TaskState::Join(join) => Some(join),
                    TaskState::Source => None,
                },
                &tel,
            );
            tel.finish(&self.metrics, tasks)
        });
        SimReport {
            matches: self.matches,
            metrics: self.metrics,
            telemetry,
        }
    }
}

/// A compact hash of a match's constituent events (for transmission
/// multiplexing; collisions only skew the metric, never the results).
pub(crate) fn match_hash_for_mux(m: &Match) -> u64 {
    match_hash(m)
}

/// The hasher for the transmission-multiplexing `sent` sets.
///
/// The set keys are stream signatures and [`match_hash_for_mux`] values —
/// both already well mixed — so SipHash's keyed preimage resistance buys
/// nothing here while its per-insert cost shows up in the executor send
/// path (the set grows with every unique transmission). One multiply-and-
/// rotate round per word keeps the tuple components from cancelling and
/// costs a few cycles.
#[derive(Default)]
pub(crate) struct MuxHasher(u64);

impl std::hash::Hasher for MuxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(26);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64)
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64)
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64)
    }
}

/// `HashSet` state for [`MuxHasher`]-keyed multiplexing sets.
pub(crate) type MuxBuildHasher = std::hash::BuildHasherDefault<MuxHasher>;

fn match_hash(m: &Match) -> u64 {
    // Only the constituent events identify the physical payload: primitive
    // operator ids are receiver-side interpretation and differ across
    // queries for semantically identical streams. Each seq is finalized
    // through splitmix64 and combined with a commutative add, so the hash
    // is independent of entry order without sorting (and allocating) a
    // scratch vector on the send path.
    let mut acc: u64 = 0;
    for (_, e) in m.entries() {
        let mut x = e.seq.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        acc = acc.wrapping_add(x ^ (x >> 31));
    }
    acc
}

/// Runs a deployment over a complete global trace.
///
/// # Examples
///
/// ```
/// use muse_core::graph::PlanContext;
/// use muse_core::prelude::*;
/// use muse_runtime::sim::{run_simulation, SimConfig};
/// use muse_runtime::Deployment;
///
/// // Two nodes, each producing one type; query SEQ(A, B).
/// let (a, b) = (EventTypeId(0), EventTypeId(1));
/// let network = NetworkBuilder::new(2, 2)
///     .node(NodeId(0), [a])
///     .node(NodeId(1), [b])
///     .rate(a, 5.0)
///     .rate(b, 5.0)
///     .build();
/// let query = Query::build(
///     QueryId(0),
///     &Pattern::seq([Pattern::leaf(a), Pattern::leaf(b)]),
///     vec![],
///     1_000,
/// )
/// .unwrap();
/// let plan = amuse(&query, &network, &AMuseConfig::default()).unwrap();
/// let ctx = PlanContext::new(std::slice::from_ref(&query), &network, &plan.table);
/// let deployment = Deployment::new(&plan.graph, &ctx);
///
/// let trace = vec![
///     Event::new(0, a, 10, NodeId(0)),
///     Event::new(1, b, 20, NodeId(1)),
/// ];
/// let report = run_simulation(&deployment, &trace, &SimConfig::default());
/// assert_eq!(report.matches[0].len(), 1);
/// assert!(report.metrics.messages_sent >= 1); // something crossed the network
/// ```
pub fn run_simulation(deployment: &Deployment, events: &[Event], config: &SimConfig) -> SimReport {
    let mut executor = SimExecutor::new(deployment, config.clone());
    executor.process_trace(events);
    executor.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Evaluator;
    use muse_core::algorithms::amuse::{amuse, AMuseConfig};
    use muse_core::graph::PlanContext;
    use muse_core::network::{Network, NetworkBuilder};
    use muse_core::query::{CmpOp, Pattern, Predicate, Query};
    use muse_core::types::{AttrId, EventTypeId, PrimId, QueryId};
    use std::collections::BTreeSet;

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn fig1_network() -> Network {
        NetworkBuilder::new(3, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .rate(t(0), 20.0)
            .rate(t(1), 20.0)
            .rate(t(2), 1.0)
            .build()
    }

    fn robots_query(selectivity: Option<f64>) -> Query {
        let preds = selectivity
            .map(|s| {
                vec![Predicate::binary(
                    (PrimId(0), AttrId(0)),
                    CmpOp::Eq,
                    (PrimId(1), AttrId(0)),
                    s,
                )]
            })
            .unwrap_or_default();
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            preds,
            5_000,
        )
        .unwrap()
    }

    fn fingerprints(matches: &[Match]) -> BTreeSet<Vec<u64>> {
        matches.iter().map(Match::fingerprint).collect()
    }

    fn deploy_and_run(query: &Query, network: &Network, events: &[Event]) -> SimReport {
        let plan = amuse(query, network, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(query), network, &plan.table);
        plan.graph.check_correct(&ctx, 1_000_000).unwrap();
        let deployment = Deployment::new(&plan.graph, &ctx);
        run_simulation(&deployment, events, &SimConfig::default())
    }

    fn trace(network: &Network, seed: u64, key_domain: u32) -> Vec<Event> {
        muse_sim::traces::generate_traces(
            network,
            &muse_sim::traces::TraceConfig {
                duration: 30.0,
                ticks_per_unit: 100.0,
                rate_scale: 0.05,
                key_domain,
                band_domain: 0,
                seed,
            },
        )
    }

    #[test]
    fn distributed_matches_equal_centralized() {
        let net = fig1_network();
        let q = robots_query(None);
        for seed in 0..3 {
            let events = trace(&net, seed, 0);
            let report = deploy_and_run(&q, &net, &events);
            let central = Evaluator::for_query(&q).run(&events);
            assert_eq!(
                fingerprints(&report.matches[0]),
                fingerprints(&central),
                "seed {seed}: {} vs {} matches",
                report.matches[0].len(),
                central.len()
            );
            // No duplicates across sinks.
            assert_eq!(
                report.matches[0].len(),
                fingerprints(&report.matches[0]).len()
            );
        }
    }

    #[test]
    fn distributed_matches_with_predicates() {
        let net = fig1_network();
        let q = robots_query(Some(0.5));
        let events = muse_sim::traces::generate_traces(
            &net,
            &muse_sim::traces::TraceConfig {
                duration: 60.0,
                ticks_per_unit: 100.0,
                rate_scale: 0.15,
                key_domain: 2, // equality selectivity 0.5
                band_domain: 0,
                seed: 7,
            },
        );
        let report = deploy_and_run(&q, &net, &events);
        let central = Evaluator::for_query(&q).run(&events);
        assert_eq!(fingerprints(&report.matches[0]), fingerprints(&central));
        assert!(!central.is_empty(), "trace should produce matches");
    }

    #[test]
    fn transmissions_below_centralized() {
        let net = fig1_network();
        let q = robots_query(Some(0.25));
        let events = trace(&net, 3, 4);
        let report = deploy_and_run(&q, &net, &events);
        assert!(report.metrics.events_injected > 0);
        // The MuSE plan must move fewer matches than centralized shipping
        // of every event.
        assert!(
            report.metrics.messages_sent < report.metrics.events_injected,
            "sent {} of {} events",
            report.metrics.messages_sent,
            report.metrics.events_injected
        );
        assert!(report.metrics.bytes_sent > 0);
        assert_eq!(
            report.metrics.sink_matches as usize,
            report.matches[0].len()
        );
    }

    #[test]
    fn multi_sink_plan_partitions_matches() {
        // Network where every node produces the frequent type: aMuSE builds
        // a multi-sink plan; matches must be partitioned, not duplicated.
        let net = NetworkBuilder::new(3, 3)
            .node(n(0), [t(0), t(1)])
            .node(n(1), [t(0)])
            .node(n(2), [t(0), t(2)])
            .rate(t(0), 50.0)
            .rate(t(1), 1.0)
            .rate(t(2), 1.0)
            .build();
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(t(1)),
                Pattern::leaf(t(0)),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            5_000,
        )
        .unwrap();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let events = trace(&net, 11, 0);
        let report = deploy_and_run(&q, &net, &events);
        let central = Evaluator::for_query(&q).run(&events);
        assert_eq!(fingerprints(&report.matches[0]), fingerprints(&central));
        assert!(plan.is_multi_sink());
    }

    #[test]
    fn nseq_query_distributed() {
        // NSEQ(F, C, L): rare F, then rare L, with no frequent C between.
        let net = fig1_network();
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(t(2)),
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
            ),
            vec![],
            5_000,
        )
        .unwrap();
        let events = trace(&net, 5, 0);
        let report = deploy_and_run(&q, &net, &events);
        let central = Evaluator::for_query(&q).run(&events);
        assert_eq!(fingerprints(&report.matches[0]), fingerprints(&central));
    }

    #[test]
    fn checkpoint_and_restore_resumes_identically() {
        let net = fig1_network();
        let q = robots_query(None);
        let events = trace(&net, 13, 0);
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);

        // Uninterrupted run.
        let full = run_simulation(&deployment, &events, &SimConfig::default());

        // Interrupted run: snapshot at the midpoint, restore, resume.
        let mid = events.len() / 2;
        let mut first = SimExecutor::new(&deployment, SimConfig::default());
        first.process_trace(&events[..mid]);
        let snapshot = crate::checkpoint::snapshot(&first).unwrap();
        drop(first);
        let mut resumed =
            crate::checkpoint::restore(&deployment, SimConfig::default(), &snapshot).unwrap();
        resumed.process_trace(&events[mid..]);
        let report = resumed.finish();

        assert_eq!(
            fingerprints(&report.matches[0]),
            fingerprints(&full.matches[0])
        );
        assert_eq!(report.metrics.messages_sent, full.metrics.messages_sent);
    }

    #[test]
    fn latencies_recorded_per_sink_match() {
        let net = fig1_network();
        let q = robots_query(None);
        let events = trace(&net, 17, 0);
        let report = deploy_and_run(&q, &net, &events);
        assert_eq!(report.metrics.latencies.len(), report.matches[0].len());
        // Zero latency network: emission happens at the closing event time.
        assert!(report.metrics.latencies.iter().all(|&l| l == 0));
    }

    #[test]
    fn network_latency_adds_to_match_latency() {
        let net = fig1_network();
        let q = robots_query(None);
        let events = trace(&net, 17, 0);
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let report = run_simulation(
            &deployment,
            &events,
            &SimConfig {
                latency: 10,
                slack: 2.0,
                telemetry: None,
            },
        );
        if !report.metrics.latencies.is_empty() {
            assert!(report.metrics.latencies.iter().any(|&l| l > 0));
        }
    }
}
