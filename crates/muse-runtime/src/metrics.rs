//! Execution metrics: transmission accounting, processing load, and match
//! latencies.
//!
//! The paper's central metric is the *transmission ratio*: the rate of
//! events (matches) sent over the network under a plan, relative to
//! centralized evaluation where every raw event crosses the network once
//! (§7.1). The case study (§7.3) additionally reports throughput and
//! per-match latency.

use muse_core::event::Timestamp;
use muse_telemetry::LogHistogram;
use serde::{Deserialize, Serialize};

/// Exact nearest-rank percentile over an already-sorted slice:
/// `rank = round(q · (n − 1))` for `q ∈ [0, 1]`.
///
/// This is the single definition of "percentile" in the codebase — the
/// virtual-time summaries here, the wall-clock summaries in
/// [`crate::threaded::ThreadedReport`], and the
/// [`LogHistogram::quantile`] estimates the telemetry harness gates
/// against all use this same rule, so their results are comparable
/// rank-for-rank. Returns `None` on an empty slice.
pub fn percentile_nearest_rank(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

/// Per-join observability counters of the indexed join engine, aggregated
/// over all join tasks of a run. Probe counts versus merge attempts expose
/// how much work the window slicing saves; merge attempts versus merge
/// successes expose how selective the pre-merge guards leave the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinStats {
    /// Matches fed into join slots (positive and negated).
    pub inputs: u64,
    /// Stored matches inspected by window-sliced probes.
    pub probes: u64,
    /// Probed pairs rejected by the cheap pre-merge guards (window span or
    /// shared-primitive disagreement) before any merge allocation.
    pub guard_rejects: u64,
    /// Merges actually attempted ([`crate::matcher::Match::merge`] calls).
    pub merge_attempts: u64,
    /// Merges that produced a valid (partial) assignment.
    pub merge_successes: u64,
    /// Complete target matches emitted.
    pub emitted: u64,
    /// Stored matches physically dropped by watermark eviction.
    pub evicted: u64,
    /// Largest number of simultaneously buffered (live) matches observed in
    /// any single join task.
    pub peak_buffered: u64,
}

impl JoinStats {
    /// Accumulates another task's counters (peak is a maximum, the rest
    /// are sums).
    pub fn merge(&mut self, other: &JoinStats) {
        self.inputs += other.inputs;
        self.probes += other.probes;
        self.guard_rejects += other.guard_rejects;
        self.merge_attempts += other.merge_attempts;
        self.merge_successes += other.merge_successes;
        self.emitted += other.emitted;
        self.evicted += other.evicted;
        self.peak_buffered = self.peak_buffered.max(other.peak_buffered);
    }

    /// Fraction of attempted merges that produced a valid assignment
    /// (1.0 when nothing was attempted).
    pub fn merge_success_ratio(&self) -> f64 {
        if self.merge_attempts == 0 {
            1.0
        } else {
            self.merge_successes as f64 / self.merge_attempts as f64
        }
    }

    /// Fraction of probed pairs that survived the pre-merge guards
    /// (1.0 when nothing was probed).
    pub fn guard_pass_ratio(&self) -> f64 {
        if self.probes == 0 {
            1.0
        } else {
            self.merge_attempts as f64 / self.probes as f64
        }
    }
}

/// Observability counters of the threaded executor's batched transport
/// (zero in the simulator, which has no physical channels). Backpressure is
/// observable, not silent: blocked sends, queue depth, and the realized
/// batch-size distribution are first-class metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Frames pushed onto inter-node channels.
    pub frames_sent: u64,
    /// Messages (matches) carried inside those frames.
    pub messages_framed: u64,
    /// `try_send` attempts rejected because the destination channel was at
    /// capacity (each rejection steals from the sender's own inbox before
    /// retrying, so blocked sends convert into useful work).
    pub blocked_sends: u64,
    /// Frame buffers newly allocated because the recycling pool was empty.
    pub pool_allocs: u64,
    /// Frame buffers reused from the recycling return path.
    pub pool_reuses: u64,
    /// Largest number of frames observed in flight to any single node.
    pub peak_queue_depth: u64,
    /// Distribution of realized batch sizes (messages per frame).
    pub batch_hist: LogHistogram,
}

impl TransportStats {
    /// Accumulates another shard's counters (peak is a maximum, the
    /// histogram merges, the rest are sums).
    pub fn merge(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.messages_framed += other.messages_framed;
        self.blocked_sends += other.blocked_sends;
        self.pool_allocs += other.pool_allocs;
        self.pool_reuses += other.pool_reuses;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.batch_hist.merge(&other.batch_hist);
    }

    /// Fraction of frame buffers served from the recycling pool rather
    /// than freshly allocated (1.0 when no frame was ever sent).
    pub fn pool_reuse_ratio(&self) -> f64 {
        let total = self.pool_allocs + self.pool_reuses;
        if total == 0 {
            1.0
        } else {
            self.pool_reuses as f64 / total as f64
        }
    }
}

/// Crash-recovery counters of the threaded executor's fault-injection
/// layer (all zero in fault-free runs and in the simulator). These are
/// *not* part of checkpointed state: a crash must not roll back the record
/// of its own recovery, so the executor accumulates them outside the
/// restored metrics object and folds them in after quiescence.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Injected node crashes taken.
    pub crashes: u64,
    /// Per-node boundary snapshots written (chunk starts + end of run).
    pub snapshots_taken: u64,
    /// Cumulative encoded bytes of those snapshots.
    pub snapshot_bytes: u64,
    /// Messages re-delivered to a restarted node from peer replay logs.
    pub replayed_messages: u64,
    /// Duplicate physical sends suppressed during replay because the
    /// restarted node's flushed-send log showed the message had already
    /// crossed the network before the crash.
    pub suppressed_sends: u64,
    /// Bounded-timeout retry rounds taken by senders while a peer was
    /// unresponsive (each round sleeps one backoff interval).
    pub send_retries: u64,
    /// Total nanoseconds slept across those backoff intervals.
    pub backoff_ns: u64,
    /// Distribution of individual backoff sleeps (nanoseconds).
    pub backoff_hist: LogHistogram,
    /// Wall nanoseconds from crash to fully restored state (summed over
    /// crashes).
    pub recovery_ns: u64,
}

impl RecoveryStats {
    /// Accumulates another shard's counters (sums; the histogram merges).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.crashes += other.crashes;
        self.snapshots_taken += other.snapshots_taken;
        self.snapshot_bytes += other.snapshot_bytes;
        self.replayed_messages += other.replayed_messages;
        self.suppressed_sends += other.suppressed_sends;
        self.send_retries += other.send_retries;
        self.backoff_ns += other.backoff_ns;
        self.backoff_hist.merge(&other.backoff_hist);
        self.recovery_ns += other.recovery_ns;
    }
}

/// Discrimination-index counters of the executors' inject paths: how many
/// source-task candidates each event was matched against, and how many
/// survived the predicate-band pruning. The hit ratio (pruned fraction) is
/// the index's effectiveness; the admitted-per-event histogram is the
/// candidate-set-size distribution the multi-query bench reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiscriminationStats {
    /// Events that consulted the index (events with at least one candidate).
    pub events: u64,
    /// Candidate source tasks considered across all events (post type/origin
    /// dispatch, pre band check).
    pub candidates_considered: u64,
    /// Candidates that passed their predicate bands and proceeded to full
    /// predicate evaluation.
    pub candidates_admitted: u64,
    /// Distribution of admitted candidate-set sizes per event.
    pub candidate_hist: LogHistogram,
}

impl DiscriminationStats {
    /// Records one event's candidate-set sizes.
    #[inline]
    pub fn observe(&mut self, considered: u64, admitted: u64) {
        self.events += 1;
        self.candidates_considered += considered;
        self.candidates_admitted += admitted;
        self.candidate_hist.record(admitted);
    }

    /// Fraction of considered candidates pruned by the bands (0.0 when the
    /// index was never consulted).
    pub fn hit_ratio(&self) -> f64 {
        if self.candidates_considered == 0 {
            0.0
        } else {
            1.0 - self.candidates_admitted as f64 / self.candidates_considered as f64
        }
    }

    /// Mean admitted candidate-set size per event (0.0 without events).
    pub fn mean_candidates(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.candidates_admitted as f64 / self.events as f64
        }
    }

    /// Accumulates another shard's counters (sums; the histogram merges).
    pub fn merge(&mut self, other: &DiscriminationStats) {
        self.events += other.events;
        self.candidates_considered += other.candidates_considered;
        self.candidates_admitted += other.candidates_admitted;
        self.candidate_hist.merge(&other.candidate_hist);
    }
}

/// Counters collected during an execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Raw events injected at their origin nodes.
    pub events_injected: u64,
    /// Matches sent over a network edge (one count per remote target node,
    /// matching the cost model's once-per-node shipping, §4.4).
    pub messages_sent: u64,
    /// Encoded bytes of the network messages.
    pub bytes_sent: u64,
    /// Matches handed between tasks on the same node (zero network cost).
    pub local_deliveries: u64,
    /// Matches emitted at sink tasks.
    pub sink_matches: u64,
    /// Per-node count of processed inputs (events + matches).
    pub per_node_processed: Vec<u64>,
    /// Virtual-time latency per sink match: emission time minus the latest
    /// constituent event's timestamp (ticks). Kept exact for the paper's
    /// Fig. 8 summaries; [`Metrics::latency_hist`] carries the same values
    /// in fixed memory for telemetry export.
    pub latencies: Vec<Timestamp>,
    /// Fixed-memory streaming histogram over the same latencies (populated
    /// by [`Metrics::record_latency`]; bounded relative error instead of
    /// the unbounded exact vector).
    #[serde(default)]
    pub latency_hist: LogHistogram,
    /// Latency samples that could not be attributed to an injection
    /// timestamp and were dropped instead of being recorded as a bogus
    /// value — e.g. a sink match in a resumed run whose constituent events
    /// were injected before the restored snapshot. Loss of accounting is
    /// visible, never silent: `sink_matches` always equals recorded
    /// latency samples plus this counter.
    #[serde(default)]
    pub latency_samples_dropped: u64,
    /// Join-engine counters aggregated over all join tasks.
    pub join: JoinStats,
    /// Batched-transport counters (threaded executor only).
    #[serde(default)]
    pub transport: TransportStats,
    /// Crash-recovery counters (threaded executor fault layer only).
    #[serde(default)]
    pub recovery: RecoveryStats,
    /// Discrimination-index counters of the inject path.
    #[serde(default)]
    pub discrimination: DiscriminationStats,
}

impl Metrics {
    /// Creates metrics for a network of `n` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            per_node_processed: vec![0; num_nodes],
            ..Default::default()
        }
    }

    /// Records a processed input at a node.
    pub fn record_processed(&mut self, node: usize) {
        if node < self.per_node_processed.len() {
            self.per_node_processed[node] += 1;
        }
    }

    /// Records one sink-match latency into both the exact vector and the
    /// streaming histogram.
    pub fn record_latency(&mut self, latency: Timestamp) {
        self.latencies.push(latency);
        self.latency_hist.record(latency);
    }

    /// Merges another metrics object into this one (for per-thread
    /// collection).
    pub fn merge(&mut self, other: &Metrics) {
        self.events_injected += other.events_injected;
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.local_deliveries += other.local_deliveries;
        self.sink_matches += other.sink_matches;
        if self.per_node_processed.len() < other.per_node_processed.len() {
            self.per_node_processed
                .resize(other.per_node_processed.len(), 0);
        }
        for (i, v) in other.per_node_processed.iter().enumerate() {
            self.per_node_processed[i] += v;
        }
        self.latencies.extend_from_slice(&other.latencies);
        self.latency_hist.merge(&other.latency_hist);
        self.latency_samples_dropped += other.latency_samples_dropped;
        self.join.merge(&other.join);
        self.transport.merge(&other.transport);
        self.recovery.merge(&other.recovery);
        self.discrimination.merge(&other.discrimination);
    }

    /// The transmission ratio of this run against a centralized run in
    /// which every injected event crosses the network once.
    pub fn transmission_ratio(&self) -> f64 {
        if self.events_injected == 0 {
            return 0.0;
        }
        self.messages_sent as f64 / self.events_injected as f64
    }

    /// Latency percentile in ticks (p ∈ [0, 100]); `None` when no match was
    /// produced.
    pub fn latency_percentile(&self, p: f64) -> Option<Timestamp> {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        percentile_nearest_rank(&sorted, p / 100.0)
    }

    /// Five-number latency summary `(min, p25, p50, p75, max)` as reported
    /// in Fig. 8 of the paper. Sorts the latency vector once for all five
    /// percentiles, each picked by the shared
    /// [`percentile_nearest_rank`] rule.
    pub fn latency_summary(&self) -> Option<[Timestamp; 5]> {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        Some([
            percentile_nearest_rank(&sorted, 0.0)?,
            percentile_nearest_rank(&sorted, 0.25)?,
            percentile_nearest_rank(&sorted, 0.5)?,
            percentile_nearest_rank(&sorted, 0.75)?,
            percentile_nearest_rank(&sorted, 1.0)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics::new(2);
        a.events_injected = 10;
        a.messages_sent = 3;
        a.record_processed(0);
        let mut b = Metrics::new(2);
        b.events_injected = 5;
        b.messages_sent = 2;
        b.latencies.push(7);
        b.record_processed(1);
        a.merge(&b);
        assert_eq!(a.events_injected, 15);
        assert_eq!(a.messages_sent, 5);
        assert_eq!(a.per_node_processed, vec![1, 1]);
        assert_eq!(a.latencies, vec![7]);
    }

    #[test]
    fn transmission_ratio() {
        let mut m = Metrics::new(1);
        assert_eq!(m.transmission_ratio(), 0.0);
        m.events_injected = 100;
        m.messages_sent = 5;
        assert!((m.transmission_ratio() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn latency_percentiles() {
        let mut m = Metrics::new(1);
        assert_eq!(m.latency_percentile(50.0), None);
        m.latencies = vec![10, 30, 20, 40, 50];
        assert_eq!(m.latency_percentile(0.0), Some(10));
        assert_eq!(m.latency_percentile(50.0), Some(30));
        assert_eq!(m.latency_percentile(100.0), Some(50));
        assert_eq!(m.latency_summary(), Some([10, 20, 30, 40, 50]));
    }

    #[test]
    fn record_latency_feeds_vec_and_histogram() {
        let mut m = Metrics::new(1);
        for l in [10u64, 30, 20, 40, 50] {
            m.record_latency(l);
        }
        assert_eq!(m.latencies.len(), 5);
        assert_eq!(m.latency_hist.count(), 5);
        // p0/p100 of the histogram are exact; mid quantiles are within one
        // bucket of the exact sorted percentiles.
        let exact = m.latency_summary().unwrap();
        assert_eq!(m.latency_hist.quantile(0.0), Some(exact[0]));
        assert_eq!(m.latency_hist.quantile(1.0), Some(exact[4]));
        let p50 = m.latency_hist.quantile(0.5).unwrap() as f64;
        let bound = exact[2] as f64 * muse_telemetry::LogHistogram::max_relative_error() + 1.0;
        assert!((p50 - exact[2] as f64).abs() <= bound);
    }

    #[test]
    fn nearest_rank_helper_matches_definition() {
        assert_eq!(percentile_nearest_rank(&[], 0.5), None);
        let sorted = [10u64, 20, 30, 40, 50];
        // rank = round(q·(n−1)): q=0.5 → rank 2, q=0.3 → rank 1.2 → 1.
        assert_eq!(percentile_nearest_rank(&sorted, 0.0), Some(10));
        assert_eq!(percentile_nearest_rank(&sorted, 0.3), Some(20));
        assert_eq!(percentile_nearest_rank(&sorted, 0.5), Some(30));
        assert_eq!(percentile_nearest_rank(&sorted, 1.0), Some(50));
        // Out-of-range quantiles clamp rather than panic.
        assert_eq!(percentile_nearest_rank(&sorted, 2.0), Some(50));
        assert_eq!(percentile_nearest_rank(&sorted, -1.0), Some(10));
    }

    #[test]
    fn recovery_and_drop_counters_merge() {
        let mut a = Metrics::new(1);
        a.latency_samples_dropped = 2;
        a.recovery.crashes = 1;
        a.recovery.backoff_hist.record(100);
        let mut b = Metrics::new(1);
        b.latency_samples_dropped = 3;
        b.recovery.replayed_messages = 7;
        b.recovery.backoff_hist.record(200);
        a.merge(&b);
        assert_eq!(a.latency_samples_dropped, 5);
        assert_eq!(a.recovery.crashes, 1);
        assert_eq!(a.recovery.replayed_messages, 7);
        assert_eq!(a.recovery.backoff_hist.count(), 2);
    }

    #[test]
    fn merge_grows_node_vector() {
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(3);
        b.record_processed(2);
        a.merge(&b);
        assert_eq!(a.per_node_processed, vec![0, 0, 1]);
    }
}
