//! # muse-runtime
//!
//! A distributed CEP execution engine for MuSE graph evaluation plans —
//! the Rust counterpart of the paper's C#/Ambrosia query processor (§7.3).
//!
//! A [`deploy::Deployment`] turns a MuSE graph into per-node tasks (event
//! sources and partial-match joins) plus a routing table describing the
//! exchange of matches. Two executors run deployments:
//!
//! * [`sim`] — a deterministic discrete-event simulator with a virtual
//!   clock, used for correctness validation and transmission accounting;
//! * [`threaded`] — a thread-per-node executor on `crossbeam` channels for
//!   wall-clock latency and throughput measurements (Fig. 8).
//!
//! [`matcher`] implements the query semantics (skip-till-any-match, §2.2):
//! a centralized [`matcher::Evaluator`] doubles as the ground truth that
//! distributed runs are verified against. [`checkpoint`] provides
//! snapshot/restore of executor state — the stand-in for Ambrosia's virtual
//! resiliency; [`codec`] is the compact wire format used for transmission
//! byte accounting and snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod checkpoint;
pub mod codec;
pub mod deploy;
pub mod drift;
pub mod flight;
pub mod matcher;
pub mod metrics;
pub mod sim;
pub mod telemetry;
pub mod threaded;

pub use deploy::{Deployment, Route, TaskKind, TaskSpec};
pub use drift::{CostDrift, VertexDrift};
pub use flight::{decode_dump, render_timeline, FlightDump, FlightRecord, FlightRing};
pub use matcher::{Evaluator, JoinTask, Match};
pub use metrics::Metrics;
pub use sim::{run_simulation, SimConfig, SimExecutor, SimReport};
pub use telemetry::{RunTelemetry, TelemetrySpec};
pub use threaded::{run_threaded, ThreadedConfig, ThreadedReport};
