//! Thread-per-node execution of a deployment for wall-clock latency and
//! throughput measurements (the Fig. 8 experiment of the paper).
//!
//! Each network node runs as one OS thread owning its tasks; matches cross
//! nodes via `crossbeam` channels. Execution proceeds in *chunks* of
//! virtual time: within a chunk every node injects its local events as fast
//! as possible (interleaved with inbox draining), then all nodes run a
//! fixed number of barrier-synchronized drain rounds — one per possible
//! network hop — so every in-flight match is consumed before the next chunk
//! starts. With a store-eviction slack covering the chunk skew, the
//! produced match sets equal the deterministic simulator's for
//! negation-free queries (asserted in tests), while wall-clock throughput
//! and per-match latency reflect real parallel execution.

use crate::codec::encoded_len;
use crate::deploy::{Deployment, TaskKind};
use crate::matcher::{JoinTask, Match};
use crate::metrics::Metrics;
use crate::telemetry::{names, ClockDomain, ExecTelemetry, GaugeKind, RunTelemetry, TelemetrySpec};
use crossbeam::channel::{unbounded, Receiver, Sender};
use muse_core::event::{Event, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Configuration of the threaded executor.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Join store eviction slack (multiples of the window; must cover the
    /// inter-node skew of one chunk, ≥ 2 recommended).
    pub slack: f64,
    /// Virtual-time chunk length; defaults to the workload's largest
    /// window.
    pub chunk_ticks: Option<Timestamp>,
    /// Telemetry collection; each node thread keeps a private shard
    /// (registry, series, trace) that is merged when the threads join.
    pub telemetry: Option<TelemetrySpec>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        Self {
            slack: 4.0,
            chunk_ticks: None,
            telemetry: None,
        }
    }
}

/// The result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Sink matches per query.
    pub matches: Vec<Vec<Match>>,
    /// Aggregated metrics (virtual-time latencies unused; see
    /// `wall_latencies_ns`).
    pub metrics: Metrics,
    /// Total wall-clock execution time.
    pub wall_time: Duration,
    /// Injected events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock latency per sink match, in nanoseconds: emission minus
    /// injection of the match's newest constituent event.
    pub wall_latencies_ns: Vec<u64>,
    /// Shard-merged telemetry, when [`ThreadedConfig::telemetry`] was set.
    pub telemetry: Option<RunTelemetry>,
}

impl ThreadedReport {
    /// Five-number summary of wall-clock latencies in nanoseconds
    /// `(min, p25, p50, p75, max)`, as plotted in Fig. 8.
    pub fn latency_summary_ns(&self) -> Option<[u64; 5]> {
        if self.wall_latencies_ns.is_empty() {
            return None;
        }
        let mut sorted = self.wall_latencies_ns.clone();
        sorted.sort_unstable();
        let pick = |p: f64| sorted[((p * (sorted.len() - 1) as f64).round()) as usize];
        Some([pick(0.0), pick(0.25), pick(0.5), pick(0.75), pick(1.0)])
    }
}

/// A match in flight between nodes.
struct NodeMsg {
    target: usize,
    slot: usize,
    m: Match,
}

/// The maximum number of network hops on any task path — the number of
/// drain rounds needed to reach quiescence after all sends of a chunk.
fn remote_depth(deployment: &Deployment) -> usize {
    let n = deployment.tasks.len();
    let mut indeg = vec![0usize; n];
    for routes in &deployment.routes {
        for r in routes {
            indeg[r.target] += 1;
        }
    }
    let mut depth = vec![0usize; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    let mut max_depth = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        for r in &deployment.routes[i] {
            let d = depth[i] + usize::from(r.remote);
            if d > depth[r.target] {
                depth[r.target] = d;
                max_depth = max_depth.max(d);
            }
            indeg[r.target] -= 1;
            if indeg[r.target] == 0 {
                queue.push(r.target);
            }
        }
    }
    max_depth
}

/// Runs a deployment with one thread per network node.
pub fn run_threaded(
    deployment: &Deployment,
    events: &[Event],
    config: &ThreadedConfig,
) -> ThreadedReport {
    let num_nodes = deployment.num_nodes.max(1);
    let chunk = config
        .chunk_ticks
        .unwrap_or_else(|| {
            deployment
                .queries
                .iter()
                .map(|q| q.window())
                .max()
                .unwrap_or(1)
        })
        .max(1);
    let t_end = events.iter().map(|e| e.time).max().unwrap_or(0) + 1;
    let num_chunks = t_end.div_ceil(chunk).max(1);
    let rounds_per_chunk = remote_depth(deployment) + 1;

    // Per-node local event slices (trace order preserved).
    let mut per_node: Vec<Vec<Event>> = vec![Vec::new(); num_nodes];
    for e in events {
        if e.origin.index() < num_nodes {
            per_node[e.origin.index()].push(e.clone());
        }
    }

    // Channels, barriers, shared injection timestamps.
    let mut senders: Vec<Sender<NodeMsg>> = Vec::with_capacity(num_nodes);
    let mut receivers: Vec<Option<Receiver<NodeMsg>>> = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(Some(r));
    }
    let barrier = Arc::new(Barrier::new(num_nodes));
    let max_seq = events.iter().map(|e| e.seq).max().unwrap_or(0) as usize;
    let inject_ns: Arc<Vec<AtomicU64>> =
        Arc::new((0..=max_seq).map(|_| AtomicU64::new(0)).collect());
    let start = Instant::now();

    let report_parts: Vec<NodeOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_nodes);
        for node in 0..num_nodes {
            let local_events = std::mem::take(&mut per_node[node]);
            let receiver = receivers[node].take().expect("receiver unused");
            let senders = senders.clone();
            let barrier = Arc::clone(&barrier);
            let inject_ns = Arc::clone(&inject_ns);
            let config = config.clone();
            handles.push(scope.spawn(move || {
                run_node(
                    deployment,
                    node,
                    local_events,
                    receiver,
                    senders,
                    barrier,
                    inject_ns,
                    start,
                    chunk,
                    num_chunks,
                    rounds_per_chunk,
                    config,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread"))
            .collect()
    });

    let wall_time = start.elapsed();
    let mut metrics = Metrics::new(num_nodes);
    let mut matches = vec![Vec::new(); deployment.queries.len()];
    let mut wall_latencies_ns = Vec::new();
    let mut telemetry = config
        .telemetry
        .as_ref()
        .map(|spec| RunTelemetry::new(ClockDomain::WallNanos, spec));
    for part in report_parts {
        metrics.merge(&part.metrics);
        for (q, ms) in part.matches.into_iter().enumerate() {
            matches[q].extend(ms);
        }
        wall_latencies_ns.extend(part.wall_latencies_ns);
        if let (Some(merged), Some(shard)) = (&mut telemetry, part.telemetry) {
            merged.registry.merge(&shard.registry);
            merged.series.absorb(shard.series);
            merged.trace.absorb(shard.trace);
            merged.tasks.extend(shard.tasks);
        }
    }
    if let Some(merged) = &mut telemetry {
        merged.series.sort_by_time();
        merged.tasks.sort_by_key(|s| s.task);
        let g = merged.registry.gauge(names::RUN_WALL_NS, GaugeKind::Max);
        merged.registry.gauge_peak(g, wall_time.as_nanos() as u64);
    }
    let events_per_sec = if wall_time.as_secs_f64() > 0.0 {
        events.len() as f64 / wall_time.as_secs_f64()
    } else {
        0.0
    };
    ThreadedReport {
        matches,
        metrics,
        wall_time,
        events_per_sec,
        wall_latencies_ns,
        telemetry,
    }
}

struct NodeOutcome {
    metrics: Metrics,
    matches: Vec<Vec<Match>>,
    wall_latencies_ns: Vec<u64>,
    telemetry: Option<RunTelemetry>,
}

struct NodeRunner<'a> {
    deployment: &'a Deployment,
    node: usize,
    joins: Vec<Option<JoinTask>>,
    senders: Vec<Sender<NodeMsg>>,
    inject_ns: Arc<Vec<AtomicU64>>,
    start: Instant,
    metrics: Metrics,
    matches: Vec<Vec<Match>>,
    wall_latencies_ns: Vec<u64>,
    /// Sender-side transmission multiplexing (see the simulator's `sent`).
    sent: std::collections::HashSet<(u64, usize, u64)>,
    /// This node's private telemetry shard.
    telemetry: Option<ExecTelemetry>,
    /// Newest event timestamp seen by any local join (the node-local
    /// watermark behind the series' lag column).
    max_seen: Timestamp,
}

#[allow(clippy::too_many_arguments)]
fn run_node(
    deployment: &Deployment,
    node: usize,
    local_events: Vec<Event>,
    receiver: Receiver<NodeMsg>,
    senders: Vec<Sender<NodeMsg>>,
    barrier: Arc<Barrier>,
    inject_ns: Arc<Vec<AtomicU64>>,
    start: Instant,
    chunk: Timestamp,
    num_chunks: u64,
    rounds_per_chunk: usize,
    config: ThreadedConfig,
) -> NodeOutcome {
    let joins: Vec<Option<JoinTask>> = (0..deployment.tasks.len())
        .map(|i| {
            if deployment.tasks[i].node.index() == node {
                deployment.make_join(i, config.slack)
            } else {
                None
            }
        })
        .collect();
    let telemetry = config
        .telemetry
        .as_ref()
        .map(|spec| ExecTelemetry::new(ClockDomain::WallNanos, spec, deployment.tasks.len()));
    let mut runner = NodeRunner {
        deployment,
        node,
        joins,
        senders,
        inject_ns,
        start,
        metrics: Metrics::new(deployment.num_nodes),
        matches: vec![Vec::new(); deployment.queries.len()],
        wall_latencies_ns: Vec::new(),
        sent: Default::default(),
        telemetry,
        max_seen: 0,
    };

    let mut next = 0usize;
    for chunk_idx in 0..num_chunks {
        let bound = (chunk_idx + 1) * chunk;
        while next < local_events.len() && local_events[next].time < bound {
            runner.drain(&receiver);
            runner.inject(&local_events[next]);
            runner.maybe_sample();
            next += 1;
        }
        // Quiescence: one barrier-synchronized drain round per possible
        // network hop.
        for _ in 0..rounds_per_chunk {
            barrier.wait();
            runner.drain(&receiver);
            runner.maybe_sample();
        }
        barrier.wait();
    }
    // Fold this node's join-engine counters into its metrics share.
    for join in runner.joins.iter().flatten() {
        runner.metrics.join.merge(join.stats());
    }
    // Final sample at shutdown, then seal this node's shard with its local
    // task summaries.
    runner.sample(runner.start.elapsed().as_nanos() as u64);
    let telemetry = runner.telemetry.take().map(|tel| {
        let local =
            (0..deployment.tasks.len()).filter(|&i| deployment.tasks[i].node.index() == node);
        let tasks =
            crate::telemetry::task_summaries(deployment, local, |i| runner.joins[i].as_ref());
        tel.finish(&runner.metrics, tasks)
    });
    NodeOutcome {
        metrics: runner.metrics,
        matches: runner.matches,
        wall_latencies_ns: runner.wall_latencies_ns,
        telemetry,
    }
}

impl NodeRunner<'_> {
    fn drain(&mut self, receiver: &Receiver<NodeMsg>) {
        while let Ok(msg) = receiver.try_recv() {
            self.handle(msg.target, msg.slot, msg.m);
        }
    }

    /// Samples the series shard when the wall-clock cadence has elapsed.
    fn maybe_sample(&mut self) {
        let now = self.start.elapsed().as_nanos() as u64;
        if self
            .telemetry
            .as_ref()
            .is_some_and(|tel| tel.sample_due(now))
        {
            self.sample(now);
        }
    }

    /// Emits one series record per local join task. Queue depth is the
    /// number of deliveries the task consumed since the previous sample
    /// (crossbeam receivers expose no length), and watermark lag is
    /// measured against this node's newest-seen event timestamp.
    fn sample(&mut self, now: u64) {
        let Some(tel) = self.telemetry.as_mut() else {
            return;
        };
        for (i, join) in self.joins.iter().enumerate() {
            let Some(join) = join else { continue };
            let stats = join.stats();
            let queue_depth = tel.drained_since(i);
            tel.record_task_sample(
                now,
                i,
                self.node,
                self.deployment.task_label(i),
                queue_depth,
                join.buffered() as u64,
                self.max_seen.saturating_sub(join.last_seen()),
                [stats.inputs, stats.probes, stats.evicted, stats.emitted],
            );
        }
        tel.end_sample(now);
    }

    fn inject(&mut self, event: &Event) {
        let sources: Vec<usize> = self.deployment.sources_for(event.origin, event.ty).to_vec();
        if sources.is_empty() {
            return;
        }
        self.metrics.events_injected += 1;
        self.metrics.record_processed(self.node);
        let now = self.start.elapsed().as_nanos() as u64;
        if (event.seq as usize) < self.inject_ns.len() {
            self.inject_ns[event.seq as usize].store(now, Ordering::Release);
        }
        if let Some(tel) = self.telemetry.as_mut() {
            tel.on_inject(now, self.node, sources[0], event);
        }
        for task in sources {
            let TaskKind::Source {
                prim, predicates, ..
            } = &self.deployment.tasks[task].kind
            else {
                unreachable!("sources_for returns source tasks");
            };
            let query = &self.deployment.queries[self.deployment.tasks[task].query_idx];
            let passes = predicates.iter().all(|&pi| {
                query.predicates()[pi].evaluate(|p| (p == *prim).then_some(event)) == Some(true)
            });
            if passes {
                let m = Match::single(*prim, event.clone());
                self.route(task, vec![m]);
            }
        }
    }

    fn handle(&mut self, task: usize, slot: usize, m: Match) {
        self.metrics.record_processed(self.node);
        self.max_seen = self.max_seen.max(m.last_time());
        if let Some(tel) = self.telemetry.as_mut() {
            tel.on_delivery(task);
        }
        let outs = self.joins[task]
            .as_mut()
            .expect("deliveries target local joins")
            .on_match(slot, m);
        if outs.is_empty() {
            return;
        }
        let spec = &self.deployment.tasks[task];
        if spec.is_sink {
            let now = self.start.elapsed().as_nanos() as u64;
            for m in &outs {
                self.metrics.sink_matches += 1;
                let newest = m
                    .entries()
                    .iter()
                    .map(|(_, e)| e)
                    .max_by(|a, b| a.trace_cmp(b))
                    .expect("non-empty match");
                let injected = self
                    .inject_ns
                    .get(newest.seq as usize)
                    .map(|a| a.load(Ordering::Acquire))
                    .unwrap_or(0);
                let latency = now.saturating_sub(injected);
                self.wall_latencies_ns.push(latency);
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.on_sink(now, self.node, task, m.len(), m.last_time(), latency);
                }
                self.matches[spec.query_idx].push(m.clone());
            }
        } else if self.telemetry.is_some() {
            let now = self.start.elapsed().as_nanos() as u64;
            for m in &outs {
                let span = m.last_time().saturating_sub(m.first_time());
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.on_merge(now, self.node, task, m.len(), span);
                }
            }
        }
        self.route(task, outs);
    }

    fn route(&mut self, task: usize, outs: Vec<Match>) {
        let routes = &self.deployment.routes[task];
        if routes.is_empty() {
            return;
        }
        for m in outs {
            let mut remote_nodes: Vec<usize> = routes
                .iter()
                .filter(|r| r.remote)
                .map(|r| self.deployment.tasks[r.target].node.index())
                .collect();
            remote_nodes.sort_unstable();
            remote_nodes.dedup();
            if !remote_nodes.is_empty() {
                let bytes = encoded_len(&m) as u64;
                let sig = self.deployment.tasks[task].stream_sig;
                let mhash = crate::sim::match_hash_for_mux(&m);
                for &n in &remote_nodes {
                    if self.sent.insert((sig, n, mhash)) {
                        self.metrics.messages_sent += 1;
                        self.metrics.bytes_sent += bytes;
                        if let Some(tel) = self.telemetry.as_mut() {
                            let now = self.start.elapsed().as_nanos() as u64;
                            tel.on_ship(now, self.node, n, task, bytes);
                        }
                    }
                }
            }
            // Clone per route; local routes recurse inline.
            let routes: Vec<crate::deploy::Route> = routes.clone();
            for r in routes {
                if r.remote {
                    let target_node = self.deployment.tasks[r.target].node.index();
                    self.senders[target_node]
                        .send(NodeMsg {
                            target: r.target,
                            slot: r.slot,
                            m: m.clone(),
                        })
                        .expect("receiver alive during execution");
                } else {
                    self.metrics.local_deliveries += 1;
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.on_local();
                    }
                    self.handle(r.target, r.slot, m.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_simulation, SimConfig};
    use muse_core::algorithms::amuse::{amuse, AMuseConfig};
    use muse_core::graph::PlanContext;
    use muse_core::network::{Network, NetworkBuilder};
    use muse_core::query::{Pattern, Query};
    use muse_core::types::{EventTypeId, NodeId, QueryId};
    use std::collections::BTreeSet;

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn network() -> Network {
        NetworkBuilder::new(3, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .rate(t(0), 20.0)
            .rate(t(1), 20.0)
            .rate(t(2), 1.0)
            .build()
    }

    fn query() -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            5_000,
        )
        .unwrap()
    }

    fn fingerprints(ms: &[Match]) -> BTreeSet<Vec<u64>> {
        ms.iter().map(Match::fingerprint).collect()
    }

    #[test]
    fn threaded_matches_equal_simulator() {
        let net = network();
        let q = query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let events = muse_sim::traces::generate_traces(
            &net,
            &muse_sim::traces::TraceConfig {
                duration: 40.0,
                ticks_per_unit: 100.0,
                rate_scale: 0.05,
                key_domain: 0,
                seed: 23,
            },
        );
        let sim = run_simulation(&deployment, &events, &SimConfig::default());
        let threaded = run_threaded(&deployment, &events, &ThreadedConfig::default());
        assert_eq!(
            fingerprints(&threaded.matches[0]),
            fingerprints(&sim.matches[0]),
            "threaded {} vs sim {}",
            threaded.matches[0].len(),
            sim.matches[0].len()
        );
        // Same network transmissions.
        assert_eq!(threaded.metrics.messages_sent, sim.metrics.messages_sent);
        assert!(threaded.events_per_sec > 0.0);
        assert_eq!(threaded.wall_latencies_ns.len(), threaded.matches[0].len());
    }

    #[test]
    fn telemetry_counters_agree_across_executors() {
        let net = network();
        let q = query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let events = muse_sim::traces::generate_traces(
            &net,
            &muse_sim::traces::TraceConfig {
                duration: 40.0,
                ticks_per_unit: 100.0,
                rate_scale: 0.05,
                key_domain: 0,
                seed: 23,
            },
        );
        let sim = run_simulation(
            &deployment,
            &events,
            &SimConfig {
                telemetry: Some(TelemetrySpec::default()),
                ..SimConfig::default()
            },
        );
        let threaded = run_threaded(
            &deployment,
            &events,
            &ThreadedConfig {
                telemetry: Some(TelemetrySpec::default()),
                ..ThreadedConfig::default()
            },
        );
        // The executors must agree on the run's aggregate metrics …
        assert_eq!(threaded.metrics.sink_matches, sim.metrics.sink_matches);
        assert_eq!(threaded.metrics.messages_sent, sim.metrics.messages_sent);
        assert_eq!(threaded.metrics.join.emitted, sim.metrics.join.emitted);
        assert!(
            sim.metrics.sink_matches > 0,
            "workload must produce matches"
        );
        // … and their telemetry registries must carry the same counters.
        let s = sim.telemetry.expect("sim telemetry");
        let t = threaded.telemetry.expect("threaded telemetry");
        for name in [
            names::EVENTS_INJECTED,
            names::MESSAGES_SENT,
            names::BYTES_SENT,
            names::SINK_MATCHES,
            names::JOIN_INPUTS,
            names::JOIN_EMITTED,
        ] {
            assert_eq!(
                s.registry.counter_value(name),
                t.registry.counter_value(name),
                "counter {name} diverges between executors"
            );
        }
        // Task summaries cover the same join tasks (threaded shards each
        // contribute their local slice; merged and sorted by task id).
        let s_tasks: Vec<usize> = s.tasks.iter().map(|x| x.task).collect();
        let t_tasks: Vec<usize> = t.tasks.iter().map(|x| x.task).collect();
        assert_eq!(s_tasks, t_tasks);
        assert!(!s.series.is_empty(), "sim series sampled");
        assert!(!s.trace.is_empty(), "sim trace recorded");
    }

    #[test]
    fn latency_summary_shape() {
        let report = ThreadedReport {
            matches: vec![],
            metrics: Metrics::new(1),
            wall_time: Duration::from_millis(1),
            events_per_sec: 0.0,
            wall_latencies_ns: vec![50, 10, 30, 20, 40],
            telemetry: None,
        };
        assert_eq!(report.latency_summary_ns(), Some([10, 20, 30, 40, 50]));
        let empty = ThreadedReport {
            wall_latencies_ns: vec![],
            ..report
        };
        assert_eq!(empty.latency_summary_ns(), None);
    }

    #[test]
    fn remote_depth_counts_network_hops() {
        let net = network();
        let q = query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let d = remote_depth(&deployment);
        assert!(d >= 1, "plan must have at least one network hop");
        assert!(d <= deployment.tasks.len());
    }

    #[test]
    fn empty_trace_completes() {
        let net = network();
        let q = query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let report = run_threaded(&deployment, &[], &ThreadedConfig::default());
        assert_eq!(report.metrics.events_injected, 0);
        assert!(report.matches[0].is_empty());
    }
}
