//! Thread-per-node execution of a deployment for wall-clock latency and
//! throughput measurements (the Fig. 8 experiment of the paper).
//!
//! Each network node runs as one OS thread owning its tasks; matches cross
//! nodes in batched [`Frame`]s over bounded `crossbeam` channels. Execution
//! proceeds in *chunks* of virtual time: within a chunk every node injects
//! its local events as fast as possible (interleaved with inbox draining),
//! then all nodes run a fixed number of barrier-synchronized drain rounds —
//! one per possible network hop — so every in-flight match is consumed
//! before the next chunk starts. With a store-eviction slack covering the
//! chunk skew, the produced match sets equal the deterministic simulator's
//! (asserted in tests), while wall-clock throughput and per-match latency
//! reflect real parallel execution.
//!
//! # Data plane
//!
//! The transport ([`TransportMode::Batched`], the default) keeps one output
//! buffer per destination node and flushes it as a multi-message frame when
//! it reaches the batch threshold, and at chunk and drain-round boundaries.
//! Receivers hand emptied frame buffers back to their origin node over an
//! unbounded return channel, so the steady-state send path recycles buffers
//! instead of allocating. Data channels are bounded: a full channel rejects
//! the `try_send`, and the blocked sender *steals from its own inbox*
//! (ingesting frames into a local backlog without processing them) before
//! retrying — senders under backpressure convert stalls into useful work,
//! which also breaks send cycles between mutually-full nodes. The same
//! steal runs while spinning at the drain barrier, so a node waiting for a
//! round cannot deadlock senders that are still flushing into it.
//! Backpressure is observable, not silent: blocked sends, in-flight queue
//! depth, and the realized batch-size distribution are recorded in
//! [`crate::metrics::TransportStats`].
//!
//! # Negation
//!
//! Nodes process a chunk's events in parallel, so a negation guard may
//! arrive *after* the match it should suppress — the simulator, processing
//! in global timestamp order, never observes that race. Negation-hosting
//! joins therefore defer completed candidates and re-check absence at chunk
//! quiescence ([`crate::matcher::JoinTask::release_deferred`]), when every
//! guard timestamped inside the chunk has been delivered. Chains of
//! negation joins release level by level: each chunk runs one extra
//! release-and-drain phase per level ([`negation_release_phases`]).

use crate::checkpoint::{self, CheckpointError, Snapshot};
use crate::codec::encoded_len;
use crate::deploy::{Deployment, TaskKind};
use crate::flight::{FlightRecord, FlightRing};
use crate::matcher::{JoinTask, Match};
use crate::metrics::{Metrics, RecoveryStats};
use crate::telemetry::{names, ClockDomain, ExecTelemetry, GaugeKind, RunTelemetry, TelemetrySpec};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use muse_core::event::{Event, Timestamp};
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Inter-node transport flavor of the threaded executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Per-destination output buffers flushed as multi-message frames over
    /// bounded channels, with a frame-recycling return path and
    /// inbox-stealing backpressure. The default.
    Batched {
        /// Messages per frame before an eager flush (frames also flush at
        /// chunk and drain-round boundaries, so they may be smaller).
        batch: usize,
        /// Bound of each node's data channel, in frames.
        capacity: usize,
    },
    /// One heap-allocated single-message frame per match over unbounded
    /// channels — the pre-batching data plane, kept as the measured
    /// baseline of the `executor` benchmark.
    Naive,
}

impl Default for TransportMode {
    fn default() -> Self {
        Self::Batched {
            batch: 64,
            capacity: 128,
        }
    }
}

/// Deterministic fault-injection plan: crash one node mid-run and recover
/// it from its last chunk-boundary checkpoint (the executor's stand-in
/// for the paper's §7.3 Ambrosia resiliency setup).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The node to crash.
    pub node: usize,
    /// The crash fires just before the node injects its `crash_at`-th
    /// local event (0-based count over the whole run). A count beyond the
    /// node's share of the trace means the fault never fires.
    pub crash_at: u64,
    /// Simulated downtime between the crash and the start of recovery.
    pub restart_delay: Duration,
}

/// Configuration of the threaded executor.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Join store eviction slack (multiples of the window; must cover the
    /// inter-node skew of one chunk, ≥ 2 recommended; deferred-negation
    /// release additionally needs `slack · window ≥ chunk + window`, which
    /// the defaults satisfy).
    pub slack: f64,
    /// Virtual-time chunk length; defaults to the workload's largest
    /// window.
    pub chunk_ticks: Option<Timestamp>,
    /// Inter-node transport flavor.
    pub transport: TransportMode,
    /// Telemetry collection; each node thread keeps a private shard
    /// (registry, series, trace) that is merged when the threads join.
    pub telemetry: Option<TelemetrySpec>,
    /// Take a per-node state snapshot at every chunk boundary and assemble
    /// the merged end-of-run state into [`ThreadedReport::final_snapshot`].
    /// Forced on by a fault plan (recovery restores from these shards).
    pub checkpoint: bool,
    /// Crash-and-recover one node mid-run (see [`FaultPlan`]).
    pub fault: Option<FaultPlan>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        Self {
            slack: 4.0,
            chunk_ticks: None,
            transport: TransportMode::default(),
            telemetry: None,
            checkpoint: false,
            fault: None,
        }
    }
}

/// The result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Sink matches per query.
    pub matches: Vec<Vec<Match>>,
    /// Aggregated metrics (virtual-time latencies unused; see
    /// `wall_latencies_ns`).
    pub metrics: Metrics,
    /// Total wall-clock execution time.
    pub wall_time: Duration,
    /// Injected events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock latency per sink match, in nanoseconds: emission minus
    /// injection of the match's newest constituent event. Matches whose
    /// newest event was injected in an earlier (resumed-from) run have no
    /// injection record and are counted in
    /// `metrics.latency_samples_dropped` instead of being recorded with a
    /// bogus baseline.
    pub wall_latencies_ns: Vec<u64>,
    /// Shard-merged telemetry, when [`ThreadedConfig::telemetry`] was set.
    pub telemetry: Option<RunTelemetry>,
    /// Encoded end-of-run state (all shards merged), when
    /// [`ThreadedConfig::checkpoint`] was set. Restorable by either
    /// executor via [`crate::checkpoint`].
    pub final_snapshot: Option<Vec<u8>>,
    /// Encoded flight-recorder dumps published by crashed shards (one per
    /// crash; empty unless a [`FaultPlan`] fired). Decode with
    /// [`crate::flight::decode_dump`] and pretty-print with
    /// [`crate::flight::render_timeline`].
    pub flight_dumps: Vec<Vec<u8>>,
}

impl ThreadedReport {
    /// Five-number summary of wall-clock latencies in nanoseconds
    /// `(min, p25, p50, p75, max)`, as plotted in Fig. 8. Quantiles use
    /// the shared nearest-rank rule
    /// ([`crate::metrics::percentile_nearest_rank`]), so summaries agree
    /// with `Metrics::latency_percentile` on identical samples.
    pub fn latency_summary_ns(&self) -> Option<[u64; 5]> {
        let mut sorted = self.wall_latencies_ns.clone();
        sorted.sort_unstable();
        let pick = |q: f64| crate::metrics::percentile_nearest_rank(&sorted, q);
        Some([pick(0.0)?, pick(0.25)?, pick(0.5)?, pick(0.75)?, pick(1.0)?])
    }
}

/// A match in flight between nodes.
struct NodeMsg {
    target: usize,
    slot: usize,
    m: Match,
}

/// A batch of messages on an inter-node channel. `origin` addresses the
/// return path: the receiver hands the emptied `msgs` buffer back to the
/// origin node's recycling pool.
struct Frame {
    origin: usize,
    msgs: Vec<NodeMsg>,
}

/// A sense-reversing spin barrier whose waiters run an `idle` closure each
/// spin iteration. The threaded executor's waiters steal frames from their
/// own inbox (ingest without processing) so a node parked at a round
/// boundary keeps consuming — a plain [`std::sync::Barrier`] would let a
/// bounded-channel sender and a parked receiver deadlock each other.
///
/// Correctness: the last arriver resets `arrived` (Release) and then bumps
/// `generation` (Release); a waiter leaves on an Acquire load of the new
/// generation, which happens-after the reset, so its `fetch_add` for the
/// next round observes the zeroed count.
struct DrainBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
}

impl DrainBarrier {
    fn new(n: usize) -> Self {
        Self {
            n: n.max(1),
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    fn wait(&self, mut idle: impl FnMut()) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == generation {
                idle();
            }
        }
    }
}

/// The maximum number of network hops on any task path — the number of
/// drain rounds needed to reach quiescence after all sends of a chunk.
fn remote_depth(deployment: &Deployment) -> usize {
    let n = deployment.tasks.len();
    let mut indeg = vec![0usize; n];
    for routes in &deployment.routes {
        for r in routes {
            indeg[r.target] += 1;
        }
    }
    let mut depth = vec![0usize; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    let mut max_depth = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        for r in &deployment.routes[i] {
            let d = depth[i] + usize::from(r.remote);
            if d > depth[r.target] {
                depth[r.target] = d;
                max_depth = max_depth.max(d);
            }
            indeg[r.target] -= 1;
            if indeg[r.target] == 0 {
                queue.push(r.target);
            }
        }
    }
    max_depth
}

/// The longest chain of negation-hosting joins on any task path — the
/// number of extra release-and-drain phases each chunk needs so deferred
/// candidates released by one negation level reach (and are re-checked by)
/// the next.
fn negation_release_phases(deployment: &Deployment, slack: f64) -> usize {
    let n = deployment.tasks.len();
    let neg: Vec<bool> = (0..n)
        .map(|i| {
            deployment
                .make_join(i, slack)
                .is_some_and(|j| j.has_negations())
        })
        .collect();
    let mut indeg = vec![0usize; n];
    for routes in &deployment.routes {
        for r in routes {
            indeg[r.target] += 1;
        }
    }
    let mut count = vec![0usize; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    for &i in &queue {
        count[i] = usize::from(neg[i]);
    }
    let mut head = 0;
    let mut max_count = count.iter().copied().max().unwrap_or(0);
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        for r in &deployment.routes[i] {
            let c = count[i] + usize::from(neg[r.target]);
            if c > count[r.target] {
                count[r.target] = c;
                max_count = max_count.max(c);
            }
            indeg[r.target] -= 1;
            if indeg[r.target] == 0 {
                queue.push(r.target);
            }
        }
    }
    max_count
}

/// Crash-recovery coordination shared by the node threads in checkpoint
/// or fault mode.
struct ResilienceShared {
    /// Last chunk-boundary snapshot of each node, encoded (the "durable
    /// storage" a crashed node recovers from).
    shards: Vec<Mutex<Vec<u8>>>,
    /// `chunk index + 1` of the injected crash; 0 while no crash has
    /// happened. Written by the crashing node before it reaches the
    /// crash-coordination barrier, so every node reads a consistent value
    /// right after it.
    crashed_chunk: AtomicU64,
    /// Encoded flight-recorder dump of each node, published by the crash
    /// path alongside the recovery snapshot (empty while no crash).
    flight_dumps: Vec<Mutex<Vec<u8>>>,
}

/// Flight-recorder records retained per shard in resilient mode.
const FLIGHT_CAPACITY: usize = 256;

/// Runs a deployment with one thread per network node.
pub fn run_threaded(
    deployment: &Deployment,
    events: &[Event],
    config: &ThreadedConfig,
) -> ThreadedReport {
    run_threaded_inner(deployment, events, config, None)
}

/// Resumes a threaded run from a snapshot (produced by either executor —
/// a [`ThreadedReport::final_snapshot`] or a simulator checkpoint).
///
/// `events` is the remainder of the trace: the part the snapshotted run
/// had not yet consumed. The snapshot must be quiescent (no in-flight
/// deliveries — true of every snapshot the executors produce at event or
/// chunk boundaries); otherwise [`CheckpointError::NotQuiescent`] is
/// returned.
pub fn run_threaded_resumed(
    deployment: &Deployment,
    events: &[Event],
    config: &ThreadedConfig,
    snapshot: &[u8],
) -> Result<ThreadedReport, CheckpointError> {
    let snap = checkpoint::decode_for(deployment, snapshot)?;
    if !snap.pending.is_empty() {
        return Err(CheckpointError::NotQuiescent);
    }
    // Validate the graft once up front so the node threads cannot fail:
    // every join task must accept its saved state.
    for (i, saved) in snap.tasks.iter().enumerate() {
        let mut join = deployment.make_join(i, config.slack);
        checkpoint::restore_task(deployment, i, saved.clone(), &mut join, |j, s| {
            j.restore_state(s)
        })?;
    }
    Ok(run_threaded_inner(deployment, events, config, Some(&snap)))
}

fn run_threaded_inner(
    deployment: &Deployment,
    events: &[Event],
    config: &ThreadedConfig,
    resume: Option<&Snapshot>,
) -> ThreadedReport {
    let num_nodes = deployment.num_nodes.max(1);
    let chunk = config
        .chunk_ticks
        .unwrap_or_else(|| {
            deployment
                .queries
                .iter()
                .map(|q| q.window())
                .max()
                .unwrap_or(1)
        })
        .max(1);
    let t_end = events.iter().map(|e| e.time).max().unwrap_or(0) + 1;
    let num_chunks = t_end.div_ceil(chunk).max(1);
    let rounds_per_chunk = remote_depth(deployment) + 1;
    let release_phases = negation_release_phases(deployment, config.slack);

    // One flat, origin-partitioned copy of the trace shared by all node
    // threads; each thread reads its own contiguous range. (The former
    // implementation cloned every event into per-node vectors — double
    // buffering of the whole trace before the run even started.) The sort
    // is stable, so trace order is preserved within each node; events from
    // origins outside the network are excluded, as before.
    let flat: Arc<[Event]> = {
        let mut sorted: Vec<Event> = events
            .iter()
            .filter(|e| e.origin.index() < num_nodes)
            .cloned()
            .collect();
        sorted.sort_by_key(|e| e.origin.index());
        sorted.into()
    };
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(num_nodes);
    let mut begin = 0usize;
    for node in 0..num_nodes {
        let mut end = begin;
        while end < flat.len() && flat[end].origin.index() == node {
            end += 1;
        }
        ranges.push(begin..end);
        begin = end;
    }

    // Data channels (bounded under the batched transport), buffer return
    // channels, in-flight depth gauges, and the drain barrier.
    let mut senders: Vec<Sender<Frame>> = Vec::with_capacity(num_nodes);
    let mut receivers: Vec<Option<Receiver<Frame>>> = Vec::with_capacity(num_nodes);
    let mut ret_senders: Vec<Sender<Vec<NodeMsg>>> = Vec::with_capacity(num_nodes);
    let mut ret_receivers: Vec<Option<Receiver<Vec<NodeMsg>>>> = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let (s, r) = match config.transport {
            TransportMode::Batched { capacity, .. } => bounded(capacity.max(1)),
            TransportMode::Naive => unbounded(),
        };
        senders.push(s);
        receivers.push(Some(r));
        let (rs, rr) = unbounded();
        ret_senders.push(rs);
        ret_receivers.push(Some(rr));
    }
    let depth: Arc<Vec<AtomicU64>> = Arc::new((0..num_nodes).map(|_| AtomicU64::new(0)).collect());
    let barrier = Arc::new(DrainBarrier::new(num_nodes));
    let max_seq = events.iter().map(|e| e.seq).max().unwrap_or(0) as usize;
    let inject_ns: Arc<Vec<AtomicU64>> =
        Arc::new((0..=max_seq).map(|_| AtomicU64::new(0)).collect());
    let resilient = config.checkpoint || config.fault.is_some();
    let shared: Option<Arc<ResilienceShared>> = resilient.then(|| {
        Arc::new(ResilienceShared {
            shards: (0..num_nodes).map(|_| Mutex::new(Vec::new())).collect(),
            crashed_chunk: AtomicU64::new(0),
            flight_dumps: (0..num_nodes).map(|_| Mutex::new(Vec::new())).collect(),
        })
    });
    let start = Instant::now();

    let report_parts: Vec<NodeOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_nodes);
        for node in 0..num_nodes {
            let channels = NodeChannels {
                inbox: receivers[node].take().expect("receiver unused"),
                ret_inbox: ret_receivers[node].take().expect("return receiver unused"),
                senders: senders.clone(),
                ret_senders: ret_senders.clone(),
                depth: Arc::clone(&depth),
                barrier: Arc::clone(&barrier),
            };
            let events = Arc::clone(&flat);
            let range = ranges[node].clone();
            let inject_ns = Arc::clone(&inject_ns);
            let config = config.clone();
            let shared = shared.clone();
            let schedule = ChunkSchedule {
                chunk,
                num_chunks,
                rounds_per_chunk,
                release_phases,
            };
            handles.push(scope.spawn(move || {
                run_node(
                    deployment, node, events, range, channels, inject_ns, start, schedule, config,
                    shared, resume,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread"))
            .collect()
    });

    let wall_time = start.elapsed();
    let mut metrics = Metrics::new(num_nodes);
    let mut matches = vec![Vec::new(); deployment.queries.len()];
    let mut wall_latencies_ns = Vec::new();
    let mut telemetry = config
        .telemetry
        .as_ref()
        .map(|spec| RunTelemetry::new(ClockDomain::WallNanos, spec));
    let mut final_state = config.checkpoint.then(|| Snapshot::empty(deployment));
    for part in report_parts {
        metrics.merge(&part.metrics);
        for (q, ms) in part.matches.into_iter().enumerate() {
            matches[q].extend(ms);
        }
        wall_latencies_ns.extend(part.wall_latencies_ns);
        if let (Some(merged), Some(shard)) = (&mut final_state, part.shard) {
            merged.merge_shard(shard);
        }
        if let (Some(merged), Some(shard)) = (&mut telemetry, part.telemetry) {
            merged.registry.merge(&shard.registry);
            merged.series.absorb(shard.series);
            merged.trace.absorb(shard.trace);
            merged.provenance.absorb(shard.provenance);
            merged.rates.merge(&shard.rates);
            merged.tasks.extend(shard.tasks);
        }
    }
    let flight_dumps: Vec<Vec<u8>> = shared
        .as_ref()
        .map(|s| {
            s.flight_dumps
                .iter()
                .map(|d| std::mem::take(&mut *d.lock().expect("flight dump lock")))
                .filter(|d| !d.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let final_snapshot = final_state.map(|state| checkpoint::encode(&state));
    if let Some(merged) = &mut telemetry {
        merged.series.sort_by_time();
        merged.tasks.sort_by_key(|s| s.task);
        let g = merged.registry.gauge(names::RUN_WALL_NS, GaugeKind::Max);
        merged.registry.gauge_peak(g, wall_time.as_nanos() as u64);
    }
    let events_per_sec = if wall_time.as_secs_f64() > 0.0 {
        events.len() as f64 / wall_time.as_secs_f64()
    } else {
        0.0
    };
    ThreadedReport {
        matches,
        metrics,
        wall_time,
        events_per_sec,
        wall_latencies_ns,
        telemetry,
        final_snapshot,
        flight_dumps,
    }
}

struct NodeOutcome {
    metrics: Metrics,
    matches: Vec<Vec<Match>>,
    wall_latencies_ns: Vec<u64>,
    telemetry: Option<RunTelemetry>,
    /// End-of-run state shard (checkpoint mode).
    shard: Option<Snapshot>,
}

/// The communication endpoints handed to one node thread.
struct NodeChannels {
    inbox: Receiver<Frame>,
    ret_inbox: Receiver<Vec<NodeMsg>>,
    senders: Vec<Sender<Frame>>,
    ret_senders: Vec<Sender<Vec<NodeMsg>>>,
    /// Frames in flight to each node (shared gauge; receivers decrement).
    depth: Arc<Vec<AtomicU64>>,
    barrier: Arc<DrainBarrier>,
}

/// Per-run chunking parameters, identical on every node.
#[derive(Clone, Copy)]
struct ChunkSchedule {
    chunk: Timestamp,
    num_chunks: u64,
    rounds_per_chunk: usize,
    release_phases: usize,
}

struct NodeRunner<'a> {
    deployment: &'a Deployment,
    node: usize,
    joins: Vec<Option<JoinTask>>,
    channels: NodeChannels,
    /// Messages ingested from inbox frames, awaiting processing.
    backlog: VecDeque<NodeMsg>,
    /// Pending outgoing messages per destination node.
    out_bufs: Vec<Vec<NodeMsg>>,
    /// Emptied frame buffers recycled via the return path.
    pool: Vec<Vec<NodeMsg>>,
    /// Flush threshold in messages (1 under the naive transport).
    batch: usize,
    naive: bool,
    inject_ns: Arc<Vec<AtomicU64>>,
    start: Instant,
    metrics: Metrics,
    matches: Vec<Vec<Match>>,
    wall_latencies_ns: Vec<u64>,
    /// Sender-side transmission multiplexing (see the simulator's `sent`).
    sent: std::collections::HashSet<(u64, usize, u64), crate::sim::MuxBuildHasher>,
    /// This node's private telemetry shard.
    telemetry: Option<ExecTelemetry>,
    /// Newest event timestamp seen by any local join (the node-local
    /// watermark behind the series' lag column).
    max_seen: Timestamp,
    /// Eviction slack (kept for rebuilding joins during crash recovery).
    slack: f64,
    /// Fault plan from the config, when fault injection is enabled.
    fault: Option<FaultPlan>,
    /// Shared shard storage and crash flag (checkpoint or fault mode).
    shared: Option<Arc<ResilienceShared>>,
    /// Crash-recovery counters, kept OUTSIDE `metrics` so the crashing
    /// node's state rollback cannot erase the record of its own recovery;
    /// folded into `metrics.recovery` when the thread finishes.
    recovery: RecoveryStats,
    /// Local events injected so far (drives [`FaultPlan::crash_at`]).
    injected_local: u64,
    /// Whether this run's planned crash has already fired (single-shot).
    crashed: bool,
    /// Fault mode, pre-crash: messages flushed to the planned-crash node
    /// this chunk, replayed to it after the crash (the peers' side of the
    /// Ambrosia-style logged-call replay).
    send_log: Vec<(usize, usize, Match)>,
    /// Fault mode, pre-crash: multiset of messages ingested from the
    /// planned-crash node this chunk, keyed by `(target, slot, mux match
    /// hash)` — the receive-side replay-dedup filter.
    recv_log: HashMap<(usize, usize, u64), u32, crate::sim::MuxBuildHasher>,
    /// Whether chunk logs are being recorded (fault mode, until the crash
    /// has happened).
    logs_active: bool,
    /// Whether re-deliveries from the crashed node are being deduplicated
    /// against `recv_log` (peers, from the crash to the chunk's end).
    dedup_active: bool,
    /// Wall-clock mark of the injected crash (downtime + recovery timer).
    crash_started: Option<Instant>,
    /// Bounded black box of recent transport/checkpoint/injection steps;
    /// recording only in resilient mode (capacity 0 otherwise), dumped by
    /// the crash path.
    flight: FlightRing,
}

/// First backoff sleep of a blocked fault-mode send.
const SEND_BACKOFF_START: Duration = Duration::from_micros(1);

/// Backoff ceiling: a blocked fault-mode sender keeps retrying at this
/// bounded cadence (doubling up to the cap) instead of parking
/// indefinitely on a channel whose receiver may have crashed.
const SEND_BACKOFF_CAP: Duration = Duration::from_micros(256);

#[allow(clippy::too_many_arguments)]
fn run_node(
    deployment: &Deployment,
    node: usize,
    events: Arc<[Event]>,
    range: Range<usize>,
    channels: NodeChannels,
    inject_ns: Arc<Vec<AtomicU64>>,
    start: Instant,
    schedule: ChunkSchedule,
    config: ThreadedConfig,
    shared: Option<Arc<ResilienceShared>>,
    resume: Option<&Snapshot>,
) -> NodeOutcome {
    let mut joins: Vec<Option<JoinTask>> = (0..deployment.tasks.len())
        .map(|i| {
            if deployment.tasks[i].node.index() == node {
                let mut join = deployment.make_join(i, config.slack);
                if let Some(j) = &mut join {
                    // Parallel chunk execution can deliver a negation guard
                    // after the match it suppresses; defer candidates to
                    // chunk quiescence (see the module docs).
                    if j.has_negations() {
                        j.set_defer_negation(true);
                    }
                }
                join
            } else {
                None
            }
        })
        .collect();
    let telemetry = config
        .telemetry
        .as_ref()
        .map(|spec| ExecTelemetry::new(ClockDomain::WallNanos, spec, deployment.tasks.len()));
    let (batch, naive) = match config.transport {
        TransportMode::Batched { batch, .. } => (batch.max(1), false),
        TransportMode::Naive => (1, true),
    };
    let num_nodes = deployment.num_nodes.max(1);
    // Graft resumed state onto the freshly built local joins; node 0
    // absorbs the snapshot's run-wide accumulators (metrics, matches,
    // latencies) so the merged report continues the interrupted totals.
    let mut metrics = Metrics::new(deployment.num_nodes);
    let mut matches = vec![Vec::new(); deployment.queries.len()];
    let mut wall_latencies_ns = Vec::new();
    let mut sent: std::collections::HashSet<(u64, usize, u64), crate::sim::MuxBuildHasher> =
        Default::default();
    if let Some(snap) = resume {
        for (i, join) in joins.iter_mut().enumerate() {
            if deployment.tasks[i].node.index() != node {
                continue;
            }
            checkpoint::restore_task(deployment, i, snap.tasks[i].clone(), join, |j, s| {
                j.restore_state(s)
            })
            .expect("resume pre-validated by run_threaded_resumed");
        }
        sent.extend(snap.sent.iter().filter_map(|&(sig, from, to, mhash)| {
            (from as usize == node).then_some((sig, to as usize, mhash))
        }));
        if node == 0 {
            metrics = snap.metrics.clone();
            matches = snap.matches.clone();
            wall_latencies_ns = snap.wall_latencies_ns.clone();
            // Re-establish `sink_matches == samples + dropped` over the
            // absorbed history: matches the snapshot carries without a
            // wall-latency sample (all of them, for simulator snapshots —
            // the sim measures event-time lag, not wall time) count as
            // dropped samples of this run.
            metrics.latency_samples_dropped = metrics
                .sink_matches
                .saturating_sub(wall_latencies_ns.len() as u64);
        }
    }
    let fault_mode = config.fault.is_some();
    let flight = FlightRing::new(
        node as u16,
        if shared.is_some() { FLIGHT_CAPACITY } else { 0 },
    );
    let mut runner = NodeRunner {
        deployment,
        node,
        joins,
        channels,
        backlog: VecDeque::new(),
        out_bufs: (0..num_nodes).map(|_| Vec::new()).collect(),
        pool: Vec::new(),
        batch,
        naive,
        inject_ns,
        start,
        metrics,
        matches,
        wall_latencies_ns,
        sent,
        telemetry,
        max_seen: 0,
        slack: config.slack,
        fault: config.fault.clone(),
        shared,
        recovery: RecoveryStats::default(),
        injected_local: 0,
        crashed: false,
        send_log: Vec::new(),
        recv_log: Default::default(),
        logs_active: false,
        dedup_active: false,
        crash_started: None,
        flight,
    };

    let local_events = &events[range];
    let mut next = 0usize;
    for chunk_idx in 0..schedule.num_chunks {
        let bound = (chunk_idx + 1) * schedule.chunk;
        if runner.shared.is_some() {
            // Every chunk starts from quiescence: persist this node's
            // shard (the durable state a crash rolls back to).
            runner.save_shard(next);
        }
        if fault_mode {
            runner.begin_chunk_logs(chunk_idx);
        }
        let mut crashed_here = false;
        while next < local_events.len() && local_events[next].time < bound {
            if runner.crash_due() {
                runner.crash(chunk_idx);
                crashed_here = true;
                break;
            }
            runner.drain();
            runner.inject(&local_events[next]);
            runner.maybe_sample();
            next += 1;
        }
        if !crashed_here {
            runner.flush_all();
        }
        if fault_mode {
            // Crash coordination. Barrier A publishes the crash flag
            // consistently; the crashed node then discards its inbox and
            // restores its shard while peers hold their sends; barrier B
            // orders the discard before the replay traffic.
            runner.barrier_wait();
            let crash_chunk = runner
                .shared
                .as_ref()
                .map(|s| s.crashed_chunk.load(Ordering::Acquire))
                .unwrap_or(0);
            if crash_chunk == chunk_idx + 1 {
                let fault_node = runner.fault.as_ref().map(|f| f.node).unwrap_or(usize::MAX);
                if node == fault_node {
                    next = runner.recover();
                } else {
                    runner.dedup_active = true;
                }
                runner.barrier_wait();
                if node == fault_node {
                    // Replay the rolled-back part of the chunk: re-inject
                    // the local events from the restored cursor. Sends are
                    // regenerated; peers dedup re-deliveries they already
                    // processed against their receive logs.
                    while next < local_events.len() && local_events[next].time < bound {
                        runner.drain();
                        runner.inject(&local_events[next]);
                        next += 1;
                    }
                    if let Some(started) = runner.crash_started.take() {
                        runner.recovery.recovery_ns += started.elapsed().as_nanos() as u64;
                    }
                } else {
                    runner.resend_log();
                }
                runner.flush_all();
            } else {
                runner.barrier_wait();
            }
        }
        // Quiescence: one barrier-synchronized drain round per possible
        // network hop; then, per negation level, release the deferred
        // candidates and drain to quiescence again.
        for phase in 0..=schedule.release_phases {
            if phase > 0 {
                runner.release_deferred();
                runner.flush_all();
            }
            for _ in 0..schedule.rounds_per_chunk {
                runner.barrier_wait();
                runner.drain();
                runner.flush_all();
                runner.maybe_sample();
            }
            runner.barrier_wait();
        }
    }
    // End-of-run state shard, captured BEFORE the join-stats fold below:
    // snapshots keep `metrics.join` unfolded (the engine counters live in
    // the saved task states), so a resumed run folds them exactly once.
    let shard = config.checkpoint.then(|| runner.build_shard(next));
    // Fold this node's join-engine counters into its metrics share, and
    // the recovery record kept outside the rolled-back metrics.
    for join in runner.joins.iter().flatten() {
        runner.metrics.join.merge(join.stats());
    }
    runner
        .metrics
        .recovery
        .merge(&std::mem::take(&mut runner.recovery));
    // Final sample at shutdown, then seal this node's shard with its local
    // task summaries.
    runner.sample(runner.start.elapsed().as_nanos() as u64);
    let telemetry = runner.telemetry.take().map(|tel| {
        let local =
            (0..deployment.tasks.len()).filter(|&i| deployment.tasks[i].node.index() == node);
        let tasks =
            crate::telemetry::task_summaries(deployment, local, |i| runner.joins[i].as_ref(), &tel);
        tel.finish(&runner.metrics, tasks)
    });
    NodeOutcome {
        metrics: runner.metrics,
        matches: runner.matches,
        wall_latencies_ns: runner.wall_latencies_ns,
        telemetry,
        shard,
    }
}

impl NodeRunner<'_> {
    /// This node's state as a snapshot shard: local task states, local
    /// sent-set entries, this node's metrics share, and its local event
    /// cursor. Shards of all nodes merge into one whole-run [`Snapshot`].
    fn build_shard(&self, cursor: usize) -> Snapshot {
        let mut snap = Snapshot::empty(self.deployment);
        for (i, join) in self.joins.iter().enumerate() {
            if let Some(join) = join {
                snap.tasks[i] = Some(join.save_state());
            }
        }
        snap.metrics = self.metrics.clone();
        snap.matches = self.matches.clone();
        snap.wall_latencies_ns = self.wall_latencies_ns.clone();
        snap.sent = self
            .sent
            .iter()
            .map(|&(sig, to, mhash)| (sig, self.node as u16, to as u16, mhash))
            .collect();
        snap.sent.sort_unstable();
        snap.cursors = vec![0; self.deployment.num_nodes.max(1)];
        snap.cursors[self.node] = cursor as u64;
        snap
    }

    /// Encodes this node's state and stores it as the chunk-boundary
    /// shard — the durable state a crash rolls back to.
    fn save_shard(&mut self, cursor: usize) {
        let bytes = checkpoint::encode(&self.build_shard(cursor));
        self.recovery.snapshots_taken += 1;
        self.recovery.snapshot_bytes += bytes.len() as u64;
        self.flight.push(FlightRecord::Checkpoint {
            t: self.start.elapsed().as_nanos() as u64,
            bytes: bytes.len() as u64,
        });
        if let Some(shared) = &self.shared {
            *shared.shards[self.node].lock().expect("shard lock") = bytes;
        }
    }

    /// Resets the per-chunk replay logs (fault mode). Logging stops once
    /// the planned crash has fired in an *earlier* chunk — no second
    /// crash can need the logs. The current chunk still logs even when
    /// the flag is already up: a node crashing at its very first
    /// injection can publish the flag before its peers begin the chunk,
    /// and their logs are exactly what the recovery will replay.
    fn begin_chunk_logs(&mut self, chunk_idx: u64) {
        self.send_log.clear();
        self.recv_log.clear();
        self.dedup_active = false;
        self.logs_active = self.shared.as_ref().is_some_and(|s| {
            let c = s.crashed_chunk.load(Ordering::Relaxed);
            c == 0 || c == chunk_idx + 1
        });
    }

    /// Whether the planned crash fires before the next injection.
    fn crash_due(&self) -> bool {
        !self.crashed
            && self
                .fault
                .as_ref()
                .is_some_and(|f| f.node == self.node && self.injected_local == f.crash_at)
    }

    /// Simulates the crash: publish the flag (peers read it consistently
    /// after the next barrier), drop every piece of volatile state, and
    /// sleep out the configured downtime. The inbox is discarded later in
    /// [`Self::recover`]; until then barrier waits keep stealing from it
    /// so peers blocked on this node's bounded channel stay live.
    fn crash(&mut self, chunk_idx: u64) {
        self.crashed = true;
        self.crash_started = Some(Instant::now());
        self.recovery.crashes += 1;
        self.flight.push(FlightRecord::Crash {
            t: self.start.elapsed().as_nanos() as u64,
            chunk: chunk_idx,
        });
        if let Some(shared) = &self.shared {
            shared.crashed_chunk.store(chunk_idx + 1, Ordering::Release);
            // The black box: publish this shard's recent history next to
            // the snapshot it will recover from.
            *shared.flight_dumps[self.node]
                .lock()
                .expect("flight dump lock") = self.flight.encode();
        }
        self.backlog.clear();
        for buf in &mut self.out_bufs {
            buf.clear();
        }
        let delay = self
            .fault
            .as_ref()
            .map(|f| f.restart_delay)
            .unwrap_or_default();
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Post-crash restoration: discard every in-flight frame addressed to
    /// the old incarnation (peers replay their chunk logs afterwards),
    /// decode the last shard, rebuild the local joins from the plan, and
    /// graft the saved dynamic state. Returns the restored event cursor.
    fn recover(&mut self) -> usize {
        self.flight.push(FlightRecord::RecoveryStart {
            t: self.start.elapsed().as_nanos() as u64,
        });
        self.backlog.clear();
        while let Ok(frame) = self.channels.inbox.try_recv() {
            self.channels.depth[self.node].fetch_sub(1, Ordering::Relaxed);
            let Frame { origin, mut msgs } = frame;
            msgs.clear();
            if !self.naive {
                let _ = self.channels.ret_senders[origin].send(msgs);
            }
        }
        let bytes = self.shared.as_ref().expect("fault mode has shards").shards[self.node]
            .lock()
            .expect("shard lock")
            .clone();
        let mut snap = checkpoint::decode(&bytes).expect("own shard decodes");
        for i in 0..self.deployment.tasks.len() {
            if self.deployment.tasks[i].node.index() != self.node {
                continue;
            }
            let mut join = self.deployment.make_join(i, self.slack);
            if let Some(j) = &mut join {
                if j.has_negations() {
                    j.set_defer_negation(true);
                }
            }
            checkpoint::restore_task(
                self.deployment,
                i,
                snap.tasks[i].take(),
                &mut join,
                |j, s| j.restore_state(s),
            )
            .expect("own shard matches the plan");
            self.joins[i] = join;
        }
        self.metrics = snap.metrics;
        self.matches = snap.matches;
        self.wall_latencies_ns = snap.wall_latencies_ns;
        self.sent.clear();
        self.sent
            .extend(snap.sent.iter().filter_map(|&(sig, from, to, mhash)| {
                (from as usize == self.node).then_some((sig, to as usize, mhash))
            }));
        self.max_seen = self
            .joins
            .iter()
            .flatten()
            .map(|j| j.last_seen())
            .max()
            .unwrap_or(0);
        let cursor = snap.cursors.get(self.node).copied().unwrap_or(0) as usize;
        self.flight.push(FlightRecord::RecoveryDone {
            t: self.start.elapsed().as_nanos() as u64,
            cursor: cursor as u64,
        });
        cursor
    }

    /// Replays every message this node flushed to the crashed node during
    /// the chunk — the peers' half of the logged-call replay. Replayed
    /// deliveries are not new network transmissions (the §4.4 message
    /// metric counted them when first shipped), so they bypass the mux
    /// accounting and are tallied separately.
    fn resend_log(&mut self) {
        let Some(dest) = self.fault.as_ref().map(|f| f.node) else {
            return;
        };
        let log = std::mem::take(&mut self.send_log);
        self.recovery.replayed_messages += log.len() as u64;
        self.flight.push(FlightRecord::Replay {
            t: self.start.elapsed().as_nanos() as u64,
            msgs: log.len() as u32,
        });
        for (target, slot, m) in log {
            if let Some(tel) = self.telemetry.as_mut() {
                tel.on_replayed(target, 1);
            }
            self.enqueue(dest, NodeMsg { target, slot, m });
        }
    }

    /// Processes the backlog and every frame currently in the inbox.
    fn drain(&mut self) {
        loop {
            while let Some(msg) = self.backlog.pop_front() {
                self.handle(msg.target, msg.slot, msg.m);
            }
            match self.channels.inbox.try_recv() {
                Ok(frame) => self.ingest(frame),
                Err(_) => break,
            }
        }
    }

    /// Moves one inbox frame into the backlog without processing it;
    /// returns whether a frame was available. This is the unit of work a
    /// blocked sender (or a barrier waiter) performs to guarantee global
    /// progress under backpressure.
    fn steal(&mut self) -> bool {
        match self.channels.inbox.try_recv() {
            Ok(frame) => {
                self.ingest(frame);
                true
            }
            Err(_) => false,
        }
    }

    /// Accepts a frame: decrements the in-flight gauge, queues its
    /// messages, and hands the emptied buffer back to the origin node.
    ///
    /// In fault mode, messages from the planned-crash node additionally
    /// pass the replay-dedup filter: while the crash is being replayed,
    /// any message this node already ingested earlier in the chunk is
    /// dropped (the channel is FIFO per sender, so the pre-crash copy
    /// always arrives before its replay).
    fn ingest(&mut self, mut frame: Frame) {
        self.channels.depth[self.node].fetch_sub(1, Ordering::Relaxed);
        if !self.flight.is_disabled() {
            self.flight.push(FlightRecord::FrameRecv {
                t: self.start.elapsed().as_nanos() as u64,
                from: frame.origin as u16,
                msgs: frame.msgs.len() as u32,
            });
        }
        let filtered = (self.logs_active || self.dedup_active)
            && self
                .fault
                .as_ref()
                .is_some_and(|f| f.node == frame.origin && f.node != self.node);
        if filtered {
            for msg in frame.msgs.drain(..) {
                let key = (msg.target, msg.slot, crate::sim::match_hash_for_mux(&msg.m));
                if self.dedup_active {
                    if let Some(count) = self.recv_log.get_mut(&key) {
                        *count -= 1;
                        if *count == 0 {
                            self.recv_log.remove(&key);
                        }
                        self.recovery.suppressed_sends += 1;
                        if let Some(tel) = self.telemetry.as_mut() {
                            tel.on_suppressed(msg.target);
                        }
                        continue;
                    }
                }
                *self.recv_log.entry(key).or_insert(0) += 1;
                self.backlog.push_back(msg);
            }
        } else {
            self.backlog.extend(frame.msgs.drain(..));
        }
        if !self.naive {
            // The origin may already have shut its return receiver down at
            // the very end of the run; the buffer is then simply dropped.
            let _ = self.channels.ret_senders[frame.origin].send(frame.msgs);
        }
    }

    /// Waits at the drain barrier, stealing inbox frames (or yielding)
    /// while parked so senders blocked on this node's channel can finish.
    fn barrier_wait(&mut self) {
        let barrier = Arc::clone(&self.channels.barrier);
        barrier.wait(|| {
            if !self.steal() {
                std::thread::yield_now();
            }
        });
    }

    /// A frame buffer from the recycling pool, refilled from the return
    /// path; allocates only when no buffer has come back yet.
    fn acquire_buf(&mut self) -> Vec<NodeMsg> {
        if self.pool.is_empty() {
            while let Ok(buf) = self.channels.ret_inbox.try_recv() {
                self.pool.push(buf);
            }
        }
        if let Some(buf) = self.pool.pop() {
            self.metrics.transport.pool_reuses += 1;
            buf
        } else {
            self.metrics.transport.pool_allocs += 1;
            Vec::with_capacity(self.batch)
        }
    }

    /// Queues a message for `dest`, flushing when the batch fills.
    fn enqueue(&mut self, dest: usize, msg: NodeMsg) {
        if self.out_bufs[dest].capacity() == 0 {
            self.out_bufs[dest] = self.acquire_buf();
        }
        self.out_bufs[dest].push(msg);
        if self.out_bufs[dest].len() >= self.batch {
            self.flush_to(dest);
        }
    }

    /// Sends the pending buffer for `dest`, if any.
    fn flush_to(&mut self, dest: usize) {
        if self.out_bufs[dest].is_empty() {
            return;
        }
        let msgs = std::mem::take(&mut self.out_bufs[dest]);
        self.send_frame(dest, msgs);
    }

    /// Flushes every pending output buffer (chunk and round boundaries).
    fn flush_all(&mut self) {
        for dest in 0..self.out_bufs.len() {
            self.flush_to(dest);
        }
    }

    /// Pushes a frame onto `dest`'s channel, stealing from the own inbox
    /// while the channel is full. In fault mode a failed steal backs off
    /// with bounded exponential sleeps — a sender facing a crashed (hence
    /// non-draining) peer retries at a capped cadence instead of spinning
    /// or parking forever, and the waits are recorded in the recovery
    /// stats.
    fn send_frame(&mut self, dest: usize, msgs: Vec<NodeMsg>) {
        if self.logs_active
            && self
                .fault
                .as_ref()
                .is_some_and(|f| f.node == dest && f.node != self.node)
        {
            self.send_log
                .extend(msgs.iter().map(|msg| (msg.target, msg.slot, msg.m.clone())));
        }
        let t = &mut self.metrics.transport;
        t.frames_sent += 1;
        t.messages_framed += msgs.len() as u64;
        t.batch_hist.record(msgs.len() as u64);
        if !self.flight.is_disabled() {
            self.flight.push(FlightRecord::FrameSent {
                t: self.start.elapsed().as_nanos() as u64,
                to: dest as u16,
                msgs: msgs.len() as u32,
            });
        }
        let in_flight = self.channels.depth[dest].fetch_add(1, Ordering::Relaxed) + 1;
        if in_flight > self.metrics.transport.peak_queue_depth {
            self.metrics.transport.peak_queue_depth = in_flight;
        }
        let mut frame = Frame {
            origin: self.node,
            msgs,
        };
        let mut backoff = SEND_BACKOFF_START;
        loop {
            match self.channels.senders[dest].try_send(frame) {
                Ok(()) => return,
                Err(TrySendError::Full(f)) => {
                    self.metrics.transport.blocked_sends += 1;
                    frame = f;
                    if !self.steal() {
                        if self.fault.is_some() {
                            self.recovery.send_retries += 1;
                            let ns = backoff.as_nanos() as u64;
                            self.recovery.backoff_ns += ns;
                            self.recovery.backoff_hist.record(ns);
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(SEND_BACKOFF_CAP);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
                Err(TrySendError::Disconnected(_)) => {
                    panic!("receiver alive during execution")
                }
            }
        }
    }

    /// Samples the series shard when the wall-clock cadence has elapsed.
    fn maybe_sample(&mut self) {
        let now = self.start.elapsed().as_nanos() as u64;
        if self
            .telemetry
            .as_ref()
            .is_some_and(|tel| tel.sample_due(now))
        {
            self.sample(now);
        }
    }

    /// Emits one series record per local join task. Queue depth is the
    /// number of deliveries the task consumed since the previous sample
    /// (crossbeam receivers expose no length), and watermark lag is
    /// measured against this node's newest-seen event timestamp.
    fn sample(&mut self, now: u64) {
        let Some(tel) = self.telemetry.as_mut() else {
            return;
        };
        for (i, join) in self.joins.iter().enumerate() {
            let Some(join) = join else { continue };
            let stats = join.stats();
            let queue_depth = tel.drained_since(i);
            tel.record_task_sample(
                now,
                i,
                self.node,
                self.deployment.task_label(i),
                queue_depth,
                join.buffered() as u64,
                self.max_seen.saturating_sub(join.last_seen()),
                [stats.inputs, stats.probes, stats.evicted, stats.emitted],
            );
        }
        tel.end_sample(now);
    }

    fn inject(&mut self, event: &Event) {
        let deployment = self.deployment;
        let candidates = deployment.candidates_for(event.origin, event.ty);
        if candidates.is_empty() {
            return;
        }
        self.metrics.events_injected += 1;
        self.metrics.record_processed(self.node);
        self.injected_local += 1;
        let now = self.start.elapsed().as_nanos() as u64;
        if !self.flight.is_disabled() {
            self.flight.push(FlightRecord::Inject {
                t: now,
                seq: event.seq,
                ty: event.ty.0,
                time: event.time,
            });
        }
        if let Some(slot) = self.inject_ns.get(event.seq as usize) {
            // First write wins (0 means "never injected"), so a crash
            // replay keeps the original mark and a recovered match's
            // latency includes the downtime it survived.
            let _ = slot.compare_exchange(0, now.max(1), Ordering::AcqRel, Ordering::Acquire);
        }
        if let Some(tel) = self.telemetry.as_mut() {
            tel.on_inject(now, self.node, candidates[0].task, event);
        }
        let mut admitted = 0u64;
        for cand in candidates {
            // Discrimination index: skip candidates whose predicate bands
            // already reject the event, before any predicate runs.
            let admits = cand.admits(event);
            if let Some(tel) = self.telemetry.as_mut() {
                tel.on_candidate(cand.task, admits);
            }
            if !admits {
                continue;
            }
            admitted += 1;
            let task = cand.task;
            let TaskKind::Source {
                prim, predicates, ..
            } = &deployment.tasks[task].kind
            else {
                unreachable!("candidates_for returns source tasks");
            };
            let query = &deployment.queries[deployment.tasks[task].query_idx];
            let passes = predicates.iter().all(|&pi| {
                query.predicates()[pi].evaluate(|p| (p == *prim).then_some(event)) == Some(true)
            });
            if passes {
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.on_emit(task, event.time, 1);
                }
                let m = Match::single(*prim, event.clone());
                self.route(task, vec![m]);
            }
        }
        self.metrics
            .discrimination
            .observe(candidates.len() as u64, admitted);
    }

    fn handle(&mut self, task: usize, slot: usize, m: Match) {
        self.metrics.record_processed(self.node);
        self.max_seen = self.max_seen.max(m.last_time());
        if let Some(tel) = self.telemetry.as_mut() {
            tel.on_delivery(task);
        }
        let outs = self.joins[task]
            .as_mut()
            .expect("deliveries target local joins")
            .on_match(slot, m);
        self.emit(task, outs);
    }

    /// Re-checks and releases the deferred candidates of every local
    /// negation-hosting join (called once per release phase, at chunk
    /// quiescence when all in-window guards have been delivered).
    fn release_deferred(&mut self) {
        for task in 0..self.joins.len() {
            let released = match self.joins[task].as_mut() {
                Some(join) if join.has_negations() => join.release_deferred(),
                _ => continue,
            };
            self.emit(task, released);
        }
    }

    /// Sink bookkeeping (or merge telemetry) for a task's outputs, then
    /// routing to the fanout.
    fn emit(&mut self, task: usize, outs: Vec<Match>) {
        if outs.is_empty() {
            return;
        }
        if let Some(tel) = self.telemetry.as_mut() {
            for m in &outs {
                tel.on_emit(task, m.last_time(), 1);
            }
        }
        let spec = &self.deployment.tasks[task];
        if spec.is_sink {
            // One physical sink may feed many logical queries (shared
            // deployments): attribute each match — and its latency
            // bookkeeping — to every subscriber so per-query match sets
            // are identical to independent evaluation.
            let deployment = self.deployment;
            let sink_queries = &deployment.sink_queries[task];
            let now = self.start.elapsed().as_nanos() as u64;
            let prov = self
                .telemetry
                .as_ref()
                .map_or(0, |tel| tel.provenance_sample());
            for m in &outs {
                let mhash = if prov != 0 {
                    crate::sim::match_hash_for_mux(m)
                } else {
                    0
                };
                let newest = m
                    .entries()
                    .iter()
                    .map(|(_, e)| e)
                    .max_by(|a, b| a.trace_cmp(b))
                    .expect("non-empty match");
                let injected = self
                    .inject_ns
                    .get(newest.seq as usize)
                    .map(|a| a.load(Ordering::Acquire))
                    .unwrap_or(0);
                for &query_idx in sink_queries {
                    self.metrics.sink_matches += 1;
                    if injected == 0 {
                        // No injection record for the newest constituent —
                        // it entered in a resumed-from run (or its seq is
                        // outside this run's table). A sample against a
                        // zero baseline would be garbage; count the loss
                        // instead of hiding it. Invariant:
                        // `sink_matches == samples + latency_samples_dropped`.
                        self.metrics.latency_samples_dropped += 1;
                    } else {
                        let latency = now.saturating_sub(injected);
                        self.wall_latencies_ns.push(latency);
                        if let Some(tel) = self.telemetry.as_mut() {
                            tel.on_sink(now, self.node, task, m.len(), m.last_time(), latency);
                        }
                    }
                    if prov != 0 {
                        if let Some(tel) = self.telemetry.as_mut() {
                            tel.on_sink_match(
                                now,
                                self.node,
                                task,
                                &deployment.queries[query_idx],
                                query_idx,
                                m,
                                mhash,
                            );
                        }
                    }
                    self.matches[query_idx].push(m.clone());
                }
            }
        } else if self.telemetry.is_some() {
            let now = self.start.elapsed().as_nanos() as u64;
            for m in &outs {
                let span = m.last_time().saturating_sub(m.first_time());
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.on_merge(now, self.node, task, m.len(), span);
                }
            }
        }
        self.route(task, outs);
    }

    fn route(&mut self, task: usize, outs: Vec<Match>) {
        if self.naive {
            self.route_naive(task, outs);
        } else {
            self.route_batched(task, outs);
        }
    }

    /// Routes via the precomputed fanout: local targets are handled
    /// inline, remote targets are enqueued into per-destination batches.
    /// The steady-state path performs no heap allocation — the fanout is
    /// borrowed, the byte size is computed arithmetically, match clones
    /// are reference-counted, and frame buffers come from the pool.
    fn route_batched(&mut self, task: usize, outs: Vec<Match>) {
        let deployment = self.deployment;
        let fanout = &deployment.fanouts[task];
        if fanout.local.is_empty() && fanout.remote.is_empty() {
            return;
        }
        for m in outs {
            if !fanout.remote_nodes.is_empty() {
                let sig = deployment.tasks[task].stream_sig;
                let mhash = crate::sim::match_hash_for_mux(&m);
                // The encoded size is only needed for transmissions that
                // survive the once-per-node multiplexing.
                let mut bytes: Option<u64> = None;
                for &n in &fanout.remote_nodes {
                    if self.sent.insert((sig, n, mhash)) {
                        let b = *bytes.get_or_insert_with(|| encoded_len(&m) as u64);
                        self.metrics.messages_sent += 1;
                        self.metrics.bytes_sent += b;
                        if let Some(tel) = self.telemetry.as_mut() {
                            let now = self.start.elapsed().as_nanos() as u64;
                            tel.on_ship(now, self.node, n, task, b);
                        }
                    }
                }
                for &(dest, target, slot) in &fanout.remote {
                    self.enqueue(
                        dest,
                        NodeMsg {
                            target,
                            slot,
                            m: m.clone(),
                        },
                    );
                }
            }
            for &(target, slot) in &fanout.local {
                self.metrics.local_deliveries += 1;
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.on_local();
                }
                self.handle(target, slot, m.clone());
            }
        }
    }

    /// The pre-batching send path, preserved as the benchmark baseline:
    /// clones the route table per output, rebuilds the remote-node list
    /// per match, encodes the full wire buffer just to measure it, and
    /// ships every match as its own freshly allocated single-message
    /// frame over an unbounded channel.
    fn route_naive(&mut self, task: usize, outs: Vec<Match>) {
        let deployment = self.deployment;
        let routes = &deployment.routes[task];
        if routes.is_empty() {
            return;
        }
        for m in outs {
            let mut remote_nodes: Vec<usize> = routes
                .iter()
                .filter(|r| r.remote)
                .map(|r| deployment.tasks[r.target].node.index())
                .collect();
            remote_nodes.sort_unstable();
            remote_nodes.dedup();
            if !remote_nodes.is_empty() {
                let bytes = crate::codec::encode_match(&m).len() as u64;
                let sig = deployment.tasks[task].stream_sig;
                let mhash = crate::sim::match_hash_for_mux(&m);
                for &n in &remote_nodes {
                    if self.sent.insert((sig, n, mhash)) {
                        self.metrics.messages_sent += 1;
                        self.metrics.bytes_sent += bytes;
                        if let Some(tel) = self.telemetry.as_mut() {
                            let now = self.start.elapsed().as_nanos() as u64;
                            tel.on_ship(now, self.node, n, task, bytes);
                        }
                    }
                }
            }
            let routes: Vec<crate::deploy::Route> = routes.clone();
            for r in routes {
                if r.remote {
                    let dest = deployment.tasks[r.target].node.index();
                    self.metrics.transport.pool_allocs += 1;
                    self.send_frame(
                        dest,
                        vec![NodeMsg {
                            target: r.target,
                            slot: r.slot,
                            m: m.clone(),
                        }],
                    );
                } else {
                    self.metrics.local_deliveries += 1;
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.on_local();
                    }
                    self.handle(r.target, r.slot, m.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_simulation, SimConfig};
    use muse_core::algorithms::amuse::{amuse, AMuseConfig};
    use muse_core::graph::PlanContext;
    use muse_core::network::{Network, NetworkBuilder};
    use muse_core::query::{Pattern, Query};
    use muse_core::types::{EventTypeId, NodeId, QueryId};
    use std::collections::BTreeSet;

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn network() -> Network {
        NetworkBuilder::new(3, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .rate(t(0), 20.0)
            .rate(t(1), 20.0)
            .rate(t(2), 1.0)
            .build()
    }

    fn query() -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            5_000,
        )
        .unwrap()
    }

    fn fingerprints(ms: &[Match]) -> BTreeSet<Vec<u64>> {
        ms.iter().map(Match::fingerprint).collect()
    }

    fn test_deployment() -> (Deployment, Vec<Event>) {
        let net = network();
        let q = query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let events = muse_sim::traces::generate_traces(
            &net,
            &muse_sim::traces::TraceConfig {
                duration: 40.0,
                ticks_per_unit: 100.0,
                rate_scale: 0.05,
                key_domain: 0,
                band_domain: 0,
                seed: 23,
            },
        );
        (deployment, events)
    }

    #[test]
    fn threaded_matches_equal_simulator() {
        let (deployment, events) = test_deployment();
        let sim = run_simulation(&deployment, &events, &SimConfig::default());
        let threaded = run_threaded(&deployment, &events, &ThreadedConfig::default());
        assert_eq!(
            fingerprints(&threaded.matches[0]),
            fingerprints(&sim.matches[0]),
            "threaded {} vs sim {}",
            threaded.matches[0].len(),
            sim.matches[0].len()
        );
        // Same network transmissions.
        assert_eq!(threaded.metrics.messages_sent, sim.metrics.messages_sent);
        assert!(threaded.events_per_sec > 0.0);
        assert_eq!(threaded.wall_latencies_ns.len(), threaded.matches[0].len());
    }

    #[test]
    fn naive_transport_matches_batched() {
        let (deployment, events) = test_deployment();
        let batched = run_threaded(&deployment, &events, &ThreadedConfig::default());
        let naive = run_threaded(
            &deployment,
            &events,
            &ThreadedConfig {
                transport: TransportMode::Naive,
                ..ThreadedConfig::default()
            },
        );
        assert_eq!(
            fingerprints(&batched.matches[0]),
            fingerprints(&naive.matches[0]),
        );
        assert_eq!(batched.metrics.messages_sent, naive.metrics.messages_sent);
        assert_eq!(batched.metrics.bytes_sent, naive.metrics.bytes_sent);
        // The naive path ships one fresh single-message frame per match;
        // the batched path packs multiple messages per frame and recycles
        // the buffers.
        assert_eq!(
            naive.metrics.transport.frames_sent,
            naive.metrics.transport.messages_framed
        );
        assert_eq!(naive.metrics.transport.pool_reuses, 0);
        let t = &batched.metrics.transport;
        assert!(t.frames_sent > 0, "batched run must ship frames");
        assert!(
            t.frames_sent < t.messages_framed,
            "batching must pack multiple messages into at least some frames"
        );
    }

    #[test]
    fn batched_transport_recycles_buffers() {
        let (deployment, events) = test_deployment();
        // Per-message frames force maximal traffic through the pool so
        // reuse dominates allocation in steady state.
        let report = run_threaded(
            &deployment,
            &events,
            &ThreadedConfig {
                transport: TransportMode::Batched {
                    batch: 1,
                    capacity: 8,
                },
                ..ThreadedConfig::default()
            },
        );
        let t = &report.metrics.transport;
        assert!(t.frames_sent > 10, "workload must ship many frames");
        assert!(
            t.pool_reuses > t.pool_allocs,
            "steady state must be served from the recycling pool \
             (allocs {} vs reuses {})",
            t.pool_allocs,
            t.pool_reuses
        );
    }

    #[test]
    fn bounded_capacity_exerts_backpressure_without_deadlock() {
        let (deployment, events) = test_deployment();
        let report = run_threaded(
            &deployment,
            &events,
            &ThreadedConfig {
                transport: TransportMode::Batched {
                    batch: 1,
                    capacity: 1,
                },
                ..ThreadedConfig::default()
            },
        );
        // Capacity 1 with per-message frames: the run must still complete
        // and agree with the simulator on the produced matches.
        let sim = run_simulation(&deployment, &events, &SimConfig::default());
        assert_eq!(
            fingerprints(&report.matches[0]),
            fingerprints(&sim.matches[0]),
        );
        assert!(report.metrics.transport.peak_queue_depth >= 1);
    }

    #[test]
    fn telemetry_counters_agree_across_executors() {
        let (deployment, events) = test_deployment();
        let sim = run_simulation(
            &deployment,
            &events,
            &SimConfig {
                telemetry: Some(TelemetrySpec::default()),
                ..SimConfig::default()
            },
        );
        let threaded = run_threaded(
            &deployment,
            &events,
            &ThreadedConfig {
                telemetry: Some(TelemetrySpec::default()),
                ..ThreadedConfig::default()
            },
        );
        // The executors must agree on the run's aggregate metrics …
        assert_eq!(threaded.metrics.sink_matches, sim.metrics.sink_matches);
        assert_eq!(threaded.metrics.messages_sent, sim.metrics.messages_sent);
        assert_eq!(threaded.metrics.join.emitted, sim.metrics.join.emitted);
        assert!(
            sim.metrics.sink_matches > 0,
            "workload must produce matches"
        );
        // … and their telemetry registries must carry the same counters.
        let s = sim.telemetry.expect("sim telemetry");
        let t = threaded.telemetry.expect("threaded telemetry");
        for name in [
            names::EVENTS_INJECTED,
            names::MESSAGES_SENT,
            names::BYTES_SENT,
            names::SINK_MATCHES,
            names::JOIN_INPUTS,
            names::JOIN_EMITTED,
        ] {
            assert_eq!(
                s.registry.counter_value(name),
                t.registry.counter_value(name),
                "counter {name} diverges between executors"
            );
        }
        // Task summaries cover the same join tasks (threaded shards each
        // contribute their local slice; merged and sorted by task id).
        let s_tasks: Vec<usize> = s.tasks.iter().map(|x| x.task).collect();
        let t_tasks: Vec<usize> = t.tasks.iter().map(|x| x.task).collect();
        assert_eq!(s_tasks, t_tasks);
        assert!(!s.series.is_empty(), "sim series sampled");
        assert!(!s.trace.is_empty(), "sim trace recorded");
    }

    #[test]
    fn latency_summary_shape() {
        let report = ThreadedReport {
            matches: vec![],
            metrics: Metrics::new(1),
            wall_time: Duration::from_millis(1),
            events_per_sec: 0.0,
            wall_latencies_ns: vec![50, 10, 30, 20, 40],
            telemetry: None,
            final_snapshot: None,
            flight_dumps: vec![],
        };
        assert_eq!(report.latency_summary_ns(), Some([10, 20, 30, 40, 50]));
        let empty = ThreadedReport {
            wall_latencies_ns: vec![],
            ..report
        };
        assert_eq!(empty.latency_summary_ns(), None);
    }

    #[test]
    fn remote_depth_counts_network_hops() {
        let (deployment, _) = test_deployment();
        let d = remote_depth(&deployment);
        assert!(d >= 1, "plan must have at least one network hop");
        assert!(d <= deployment.tasks.len());
    }

    #[test]
    fn release_phases_zero_without_negations() {
        let (deployment, _) = test_deployment();
        assert_eq!(negation_release_phases(&deployment, 4.0), 0);
    }

    #[test]
    fn empty_trace_completes() {
        let (deployment, _) = test_deployment();
        let report = run_threaded(&deployment, &[], &ThreadedConfig::default());
        assert_eq!(report.metrics.events_injected, 0);
        assert!(report.matches[0].is_empty());
    }

    #[test]
    fn drain_barrier_synchronizes_rounds() {
        let barrier = Arc::new(DrainBarrier::new(4));
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for round in 0..50u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(std::thread::yield_now);
                        // After the barrier, every thread has contributed
                        // to this round.
                        assert!(counter.load(Ordering::Relaxed) >= (round + 1) * 4);
                        barrier.wait(std::thread::yield_now);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }
}
