//! Executor-side telemetry collection.
//!
//! Thin bridge between the executors and the `muse-telemetry` crate: owns
//! the per-run (simulator) or per-node-shard (threaded executor)
//! registry/series/trace containers, pre-registered metric handles for
//! allocation-free hot-path updates, and the per-task cumulative state
//! behind the sampled series deltas. Join-engine counters are folded from
//! [`crate::metrics::JoinStats`] at the end of a run — they are already
//! accumulated allocation-free inside [`crate::matcher::JoinTask`].
//!
//! Telemetry is observational: it is not part of checkpointed executor
//! state and resets on restore.

use crate::deploy::{Deployment, TaskKind};
use crate::matcher::{absence_windows, JoinTask, Match};
use crate::metrics::Metrics;
use muse_core::event::Event;
use muse_core::query::Query;
pub use muse_telemetry::{
    names, ClockDomain, GaugeKind, RunTelemetry, TaskSummary, TelemetrySpec, TraceRecord,
};
use muse_telemetry::{
    sampled, AbsenceWindow, CounterId, HistId, ProvenanceRecord, SeriesRecord, WitnessEvent,
};

/// Per-run (or per-shard) collection state with hot-path metric handles.
pub(crate) struct ExecTelemetry {
    run: RunTelemetry,
    cadence: u64,
    next_sample: u64,
    /// Cached `run.trace.is_enabled()`: per-event hooks skip building
    /// `TraceRecord`s entirely when the trace ring has capacity 0.
    trace_on: bool,
    c_events: CounterId,
    c_msgs: CounterId,
    c_bytes: CounterId,
    c_local: CounterId,
    c_sink: CounterId,
    h_latency: HistId,
    /// Cumulative `[inputs, probes, evicted, emitted]` per task at the
    /// previous sample, for per-interval deltas.
    prev: Vec<[u64; 4]>,
    /// Deliveries consumed per task since the previous sample (the
    /// threaded executor's queue-depth proxy).
    drained: Vec<u64>,
    /// Provenance sampling divisor (0 disables witness recording).
    prov_sample: u64,
    /// Per-task `[considered, admitted]` candidate-projection counts for
    /// the discrimination index (source tasks); one array per task keeps
    /// the hot-path update to a single bounds check.
    disc: Vec<[u64; 2]>,
    /// Messages replayed to each task during crash recovery.
    replayed: Vec<u64>,
    /// Duplicate deliveries suppressed at each task after replay.
    suppressed: Vec<u64>,
}

impl ExecTelemetry {
    pub fn new(clock: ClockDomain, spec: &TelemetrySpec, num_tasks: usize) -> Self {
        let mut run = RunTelemetry::new(clock, spec);
        let r = &mut run.registry;
        let c_events = r.counter(names::EVENTS_INJECTED);
        let c_msgs = r.counter(names::MESSAGES_SENT);
        let c_bytes = r.counter(names::BYTES_SENT);
        let c_local = r.counter(names::LOCAL_DELIVERIES);
        let c_sink = r.counter(names::SINK_MATCHES);
        let h_latency = r.hist(names::LATENCY_SINK);
        let cadence = match clock {
            ClockDomain::VirtualTicks => spec.series_cadence_ticks,
            ClockDomain::WallNanos => spec.series_cadence_ns,
        }
        .max(1);
        let trace_on = run.trace.is_enabled();
        Self {
            run,
            cadence,
            next_sample: 0,
            trace_on,
            c_events,
            c_msgs,
            c_bytes,
            c_local,
            c_sink,
            h_latency,
            prev: vec![[0; 4]; num_tasks],
            drained: vec![0; num_tasks],
            prov_sample: spec.provenance_sample,
            disc: vec![[0; 2]; num_tasks],
            replayed: vec![0; num_tasks],
            suppressed: vec![0; num_tasks],
        }
    }

    /// The provenance sampling divisor (0 = witness recording disabled);
    /// lets executors skip match-hash computation when tracing is off.
    pub fn provenance_sample(&self) -> u64 {
        self.prov_sample
    }

    /// One event accepted by the source tasks at its origin.
    #[inline]
    pub fn on_inject(&mut self, t: u64, node: usize, task: usize, event: &Event) {
        self.run.registry.inc(self.c_events, 1);
        if self.trace_on {
            self.run.trace.push(TraceRecord::EventInjected {
                t,
                node,
                task,
                event_type: event.ty.0 as u32,
                seq: event.seq,
            });
        }
    }

    /// One match counted as crossing the network to a remote node.
    #[inline]
    pub fn on_ship(&mut self, t: u64, from: usize, to: usize, task: usize, bytes: u64) {
        self.run.registry.inc(self.c_msgs, 1);
        self.run.registry.inc(self.c_bytes, bytes);
        if self.trace_on {
            self.run.trace.push(TraceRecord::MessageShipped {
                t,
                from,
                to,
                task,
                bytes,
            });
        }
    }

    /// One node-local (zero network cost) delivery.
    #[inline]
    pub fn on_local(&mut self) {
        self.run.registry.inc(self.c_local, 1);
    }

    /// One delivery consumed by a task (feeds the queue-depth series in
    /// the threaded executor).
    #[inline]
    pub fn on_delivery(&mut self, task: usize) {
        if task < self.drained.len() {
            self.drained[task] += 1;
        }
    }

    /// A join produced a (non-sink) merged match.
    #[inline]
    pub fn on_merge(&mut self, t: u64, node: usize, task: usize, size: usize, span: u64) {
        if self.trace_on {
            self.run.trace.push(TraceRecord::MatchMerged {
                t,
                node,
                task,
                size,
                span,
            });
        }
    }

    /// A complete match emitted at a sink.
    pub fn on_sink(
        &mut self,
        t: u64,
        node: usize,
        task: usize,
        size: usize,
        last_time: u64,
        latency: u64,
    ) {
        self.run.registry.inc(self.c_sink, 1);
        self.run.registry.observe(self.h_latency, latency);
        if self.trace_on {
            self.run.trace.push(TraceRecord::SinkMatch {
                t,
                node,
                task,
                size,
                last_time,
            });
        }
    }

    /// One candidate projection considered (and possibly admitted past the
    /// discrimination predicates) for an injected event at `task`.
    #[inline]
    pub fn on_candidate(&mut self, task: usize, admitted: bool) {
        if let Some(d) = self.disc.get_mut(task) {
            d[0] += 1;
            d[1] += admitted as u64;
        }
    }

    /// `n` logged messages replayed to `task` during crash recovery.
    pub fn on_replayed(&mut self, task: usize, n: u64) {
        if task < self.replayed.len() {
            self.replayed[task] += n;
        }
    }

    /// One duplicate delivery suppressed at `task` after a replay.
    pub fn on_suppressed(&mut self, task: usize) {
        if task < self.suppressed.len() {
            self.suppressed[task] += 1;
        }
    }

    /// `n` matches emitted by `task` at event time `t` (virtual ticks in
    /// both executors) — feeds the drift monitor's rate estimators.
    #[inline]
    pub fn on_emit(&mut self, task: usize, t: u64, n: u64) {
        self.run.rates.record(task, t, n);
    }

    /// Records the full witness set of a sink match if its hash falls in
    /// the deterministic provenance sample.
    #[allow(clippy::too_many_arguments)]
    pub fn on_sink_match(
        &mut self,
        t: u64,
        node: usize,
        task: usize,
        query: &Query,
        query_idx: usize,
        m: &Match,
        match_hash: u64,
    ) {
        if !sampled(self.prov_sample, match_hash) {
            return;
        }
        let witness = m
            .entries()
            .iter()
            .map(|(p, e)| WitnessEvent {
                prim: p.0,
                seq: e.seq,
                origin: e.origin.0,
                ty: e.ty.0,
                t: e.time,
            })
            .collect();
        let absence = absence_windows(m, query)
            .into_iter()
            .map(|(ty, lo, hi)| AbsenceWindow { ty: ty.0, lo, hi })
            .collect();
        self.run.provenance.push(ProvenanceRecord {
            t,
            node,
            task,
            query: query_idx as u32,
            match_hash,
            witness,
            absence,
        });
    }

    /// Whether the series cadence has elapsed at `now`.
    pub fn sample_due(&self, now: u64) -> bool {
        now >= self.next_sample
    }

    /// Deliveries consumed by `task` since its last sample.
    pub fn drained_since(&self, task: usize) -> u64 {
        self.drained.get(task).copied().unwrap_or(0)
    }

    /// Emits one task's series record, converting cumulative totals
    /// `[inputs, probes, evicted, emitted]` into per-interval deltas.
    #[allow(clippy::too_many_arguments)]
    pub fn record_task_sample(
        &mut self,
        now: u64,
        task: usize,
        node: usize,
        label: String,
        queue_depth: u64,
        live_matches: u64,
        watermark_lag: u64,
        totals: [u64; 4],
    ) {
        let prev = self.prev.get(task).copied().unwrap_or([0; 4]);
        self.run.series.push(SeriesRecord {
            t: now,
            task,
            node,
            label,
            queue_depth,
            live_matches,
            watermark_lag,
            inputs: totals[0].saturating_sub(prev[0]),
            probes: totals[1].saturating_sub(prev[1]),
            evictions: totals[2].saturating_sub(prev[2]),
            emitted: totals[3].saturating_sub(prev[3]),
        });
        if task < self.prev.len() {
            self.prev[task] = totals;
            self.drained[task] = 0;
        }
    }

    /// Closes a sampling round, scheduling the next one.
    pub fn end_sample(&mut self, now: u64) {
        self.next_sample = now.saturating_add(self.cadence);
    }

    /// Folds the run-wide join counters (already aggregated in `metrics`)
    /// into the registry, attaches the per-task summaries, and returns the
    /// completed telemetry.
    pub fn finish(mut self, metrics: &Metrics, tasks: Vec<TaskSummary>) -> RunTelemetry {
        let r = &mut self.run.registry;
        for (name, v) in [
            (names::JOIN_INPUTS, metrics.join.inputs),
            (names::JOIN_PROBES, metrics.join.probes),
            (names::JOIN_GUARD_REJECTS, metrics.join.guard_rejects),
            (names::JOIN_MERGE_ATTEMPTS, metrics.join.merge_attempts),
            (names::JOIN_MERGE_SUCCESSES, metrics.join.merge_successes),
            (names::JOIN_EMITTED, metrics.join.emitted),
            (names::JOIN_EVICTED, metrics.join.evicted),
        ] {
            let id = r.counter(name);
            r.inc(id, v);
        }
        let g = r.gauge(names::JOIN_PEAK_LIVE, GaugeKind::Max);
        r.gauge_peak(g, metrics.join.peak_buffered);
        // Transport counters exist only where a transport ran (threaded
        // executor shards that actually shipped frames).
        let t = &metrics.transport;
        if t.frames_sent > 0 {
            for (name, v) in [
                (names::TRANSPORT_FRAMES, t.frames_sent),
                (names::TRANSPORT_MESSAGES_FRAMED, t.messages_framed),
                (names::TRANSPORT_BLOCKED_SENDS, t.blocked_sends),
                (names::TRANSPORT_POOL_ALLOCS, t.pool_allocs),
                (names::TRANSPORT_POOL_REUSES, t.pool_reuses),
            ] {
                let id = r.counter(name);
                r.inc(id, v);
            }
            let g = r.gauge(names::TRANSPORT_QUEUE_PEAK, GaugeKind::Max);
            r.gauge_peak(g, t.peak_queue_depth);
            let h = r.hist(names::TRANSPORT_BATCH_SIZE);
            r.observe_hist(h, &t.batch_hist);
        }
        if metrics.latency_samples_dropped > 0 {
            let id = r.counter(names::LATENCY_SAMPLES_DROPPED);
            r.inc(id, metrics.latency_samples_dropped);
        }
        // Discrimination-index counters exist only where events flowed
        // through the candidate lookup (any executor run with traffic).
        let d = &metrics.discrimination;
        if d.candidates_considered > 0 {
            for (name, v) in [
                (names::DISCRIMINATION_EVENTS, d.events),
                (names::DISCRIMINATION_CANDIDATES, d.candidates_considered),
                (names::DISCRIMINATION_ADMITTED, d.candidates_admitted),
            ] {
                let id = r.counter(name);
                r.inc(id, v);
            }
            let h = r.hist(names::DISCRIMINATION_CANDIDATE_SET);
            r.observe_hist(h, &d.candidate_hist);
        }
        // Recovery counters exist only where resilience machinery ran
        // (checkpointing or fault injection enabled).
        let rec = &metrics.recovery;
        if rec.snapshots_taken > 0 || rec.crashes > 0 {
            for (name, v) in [
                (names::RECOVERY_CRASHES, rec.crashes),
                (names::RECOVERY_SNAPSHOTS, rec.snapshots_taken),
                (names::RECOVERY_SNAPSHOT_BYTES, rec.snapshot_bytes),
                (names::RECOVERY_REPLAYED, rec.replayed_messages),
                (names::RECOVERY_SUPPRESSED, rec.suppressed_sends),
                (names::RECOVERY_SEND_RETRIES, rec.send_retries),
                (names::RECOVERY_BACKOFF_NS, rec.backoff_ns),
                (names::RECOVERY_NS, rec.recovery_ns),
            ] {
                let id = r.counter(name);
                r.inc(id, v);
            }
            let h = r.hist(names::RECOVERY_BACKOFF_SLEEP);
            r.observe_hist(h, &rec.backoff_hist);
        }
        self.run.tasks = tasks;
        self.run
    }
}

/// Builds end-of-run [`TaskSummary`] rows for the given task indices;
/// `join_of` resolves a task index to its live join state. Join tasks
/// always appear; source tasks (no join state) appear only when the
/// discrimination path measured them, so the summary stays bounded at
/// shared-multi-query scale while still surfacing per-source candidate
/// counters. `tel` contributes the discrimination and recovery columns.
pub(crate) fn task_summaries<'j>(
    deployment: &Deployment,
    indices: impl Iterator<Item = usize>,
    join_of: impl Fn(usize) -> Option<&'j JoinTask>,
    tel: &ExecTelemetry,
) -> Vec<TaskSummary> {
    indices
        .filter_map(|i| {
            let spec = &deployment.tasks[i];
            let considered = tel.disc.get(i).map_or(0, |d| d[0]);
            let join = join_of(i);
            if join.is_none() && considered == 0 {
                return None;
            }
            let kind = match spec.kind {
                TaskKind::Source { .. } => "source",
                TaskKind::Join { .. } if spec.is_sink => "sink",
                TaskKind::Join { .. } => "join",
            };
            let (inputs, probes, emitted, evictions, peak_live) = match join {
                Some(j) => {
                    let s = j.stats();
                    (s.inputs, s.probes, s.emitted, s.evicted, s.peak_buffered)
                }
                None => (0, 0, 0, 0, 0),
            };
            Some(TaskSummary {
                task: i,
                node: spec.node.index(),
                label: deployment.task_label(i),
                kind: kind.to_string(),
                inputs,
                probes,
                emitted,
                evictions,
                peak_live,
                considered,
                admitted: tel.disc.get(i).map_or(0, |d| d[1]),
                replayed: tel.replayed.get(i).copied().unwrap_or(0),
                suppressed: tel.suppressed.get(i).copied().unwrap_or(0),
            })
        })
        .collect()
}
