//! Crash flight recorder for the threaded executor.
//!
//! Each node shard keeps a bounded ring of recent transport, checkpoint,
//! and injection events. In normal operation the ring costs one enum
//! write per recorded step and is never read; when fault injection
//! crashes a shard, the ring is codec-encoded and published alongside the
//! recovery snapshot, giving a post-mortem timeline of what the shard was
//! doing in the moments before the crash — the black box to the
//! checkpoint's restore point. The harness pretty-prints dumps with
//! [`render_timeline`].
//!
//! Records use the same explicit big-endian byte discipline as
//! [`crate::codec`] (and its `try_get_*` readers), so dumps are portable
//! across shards and processes.

use crate::codec::{try_get_u16, try_get_u32, try_get_u64, try_get_u8};
use std::collections::VecDeque;

/// One recorded step of a shard's recent history. `t` is always wall
/// nanoseconds since the run started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightRecord {
    /// A source event was injected locally.
    Inject {
        /// Wall nanos since run start.
        t: u64,
        /// Global sequence number of the event.
        seq: u64,
        /// Event type id.
        ty: u16,
        /// Event timestamp in virtual ticks.
        time: u64,
    },
    /// A transport frame was handed to a peer's inbox.
    FrameSent {
        /// Wall nanos since run start.
        t: u64,
        /// Destination node.
        to: u16,
        /// Messages in the frame.
        msgs: u32,
    },
    /// A transport frame was drained from the inbox.
    FrameRecv {
        /// Wall nanos since run start.
        t: u64,
        /// Originating node.
        from: u16,
        /// Messages in the frame.
        msgs: u32,
    },
    /// A checkpoint snapshot of the shard was taken.
    Checkpoint {
        /// Wall nanos since run start.
        t: u64,
        /// Encoded snapshot size.
        bytes: u64,
    },
    /// Fault injection crashed the shard.
    Crash {
        /// Wall nanos since run start.
        t: u64,
        /// Chunk index the crash interrupted.
        chunk: u64,
    },
    /// Recovery from the last snapshot began.
    RecoveryStart {
        /// Wall nanos since run start.
        t: u64,
    },
    /// Recovery finished; processing resumes from `cursor`.
    RecoveryDone {
        /// Wall nanos since run start.
        t: u64,
        /// Restored local-trace cursor.
        cursor: u64,
    },
    /// Logged messages were re-sent to a peer after recovery.
    Replay {
        /// Wall nanos since run start.
        t: u64,
        /// Messages replayed.
        msgs: u32,
    },
}

impl FlightRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            FlightRecord::Inject { t, seq, ty, time } => {
                buf.push(0);
                buf.extend_from_slice(&t.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(&ty.to_be_bytes());
                buf.extend_from_slice(&time.to_be_bytes());
            }
            FlightRecord::FrameSent { t, to, msgs } => {
                buf.push(1);
                buf.extend_from_slice(&t.to_be_bytes());
                buf.extend_from_slice(&to.to_be_bytes());
                buf.extend_from_slice(&msgs.to_be_bytes());
            }
            FlightRecord::FrameRecv { t, from, msgs } => {
                buf.push(2);
                buf.extend_from_slice(&t.to_be_bytes());
                buf.extend_from_slice(&from.to_be_bytes());
                buf.extend_from_slice(&msgs.to_be_bytes());
            }
            FlightRecord::Checkpoint { t, bytes } => {
                buf.push(3);
                buf.extend_from_slice(&t.to_be_bytes());
                buf.extend_from_slice(&bytes.to_be_bytes());
            }
            FlightRecord::Crash { t, chunk } => {
                buf.push(4);
                buf.extend_from_slice(&t.to_be_bytes());
                buf.extend_from_slice(&chunk.to_be_bytes());
            }
            FlightRecord::RecoveryStart { t } => {
                buf.push(5);
                buf.extend_from_slice(&t.to_be_bytes());
            }
            FlightRecord::RecoveryDone { t, cursor } => {
                buf.push(6);
                buf.extend_from_slice(&t.to_be_bytes());
                buf.extend_from_slice(&cursor.to_be_bytes());
            }
            FlightRecord::Replay { t, msgs } => {
                buf.push(7);
                buf.extend_from_slice(&t.to_be_bytes());
                buf.extend_from_slice(&msgs.to_be_bytes());
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let tag = try_get_u8(buf)?;
        let t = try_get_u64(buf)?;
        Some(match tag {
            0 => FlightRecord::Inject {
                t,
                seq: try_get_u64(buf)?,
                ty: try_get_u16(buf)?,
                time: try_get_u64(buf)?,
            },
            1 => FlightRecord::FrameSent {
                t,
                to: try_get_u16(buf)?,
                msgs: try_get_u32(buf)?,
            },
            2 => FlightRecord::FrameRecv {
                t,
                from: try_get_u16(buf)?,
                msgs: try_get_u32(buf)?,
            },
            3 => FlightRecord::Checkpoint {
                t,
                bytes: try_get_u64(buf)?,
            },
            4 => FlightRecord::Crash {
                t,
                chunk: try_get_u64(buf)?,
            },
            5 => FlightRecord::RecoveryStart { t },
            6 => FlightRecord::RecoveryDone {
                t,
                cursor: try_get_u64(buf)?,
            },
            7 => FlightRecord::Replay {
                t,
                msgs: try_get_u32(buf)?,
            },
            _ => return None,
        })
    }

    /// Wall nanoseconds since run start of any record.
    pub fn t(&self) -> u64 {
        match *self {
            FlightRecord::Inject { t, .. }
            | FlightRecord::FrameSent { t, .. }
            | FlightRecord::FrameRecv { t, .. }
            | FlightRecord::Checkpoint { t, .. }
            | FlightRecord::Crash { t, .. }
            | FlightRecord::RecoveryStart { t }
            | FlightRecord::RecoveryDone { t, .. }
            | FlightRecord::Replay { t, .. } => t,
        }
    }
}

/// Bounded per-shard ring of recent [`FlightRecord`]s. Capacity 0 disables
/// recording entirely (the non-resilient configuration).
#[derive(Debug, Clone, Default)]
pub struct FlightRing {
    records: VecDeque<FlightRecord>,
    capacity: usize,
    dropped: u64,
    /// Shard the ring belongs to (stamped into dumps).
    node: u16,
}

/// A decoded flight dump: one shard's recent history at crash time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Shard (node) the dump came from.
    pub node: u16,
    /// Records evicted from the ring before the dump.
    pub dropped: u64,
    /// Retained records, oldest first.
    pub records: Vec<FlightRecord>,
}

impl FlightRing {
    /// Creates a ring for shard `node` holding at most `capacity` records.
    pub fn new(node: u16, capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            node,
        }
    }

    /// True when recording is disabled (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Appends a record, evicting the oldest if full.
    #[inline]
    pub fn push(&mut self, rec: FlightRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encodes the ring (shard id, eviction count, records) for
    /// publication alongside a recovery snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.records.len() * 32);
        buf.extend_from_slice(&self.node.to_be_bytes());
        buf.extend_from_slice(&self.dropped.to_be_bytes());
        buf.extend_from_slice(&(self.records.len() as u32).to_be_bytes());
        for rec in &self.records {
            rec.encode(&mut buf);
        }
        buf
    }
}

/// Decodes one encoded flight dump; `None` on truncation or an unknown
/// record tag.
pub fn decode_dump(mut buf: &[u8]) -> Option<FlightDump> {
    let node = try_get_u16(&mut buf)?;
    let dropped = try_get_u64(&mut buf)?;
    let count = try_get_u32(&mut buf)? as usize;
    let mut records = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        records.push(FlightRecord::decode(&mut buf)?);
    }
    Some(FlightDump {
        node,
        dropped,
        records,
    })
}

/// Renders a decoded dump as a human-readable post-mortem timeline,
/// newest events last, timestamps in microseconds since run start.
pub fn render_timeline(dump: &FlightDump) -> String {
    let mut out = format!(
        "flight recorder: node {} — {} records ({} older evicted)\n",
        dump.node,
        dump.records.len(),
        dump.dropped
    );
    for rec in &dump.records {
        let us = rec.t() as f64 / 1_000.0;
        let line = match *rec {
            FlightRecord::Inject { seq, ty, time, .. } => {
                format!("inject       seq {seq} type {ty} @tick {time}")
            }
            FlightRecord::FrameSent { to, msgs, .. } => {
                format!("frame-sent   → node {to} ({msgs} msgs)")
            }
            FlightRecord::FrameRecv { from, msgs, .. } => {
                format!("frame-recv   ← node {from} ({msgs} msgs)")
            }
            FlightRecord::Checkpoint { bytes, .. } => {
                format!("checkpoint   {bytes} bytes")
            }
            FlightRecord::Crash { chunk, .. } => {
                format!("CRASH        at chunk {chunk}")
            }
            FlightRecord::RecoveryStart { .. } => "recovery     start".to_string(),
            FlightRecord::RecoveryDone { cursor, .. } => {
                format!("recovery     done, cursor {cursor}")
            }
            FlightRecord::Replay { msgs, .. } => {
                format!("replay       {msgs} msgs re-sent")
            }
        };
        out.push_str(&format!("{us:>12.1}us  {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<FlightRecord> {
        vec![
            FlightRecord::Inject {
                t: 10,
                seq: 7,
                ty: 2,
                time: 400,
            },
            FlightRecord::FrameSent {
                t: 20,
                to: 1,
                msgs: 3,
            },
            FlightRecord::FrameRecv {
                t: 30,
                from: 1,
                msgs: 5,
            },
            FlightRecord::Checkpoint { t: 40, bytes: 128 },
            FlightRecord::Crash { t: 50, chunk: 4 },
            FlightRecord::RecoveryStart { t: 60 },
            FlightRecord::RecoveryDone { t: 70, cursor: 99 },
            FlightRecord::Replay { t: 80, msgs: 12 },
        ]
    }

    #[test]
    fn dump_roundtrips_every_variant() {
        let mut ring = FlightRing::new(3, 16);
        for rec in sample_records() {
            ring.push(rec);
        }
        let dump = decode_dump(&ring.encode()).unwrap();
        assert_eq!(dump.node, 3);
        assert_eq!(dump.dropped, 0);
        assert_eq!(dump.records, sample_records());
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let mut ring = FlightRing::new(0, 4);
        for i in 0..10 {
            ring.push(FlightRecord::RecoveryStart { t: i });
        }
        assert_eq!(ring.len(), 4);
        let dump = decode_dump(&ring.encode()).unwrap();
        assert_eq!(dump.dropped, 6);
        assert_eq!(dump.records.first().unwrap().t(), 6);
        // Capacity 0 records nothing.
        let mut off = FlightRing::new(0, 0);
        assert!(off.is_disabled());
        off.push(FlightRecord::RecoveryStart { t: 0 });
        assert!(off.is_empty());
    }

    #[test]
    fn truncated_or_garbage_dump_is_rejected() {
        let mut ring = FlightRing::new(1, 8);
        ring.push(FlightRecord::Crash { t: 5, chunk: 1 });
        let buf = ring.encode();
        assert!(decode_dump(&buf[..buf.len() - 1]).is_none());
        let mut bad = buf.clone();
        bad[2 + 8 + 4] = 0xFF; // clobber the first record tag
        assert!(decode_dump(&bad).is_none());
    }

    #[test]
    fn timeline_mentions_every_step() {
        let mut ring = FlightRing::new(2, 16);
        for rec in sample_records() {
            ring.push(rec);
        }
        let text = render_timeline(&decode_dump(&ring.encode()).unwrap());
        for needle in [
            "inject",
            "frame-sent",
            "frame-recv",
            "checkpoint",
            "CRASH",
            "recovery",
            "replay",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }
}
