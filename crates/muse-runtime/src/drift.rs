//! Live cost-model drift monitor.
//!
//! The §4.4 cost model ([`muse_core::cost`]) predicts every MuSE-graph
//! vertex's output rate from the network's event generation rates; the
//! placement decisions in `muse-core::algorithms` are only as good as
//! those predictions. This module closes the loop at runtime: the
//! executors feed each task's emitted matches into per-task
//! [`RateBank`] estimators (event-time windows, shard-mergeable), and
//! [`CostDrift::compute`] re-evaluates the model against the observed
//! rates, scoring modeled-vs-observed divergence per vertex and for the
//! deployment as a whole.
//!
//! Unit conversion: modeled rates are *matches per network rate unit*
//! (the unit [`muse_core::network::Network::rate`] is expressed in),
//! while observed rates are *matches per virtual tick*. A trace generated
//! by `muse-sim` with `rate_scale` and `ticks_per_unit` maps one rate
//! unit to `ticks_per_unit / rate_scale` ticks, so
//! `modeled_per_tick = modeled · rate_scale / ticks_per_unit`. The
//! model's composite rules (`SEQ` product, `AND` k·product) implicitly
//! price combinations over a one-time-unit horizon, so modeled and
//! observed agree on stationary Poisson input when query windows span
//! roughly `ticks_per_unit / rate_scale` ticks — which is exactly the
//! regime the `observe` benchmark's stationary gate sets up. A drifted
//! workload (rates shifted off the network declaration) scores
//! `|obs − mod| / max(mod, obs)` toward 1 regardless of units.

use crate::deploy::Deployment;
use muse_telemetry::RateBank;
use serde::{Deserialize, Serialize};

/// Weight of the newest window in [`CostDrift`]'s EWMA view.
const EWMA_ALPHA: f64 = 0.3;

/// One vertex's modeled-vs-observed comparison. All rates are per virtual
/// tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexDrift {
    /// Deployment task index.
    pub task: usize,
    /// Hosting node.
    pub node: usize,
    /// Human-readable task label.
    pub label: String,
    /// The §4.4 modeled output rate, converted to per-tick.
    pub modeled: f64,
    /// Observed whole-run mean output rate.
    pub observed: f64,
    /// Observed rate over the most recent estimator windows.
    pub recent: f64,
    /// EWMA of per-window observed rates.
    pub ewma: f64,
    /// [`muse_core::cost::relative_drift`] of `modeled` vs `observed`,
    /// in `[0, 1]`.
    pub drift: f64,
}

/// A deployment-wide drift report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostDrift {
    /// Per-vertex comparisons, in task order.
    pub per_vertex: Vec<VertexDrift>,
    /// Rate-weighted mean drift: `Σ wᵢ·driftᵢ / Σ wᵢ` with
    /// `wᵢ = max(modeledᵢ, observedᵢ)`, so silent low-rate vertices don't
    /// drown out the streams that carry the run. 0.0 when nothing flowed.
    pub score: f64,
}

impl CostDrift {
    /// Re-evaluates the cost model against the observed per-task rates.
    ///
    /// `ticks_per_unit` and `rate_scale` are the trace generator's unit
    /// conversion; `duration_ticks` is the trace horizon (the observed
    /// rate denominator, so tasks that never emitted read as rate 0
    /// rather than "no data").
    pub fn compute(
        deployment: &Deployment,
        rates: &RateBank,
        ticks_per_unit: f64,
        rate_scale: f64,
        duration_ticks: u64,
    ) -> Self {
        let to_ticks = rate_scale / ticks_per_unit.max(f64::MIN_POSITIVE);
        let mut per_vertex = Vec::with_capacity(deployment.tasks.len());
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for (i, spec) in deployment.tasks.iter().enumerate() {
            let modeled = spec.modeled_rate * to_ticks;
            let est = rates.get(i);
            let observed = est.map_or(0.0, |e| e.rate_over(duration_ticks));
            let drift = muse_core::cost::relative_drift(modeled, observed);
            let w = modeled.max(observed);
            weighted += w * drift;
            weight += w;
            per_vertex.push(VertexDrift {
                task: i,
                node: spec.node.index(),
                label: deployment.task_label(i),
                modeled,
                observed,
                recent: est.map_or(0.0, |e| e.recent_rate()),
                ewma: est.map_or(0.0, |e| e.ewma_rate(EWMA_ALPHA)),
                drift,
            });
        }
        let score = if weight > 0.0 { weighted / weight } else { 0.0 };
        Self { per_vertex, score }
    }

    /// The largest per-vertex drift (0.0 for an empty report).
    pub fn max_drift(&self) -> f64 {
        self.per_vertex.iter().map(|v| v.drift).fold(0.0, f64::max)
    }

    /// The `n` most-drifted vertices, worst first, ties broken toward the
    /// higher-rate stream.
    pub fn worst(&self, n: usize) -> Vec<&VertexDrift> {
        let mut rows: Vec<&VertexDrift> = self.per_vertex.iter().collect();
        rows.sort_by(|a, b| {
            b.drift.total_cmp(&a.drift).then(
                b.modeled
                    .max(b.observed)
                    .total_cmp(&a.modeled.max(a.observed)),
            )
        });
        rows.truncate(n);
        rows
    }

    /// Renders the report as an aligned table of the worst `limit`
    /// vertices (all of them when `limit` is 0), with the aggregate score.
    pub fn render(&self, limit: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cost-model drift: score {:.4} over {} vertices (max {:.4})\n",
            self.score,
            self.per_vertex.len(),
            self.max_drift()
        ));
        out.push_str(&format!(
            "{:<5} {:<5} {:<26} {:>12} {:>12} {:>12} {:>8}\n",
            "task", "node", "label", "modeled/t", "observed/t", "recent/t", "drift"
        ));
        let limit = if limit == 0 {
            self.per_vertex.len()
        } else {
            limit
        };
        for v in self.worst(limit) {
            out.push_str(&format!(
                "{:<5} {:<5} {:<26} {:>12.6} {:>12.6} {:>12.6} {:>8.4}\n",
                v.task, v.node, v.label, v.modeled, v.observed, v.recent, v.drift
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::algorithms::amuse::{amuse, AMuseConfig};
    use muse_core::graph::PlanContext;
    use muse_core::network::NetworkBuilder;
    use muse_core::query::{Pattern, Query};
    use muse_core::types::{EventTypeId, NodeId, QueryId};

    fn deployment_and_rates() -> (Deployment, RateBank) {
        let (a, b) = (EventTypeId(0), EventTypeId(1));
        let network = NetworkBuilder::new(2, 2)
            .node(NodeId(0), [a])
            .node(NodeId(1), [b])
            .rate(a, 3.0)
            .rate(b, 4.0)
            .build();
        let query = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(a), Pattern::leaf(b)]),
            vec![],
            100,
        )
        .unwrap();
        let plan = amuse(&query, &network, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&query), &network, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let rates = RateBank::new(100, deployment.tasks.len());
        (deployment, rates)
    }

    #[test]
    fn observed_matching_model_scores_zero() {
        let (deployment, mut rates) = deployment_and_rates();
        // ticks_per_unit 100, rate_scale 1: modeled per-tick = rate / 100.
        // Feed each task exactly its modeled count over 10_000 ticks.
        for (i, spec) in deployment.tasks.iter().enumerate() {
            let n = (spec.modeled_rate / 100.0 * 10_000.0).round() as u64;
            for k in 0..n {
                rates.record(i, k * 10_000 / n.max(1), 1);
            }
        }
        let report = CostDrift::compute(&deployment, &rates, 100.0, 1.0, 10_000);
        assert!(report.score < 0.01, "score {}", report.score);
        assert!(report.max_drift() < 0.01, "max {}", report.max_drift());
        assert_eq!(report.per_vertex.len(), deployment.tasks.len());
    }

    #[test]
    fn rate_shift_is_detected_and_rendered() {
        let (deployment, mut rates) = deployment_and_rates();
        // Feed 3× the modeled rate: every vertex drifts to 2/3.
        for (i, spec) in deployment.tasks.iter().enumerate() {
            let n = (3.0 * spec.modeled_rate / 100.0 * 10_000.0).round() as u64;
            for k in 0..n {
                rates.record(i, k * 10_000 / n.max(1), 1);
            }
        }
        let report = CostDrift::compute(&deployment, &rates, 100.0, 1.0, 10_000);
        assert!(report.score > 0.5, "score {}", report.score);
        let text = report.render(3);
        assert!(text.contains("drift"));
        assert!(report.worst(1)[0].drift > 0.6);
    }

    #[test]
    fn silent_run_scores_zero_but_flags_vertices() {
        let (deployment, rates) = deployment_and_rates();
        // Nothing observed: every modeled-positive vertex drifts to 1.0,
        // and the weighted score reflects it (weights are the modeled
        // rates themselves).
        let report = CostDrift::compute(&deployment, &rates, 100.0, 1.0, 10_000);
        assert!(report.max_drift() > 0.99);
        assert!(report.score > 0.99);
    }
}
