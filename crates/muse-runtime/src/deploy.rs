//! Deployment: turning a MuSE graph into runnable per-node tasks and a
//! routing table.
//!
//! Every graph vertex `(p, n)` becomes a *task* at node `n`: a source task
//! for primitive projections (forwarding locally generated events of one
//! type, filtered by the projection's unary predicates) or a join task for
//! composite projections (combining predecessor match streams,
//! [`crate::matcher::JoinTask`]). Every graph edge becomes a *route*; routes
//! whose endpoints live on different nodes are network transmissions.
//!
//! The deployment owns copies of the workload queries so executors are
//! self-contained (no lifetimes into the planning structures).

use crate::matcher::JoinTask;
use muse_core::event::{Event, Timestamp, Value};
use muse_core::graph::{MuseGraph, PlanContext, Vertex};
use muse_core::query::{CmpOp, PredicateExpr, Query};
use muse_core::types::{AttrId, EventTypeId, NodeId, PrimId, PrimSet, QueryId};
use std::collections::HashMap;

/// How logically identical graph vertices map to physical tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sharing {
    /// One physical task per graph vertex: every query gets its own
    /// pipeline even when vertices are structurally identical. This is the
    /// reference mode the shared plan is gated against.
    Independent,
    /// Structurally identical vertices — same node, same output stream
    /// identity ([`TaskSpec::stream_sig`]), same primitive set, and same
    /// query window — collapse into one physical task feeding every
    /// subscribed query's sinks through [`Deployment::sink_queries`]. The
    /// runtime analogue of the planner's §6.2 stream reuse.
    #[default]
    Shared,
}

/// A conservative interval constraint on one numeric payload attribute,
/// derived at deployment time from a source task's unary constant
/// predicates. An event whose attribute value falls outside `[lo, hi]` (or
/// that lacks the attribute, or carries a non-numeric value) cannot satisfy
/// the originating predicates, so the discrimination index prunes the task
/// from the event's candidate set without evaluating any predicate.
///
/// Bands are coarse by design: boundaries are closed even for strict
/// comparisons, and `Ne`/string predicates contribute no band of their own
/// (though a jointly unsatisfiable predicate set — decided in the sound
/// interval domain — yields the empty band `[+inf, -inf]`, rejecting every
/// event). Admission by the band is therefore necessary but not sufficient
/// — the full predicate list still runs on admitted events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// The constrained attribute.
    pub attr: AttrId,
    /// Inclusive lower bound (`-inf` when unconstrained from below).
    pub lo: f64,
    /// Inclusive upper bound (`+inf` when unconstrained from above).
    pub hi: f64,
}

/// One entry of the discrimination index: a source task plus the interval
/// bands an event must satisfy to possibly pass the task's predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCandidate {
    /// Index of the source task.
    pub task: usize,
    /// Conjunctive interval bands (at most one per attribute).
    pub bands: Vec<Band>,
}

impl SourceCandidate {
    /// Returns `true` if the event passes every band — i.e. the task's
    /// predicates *might* accept it. Allocation-free.
    #[inline]
    pub fn admits(&self, event: &Event) -> bool {
        for b in &self.bands {
            let v = match event.payload.get(b.attr) {
                Some(Value::Int(i)) => *i as f64,
                Some(Value::Float(f)) => *f,
                // Missing or non-numeric attribute: the banded predicate
                // compares against a numeric constant, which evaluates to
                // false for such events (see `Predicate::evaluate`).
                _ => return false,
            };
            if v < b.lo || v > b.hi {
                return false;
            }
        }
        true
    }
}

/// Folds a source task's unary constant predicates into per-attribute
/// interval bands, by evaluating them in `muse-verify`'s sound interval
/// abstract domain ([`muse_verify::AbsAttr`]) and coarsening the result.
///
/// A band is emitted only for attributes carrying at least one numeric
/// non-`Ne` constraint (such predicates reject non-numeric and absent
/// values, which is what [`SourceCandidate::admits`] enforces); open
/// interval endpoints coarsen to closed ones. When the abstract value is
/// *empty* — the predicate set is jointly unsatisfiable, including
/// mixed-type and puncture cases invisible to per-pair reasoning — the
/// attribute gets the canonical empty band `[+inf, -inf]`, pruning every
/// event before any predicate runs.
fn derive_bands(query: &Query, prim: PrimId, predicates: &[usize]) -> Vec<Band> {
    use muse_verify::AbsAttr;
    // (attr, abstract value, has a numeric non-Ne constraint)
    let mut abs: Vec<(AttrId, AbsAttr, bool)> = Vec::new();
    for &pi in predicates {
        let PredicateExpr::UnaryConst {
            prim: p,
            attr,
            op,
            value,
        } = &query.predicates()[pi].expr
        else {
            continue;
        };
        if *p != prim {
            continue;
        }
        let entry = match abs.iter_mut().position(|(a, _, _)| a == attr) {
            Some(i) => &mut abs[i],
            None => {
                abs.push((*attr, AbsAttr::top(), false));
                abs.last_mut().unwrap()
            }
        };
        entry.1.constrain(*op, value);
        if matches!(value, Value::Int(_) | Value::Float(_)) && *op != CmpOp::Ne {
            entry.2 = true;
        }
    }
    abs.into_iter()
        .filter_map(|(attr, a, numeric)| {
            if a.is_empty() {
                return Some(Band {
                    attr,
                    lo: f64::INFINITY,
                    hi: f64::NEG_INFINITY,
                });
            }
            numeric.then_some(Band {
                attr,
                lo: a.num.lo,
                hi: a.num.hi,
            })
        })
        .collect()
}

/// The role of a task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Forwards local events of one primitive operator's type.
    Source {
        /// The primitive operator.
        prim: PrimId,
        /// Its event type.
        ty: EventTypeId,
        /// Indices into the query's predicate list of unary predicates to
        /// apply at the source.
        predicates: Vec<usize>,
    },
    /// Joins predecessor match streams into matches of the projection.
    Join {
        /// Predecessor projections, one per input slot, sorted.
        slots: Vec<PrimSet>,
    },
}

/// One deployable task (a MuSE graph vertex).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// The originating graph vertex.
    pub vertex: Vertex,
    /// Semantic identity of the task's output stream (from
    /// [`muse_core::projection::Projection::stream_sig`]): two tasks with
    /// equal signatures at the same node emit identical matches, so their
    /// network transmissions are multiplexed (counted once) by the
    /// executors — the runtime analogue of the planner's stream reuse.
    pub stream_sig: u64,
    /// Hosting node.
    pub node: NodeId,
    /// Index into [`Deployment::queries`] of the source query.
    pub query_idx: usize,
    /// Primitive operators of the hosted projection.
    pub prims: PrimSet,
    /// `true` if the task hosts the full query (a sink).
    pub is_sink: bool,
    /// The §4.4 modeled output rate `r̂(p) = σ(p) · r̂(root(p))` of the
    /// hosted projection, in matches per network rate unit — the reference
    /// the live cost-model drift monitor compares observed rates against.
    /// Derived from the network and excluded from the deployment
    /// fingerprint.
    pub modeled_rate: f64,
    /// The task's role.
    pub kind: TaskKind,
}

/// A routed output of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Index of the receiving task.
    pub target: usize,
    /// Input slot at the receiver.
    pub slot: usize,
    /// `true` if the edge crosses the network.
    pub remote: bool,
}

/// A task's routes split into local and remote destinations, precomputed at
/// deployment build time so the executors' hot send paths iterate plain
/// slices instead of filtering (and cloning) the route list per emission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Fanout {
    /// Node-local destinations as `(target task, slot)`.
    pub local: Vec<(usize, usize)>,
    /// Network destinations as `(destination node, target task, slot)`.
    pub remote: Vec<(usize, usize, usize)>,
    /// Distinct destination nodes of the remote routes, sorted — the
    /// once-per-node shipping set of the §4.4 cost model.
    pub remote_nodes: Vec<usize>,
}

/// A runnable deployment of a MuSE graph.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The workload queries, deduplicated, indexed by `query_idx`.
    pub queries: Vec<Query>,
    /// Number of network nodes.
    pub num_nodes: usize,
    /// All tasks, in graph vertex order.
    pub tasks: Vec<TaskSpec>,
    /// Outgoing routes per task.
    pub routes: Vec<Vec<Route>>,
    /// Per-task local/remote fanout (derived from `routes`).
    pub fanouts: Vec<Fanout>,
    /// Source task indices by `(origin node, event type)`.
    sources_by_origin: HashMap<(NodeId, EventTypeId), Vec<usize>>,
    /// Discrimination index: per `(origin node, event type)`, the candidate
    /// source tasks with their predicate bands (parallel in task order to
    /// `sources_by_origin`).
    candidates_by_origin: HashMap<(NodeId, EventTypeId), Vec<SourceCandidate>>,
    /// Sink task indices per query (parallel to `queries`).
    pub sink_tasks: Vec<Vec<usize>>,
    /// Per task: indices into `queries` of the queries for which this task
    /// emits the full match stream (the shared-sink fanout table). Under
    /// [`Sharing::Independent`] every sink task lists exactly its own
    /// query; under [`Sharing::Shared`] one physical sink may feed many
    /// logical queries.
    pub sink_queries: Vec<Vec<usize>>,
    /// The sharing mode the deployment was built with.
    pub sharing: Sharing,
    /// Number of graph vertices the tasks were derived from (`>= tasks.len()`;
    /// the difference is the number of vertices collapsed by sharing).
    pub logical_tasks: usize,
}

impl Deployment {
    /// Builds a deployment from a MuSE graph, verifying it first.
    ///
    /// Runs the fail-fast `muse-verify` profile (structural and
    /// deployment-level checks, no enumerative completeness) and refuses
    /// the plan when any `Error`-severity diagnostic is found.
    ///
    /// # Errors
    ///
    /// Returns the full diagnostic [`muse_verify::Report`] when the plan
    /// has errors; warnings and lints do not block deployment.
    pub fn verified(
        graph: &MuseGraph,
        ctx: &PlanContext<'_>,
    ) -> Result<Self, Box<muse_verify::Report>> {
        Self::verified_with(graph, ctx, Sharing::default())
    }

    /// [`Deployment::verified`] with an explicit sharing mode.
    ///
    /// # Errors
    ///
    /// Returns the full diagnostic [`muse_verify::Report`] when the plan
    /// has errors; warnings and lints do not block deployment.
    pub fn verified_with(
        graph: &MuseGraph,
        ctx: &PlanContext<'_>,
        sharing: Sharing,
    ) -> Result<Self, Box<muse_verify::Report>> {
        let report = muse_verify::verify_for_deploy(graph, ctx);
        if report.has_errors() {
            return Err(Box::new(report));
        }
        Ok(Self::build(graph, ctx, sharing))
    }

    /// Builds a deployment from a MuSE graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph fails static verification (see
    /// [`Deployment::verified`] for the non-panicking form).
    pub fn new(graph: &MuseGraph, ctx: &PlanContext<'_>) -> Self {
        Self::new_with(graph, ctx, Sharing::default())
    }

    /// [`Deployment::new`] with an explicit sharing mode.
    ///
    /// # Panics
    ///
    /// Panics if the graph fails static verification.
    pub fn new_with(graph: &MuseGraph, ctx: &PlanContext<'_>, sharing: Sharing) -> Self {
        match Self::verified_with(graph, ctx, sharing) {
            Ok(d) => d,
            Err(report) => panic!(
                "refusing to deploy an invalid MuSE graph:\n{}",
                report.render_pretty(None)
            ),
        }
    }

    /// Builds a deployment *without* running static verification.
    ///
    /// Verification walks every query, vertex, and edge and is meant for
    /// hand-written or externally supplied plans; programmatically generated
    /// workloads at the 100k-query scale pay a substantial startup cost for
    /// checks their generator guarantees by construction. Use only on plans
    /// produced by the in-tree construction algorithms.
    pub fn unchecked(graph: &MuseGraph, ctx: &PlanContext<'_>, sharing: Sharing) -> Self {
        Self::build(graph, ctx, sharing)
    }

    /// Translates a verified graph into tasks and routes.
    fn build(graph: &MuseGraph, ctx: &PlanContext<'_>, sharing: Sharing) -> Self {
        // Deduplicated query list in id order.
        let mut query_ids: Vec<QueryId> =
            graph.vertices().map(|v| ctx.proj(v.proj).source).collect();
        query_ids.sort();
        query_ids.dedup();
        let queries: Vec<Query> = query_ids
            .iter()
            .map(|id| {
                ctx.queries
                    .iter()
                    .find(|q| q.id() == *id)
                    .expect("query present in context")
                    .clone()
            })
            .collect();
        let query_index: HashMap<QueryId, usize> = query_ids
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, i))
            .collect();

        let vertices: Vec<Vertex> = graph.vertices().collect();

        // In shared mode, structurally identical vertices — same node,
        // same output stream identity, same primitive set, same window —
        // collapse into one physical task. Equal stream signatures imply
        // identical projected operator trees (hence identical left-to-right
        // prim numbering) and identical retained predicates, so the first
        // vertex's task evaluates the collapsed vertices' semantics exactly;
        // the window must be keyed separately because it is not part of the
        // stream signature.
        let mut tasks: Vec<TaskSpec> = Vec::with_capacity(vertices.len());
        let mut task_owner: Vec<Vertex> = Vec::with_capacity(vertices.len());
        let mut sink_queries: Vec<Vec<usize>> = Vec::with_capacity(vertices.len());
        let mut vertex_task: HashMap<Vertex, usize> = HashMap::with_capacity(vertices.len());
        let mut shared_key: HashMap<(NodeId, u64, PrimSet, Timestamp), usize> = HashMap::new();
        let mut sources_by_origin: HashMap<(NodeId, EventTypeId), Vec<usize>> = HashMap::new();
        let mut sink_tasks = vec![Vec::new(); queries.len()];
        for v in &vertices {
            let proj = ctx.proj(v.proj);
            let query = ctx.query_of(v.proj);
            let query_idx = query_index[&proj.source];
            let is_sink = proj.is_full_query(query);
            if sharing == Sharing::Shared {
                let key = (v.node, proj.stream_sig, proj.prims, query.window());
                if let Some(&i) = shared_key.get(&key) {
                    // Collapse onto the existing task.
                    vertex_task.insert(*v, i);
                    if is_sink {
                        tasks[i].is_sink = true;
                        if !sink_queries[i].contains(&query_idx) {
                            sink_queries[i].push(query_idx);
                        }
                        if !sink_tasks[query_idx].contains(&i) {
                            sink_tasks[query_idx].push(i);
                        }
                    }
                    continue;
                }
                shared_key.insert(key, tasks.len());
            }
            let i = tasks.len();
            let preds = graph.predecessors(*v);
            let kind = if preds.is_empty() {
                assert!(
                    proj.is_primitive(),
                    "source vertex must host a primitive projection"
                );
                let prim = proj.prims.iter().next().unwrap();
                let ty = query.prim_type(prim);
                sources_by_origin.entry((v.node, ty)).or_default().push(i);
                TaskKind::Source {
                    prim,
                    ty,
                    predicates: proj.predicates.clone(),
                }
            } else {
                let mut slots: Vec<PrimSet> =
                    preds.iter().map(|p| ctx.proj(p.proj).prims).collect();
                slots.sort();
                slots.dedup();
                TaskKind::Join { slots }
            };
            if is_sink {
                sink_tasks[query_idx].push(i);
            }
            sink_queries.push(if is_sink { vec![query_idx] } else { Vec::new() });
            vertex_task.insert(*v, i);
            task_owner.push(*v);
            tasks.push(TaskSpec {
                vertex: *v,
                stream_sig: proj.stream_sig,
                node: v.node,
                query_idx,
                prims: proj.prims,
                is_sink,
                modeled_rate: muse_core::cost::projection_output_rate(proj, query, ctx.network),
                kind,
            });
        }

        let mut routes = vec![Vec::new(); tasks.len()];
        for (from, to) in graph.edges() {
            let fi = vertex_task[&from];
            let ti = vertex_task[&to];
            if task_owner[ti] != to {
                // `to` collapsed into a task owned by another vertex: that
                // task's own inputs already produce the full stream, so this
                // edge would only deliver duplicate inputs. Drop it.
                continue;
            }
            let TaskKind::Join { slots } = &tasks[ti].kind else {
                panic!("edge into a source task");
            };
            let from_prims = ctx.proj(from.proj).prims;
            let slot = slots
                .iter()
                .position(|s| *s == from_prims)
                .expect("slot for predecessor projection");
            routes[fi].push(Route {
                target: ti,
                slot,
                remote: from.node != to.node,
            });
        }
        for r in &mut routes {
            r.sort_by_key(|r| (r.target, r.slot));
            r.dedup();
        }
        let fanouts = routes
            .iter()
            .map(|rs| {
                let mut f = Fanout::default();
                for r in rs {
                    if r.remote {
                        f.remote
                            .push((tasks[r.target].node.index(), r.target, r.slot));
                        f.remote_nodes.push(tasks[r.target].node.index());
                    } else {
                        f.local.push((r.target, r.slot));
                    }
                }
                f.remote_nodes.sort_unstable();
                f.remote_nodes.dedup();
                f
            })
            .collect();

        // Discrimination index: per (origin, type) candidate list with
        // precomputed predicate bands, so the executors' inject paths test
        // cheap interval containment before touching any predicate.
        let candidates_by_origin = sources_by_origin
            .iter()
            .map(|(key, task_idxs)| {
                let cands = task_idxs
                    .iter()
                    .map(|&i| {
                        let TaskKind::Source {
                            prim, predicates, ..
                        } = &tasks[i].kind
                        else {
                            unreachable!("sources_by_origin holds source tasks");
                        };
                        SourceCandidate {
                            task: i,
                            bands: derive_bands(&queries[tasks[i].query_idx], *prim, predicates),
                        }
                    })
                    .collect();
                (*key, cands)
            })
            .collect();

        Self {
            queries,
            num_nodes: ctx.network.num_nodes(),
            logical_tasks: vertices.len(),
            tasks,
            routes,
            fanouts,
            sources_by_origin,
            candidates_by_origin,
            sink_tasks,
            sink_queries,
            sharing,
        }
    }

    /// The discrimination-index candidates for events of `ty` generated at
    /// `node`: every source task registered for the pair, each with the
    /// interval bands an event must pass to possibly satisfy the task's
    /// predicates. Allocation-free lookup for the executors' inject paths.
    pub fn candidates_for(&self, node: NodeId, ty: EventTypeId) -> &[SourceCandidate] {
        self.candidates_by_origin
            .get(&(node, ty))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The source tasks receiving events of `ty` generated at `node`.
    pub fn sources_for(&self, node: NodeId, ty: EventTypeId) -> &[usize] {
        self.sources_by_origin
            .get(&(node, ty))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Instantiates the join state for a task (`None` for sources).
    pub fn make_join(&self, task: usize, slack: f64) -> Option<JoinTask> {
        let spec = &self.tasks[task];
        match &spec.kind {
            TaskKind::Source { .. } => None,
            TaskKind::Join { slots } => Some(JoinTask::with_slack(
                &self.queries[spec.query_idx],
                spec.prims,
                slots,
                slack,
            )),
        }
    }

    /// The task's migration identity: the shared-collapse key
    /// `(node, stream_sig, prims, window)` under which
    /// [`muse_verify::migrate`] matches physical tasks across two plans.
    /// [`crate::checkpoint::map_snapshot`] uses it to pair a
    /// [`muse_verify::MigrationPlan`]'s per-task actions with concrete task
    /// indices on both sides.
    pub fn task_key(&self, task: usize) -> muse_verify::TaskKey {
        let spec = &self.tasks[task];
        muse_verify::TaskKey {
            node: spec.node,
            stream_sig: spec.stream_sig,
            prims: spec.prims.bits(),
            window: self.queries[spec.query_idx].window(),
        }
    }

    /// A compact human-readable label for a task, used in telemetry series
    /// and summary tables: `"S3@N0"` for sources, `"J5@N1"` for joins,
    /// with a `!` suffix on sinks (e.g. `"J5@N1!"`).
    pub fn task_label(&self, task: usize) -> String {
        let spec = &self.tasks[task];
        let kind = match spec.kind {
            TaskKind::Source { .. } => 'S',
            TaskKind::Join { .. } => 'J',
        };
        let sink = if spec.is_sink { "!" } else { "" };
        format!("{kind}{task}@N{}{sink}", spec.node.index())
    }

    /// Task indices hosted at a node.
    pub fn tasks_at(&self, node: NodeId) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.node == node)
            .map(|(i, _)| i)
            .collect()
    }

    /// A structural fingerprint of the deployment plan, embedded in
    /// snapshot headers so [`crate::checkpoint::restore`] can reject state
    /// produced under a different plan
    /// ([`crate::checkpoint::CheckpointError::PlanMismatch`]).
    ///
    /// Two deployments built from the same MuSE graph over the same
    /// network and workload fingerprint identically (the hash covers only
    /// plan structure: node count, per-task placement/stream identity/
    /// kind, routes, and query windows — no runtime state), so snapshots
    /// are portable across separately constructed but equal deployments.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical field walk, with a rotate to spread
        // adjacent small integers across the word.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3).rotate_left(23);
        };
        mix(self.num_nodes as u64);
        mix(self.queries.len() as u64);
        for q in &self.queries {
            mix(q.id().0 as u64);
            mix(q.window());
            mix(q.prims().bits());
        }
        mix(self.tasks.len() as u64);
        for t in &self.tasks {
            mix(t.stream_sig);
            mix(t.node.index() as u64);
            mix(t.query_idx as u64);
            mix(t.prims.bits());
            mix(t.is_sink as u64);
            match &t.kind {
                TaskKind::Source {
                    prim,
                    ty,
                    predicates,
                } => {
                    mix(0);
                    mix(prim.0 as u64);
                    mix(ty.0 as u64);
                    for p in predicates {
                        mix(*p as u64);
                    }
                }
                TaskKind::Join { slots } => {
                    mix(1);
                    for s in slots {
                        mix(s.bits());
                    }
                }
            }
        }
        for rs in &self.routes {
            mix(rs.len() as u64);
            for r in rs {
                mix(r.target as u64);
                mix(r.slot as u64);
                mix(r.remote as u64);
            }
        }
        mix(matches!(self.sharing, Sharing::Shared) as u64);
        for qs in &self.sink_queries {
            mix(qs.len() as u64);
            for q in qs {
                mix(*q as u64);
            }
        }
        h
    }

    /// Number of network edges in the deployment.
    pub fn num_remote_routes(&self) -> usize {
        self.routes
            .iter()
            .flat_map(|r| r.iter())
            .filter(|r| r.remote)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::algorithms::amuse::{amuse, AMuseConfig};
    use muse_core::network::{Network, NetworkBuilder};
    use muse_core::query::Pattern;

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    fn fig1_network() -> Network {
        NetworkBuilder::new(3, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .rate(t(0), 100.0)
            .rate(t(1), 100.0)
            .rate(t(2), 1.0)
            .build()
    }

    fn robots_query() -> Query {
        Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            1000,
        )
        .unwrap()
    }

    #[test]
    fn deploys_amuse_plan() {
        let net = fig1_network();
        let q = robots_query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        assert_eq!(deployment.queries.len(), 1);
        assert_eq!(deployment.num_nodes, 3);
        assert_eq!(deployment.tasks.len(), plan.graph.num_vertices());
        // Every sink vertex surfaced.
        assert_eq!(deployment.sink_tasks[0].len(), plan.sinks.len());
        // Source lookup: node 1 generates C (type 0).
        assert!(!deployment.sources_for(n(1), t(0)).is_empty());
        assert!(deployment.sources_for(n(2), t(0)).is_empty());
        // Route counts match graph edges.
        let total_routes: usize = deployment.routes.iter().map(Vec::len).sum();
        assert_eq!(total_routes, plan.graph.num_edges());
    }

    #[test]
    fn join_tasks_instantiate() {
        let net = fig1_network();
        let q = robots_query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let mut joins = 0;
        for i in 0..deployment.tasks.len() {
            match &deployment.tasks[i].kind {
                TaskKind::Source { .. } => assert!(deployment.make_join(i, 1.0).is_none()),
                TaskKind::Join { slots } => {
                    joins += 1;
                    let join = deployment.make_join(i, 1.0).unwrap();
                    assert_eq!(join.slots().len(), slots.len());
                }
            }
        }
        assert!(joins > 0);
    }

    #[test]
    fn remote_routes_match_graph_topology() {
        let net = fig1_network();
        let q = robots_query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let remote_edges = plan.graph.edges().filter(|(a, b)| a.node != b.node).count();
        assert_eq!(deployment.num_remote_routes(), remote_edges);
    }

    #[test]
    fn fingerprint_stable_across_rebuilds_and_sensitive_to_plan() {
        let net = fig1_network();
        let q = robots_query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let a = Deployment::new(&plan.graph, &ctx);
        let b = Deployment::new(&plan.graph, &ctx);
        // Same plan, separately built deployment: same fingerprint.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A different window is a different plan.
        let q2 = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            2000,
        )
        .unwrap();
        let plan2 = amuse(&q2, &net, &AMuseConfig::default()).unwrap();
        let ctx2 = PlanContext::new(std::slice::from_ref(&q2), &net, &plan2.table);
        let c = Deployment::new(&plan2.graph, &ctx2);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn tasks_at_partitions_nodes() {
        let net = fig1_network();
        let q = robots_query();
        let plan = amuse(&q, &net, &AMuseConfig::default()).unwrap();
        let ctx = PlanContext::new(std::slice::from_ref(&q), &net, &plan.table);
        let deployment = Deployment::new(&plan.graph, &ctx);
        let total: usize = (0..3).map(|i| deployment.tasks_at(n(i)).len()).sum();
        assert_eq!(total, deployment.tasks.len());
    }
}
