//! Harness-side telemetry aggregation and export (`--telemetry DIR`).
//!
//! Executors hand back one [`RunTelemetry`] per run; the harness collects
//! them per experiment in a [`TelemetryCollector`] (which also merges every
//! run's registry into one experiment-level registry, the source of the
//! end-of-experiment wall-time/peak-live summary line) and a
//! [`TelemetryOutput`] writes four artifacts into the chosen directory:
//!
//! * `telemetry.json` — per-experiment aggregated registry snapshots,
//!   per-run registry/task/discrimination/recovery/provenance sections,
//!   and histogram-vs-exact latency checks;
//! * `series.jsonl` — every buffered per-task series sample, one JSON
//!   object per line, tagged with its experiment and run;
//! * `trace.jsonl` — the bounded lineage trace rings, tagged likewise;
//! * `provenance.jsonl` — every retained [`ProvenanceRecord`], tagged
//!   likewise (empty unless a run sampled provenance).
//!
//! [`ProvenanceRecord`]: muse_telemetry::ProvenanceRecord

use muse_runtime::metrics::Metrics;
use muse_runtime::telemetry::{names, RunTelemetry, TelemetrySpec};
use muse_telemetry::{GaugeKind, LogHistogram, Registry};
use serde::Serialize;
use serde_json::Value;
use std::path::{Path, PathBuf};

/// One histogram-vs-exact latency quantile comparison, asserting the
/// streaming [`LogHistogram`] stays within its documented relative error of
/// the exact sorted percentile.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyCheck {
    /// Run the check belongs to (e.g. `"matcher/indexed"`).
    pub run: String,
    /// Quantile label (`"p50"` or `"p100"`).
    pub quantile: String,
    /// Exact value from the sorted latency vector.
    pub exact: u64,
    /// Estimate from the streaming histogram.
    pub histogram: u64,
    /// Permitted absolute deviation (`exact · max_relative_error + 1`).
    pub bound: f64,
    /// Whether the estimate lies within the bound.
    pub pass: bool,
}

/// Builds a JSON object from string keys and values.
fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Per-experiment telemetry collection: the runs' telemetry payloads, an
/// experiment-level aggregated registry, and the latency parity checks.
pub struct TelemetryCollector {
    spec: TelemetrySpec,
    registry: Registry,
    runs: Vec<(String, RunTelemetry)>,
    checks: Vec<LatencyCheck>,
}

impl Default for TelemetryCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryCollector {
    /// Creates a collector with the default [`TelemetrySpec`].
    pub fn new() -> Self {
        Self {
            spec: TelemetrySpec::default(),
            registry: Registry::new(),
            runs: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// The spec to hand to executor configs.
    pub fn spec(&self) -> TelemetrySpec {
        self.spec.clone()
    }

    /// Absorbs one run's telemetry under the given label, folding its
    /// registry into the experiment-level aggregate.
    pub fn record_run(&mut self, label: &str, run: RunTelemetry) {
        self.registry.merge(&run.registry);
        self.runs.push((label.to_string(), run));
    }

    /// Compares the streaming histogram's p50/p100 against the exact sorted
    /// percentiles of `metrics` (no-op when the run had no matches).
    pub fn check_latency(&mut self, run: &str, metrics: &Metrics) {
        let Some(exact) = metrics.latency_summary() else {
            return;
        };
        for (label, q, exact) in [("p50", 0.5, exact[2]), ("p100", 1.0, exact[4])] {
            let est = metrics.latency_hist.quantile(q).unwrap_or(0);
            let bound = exact as f64 * LogHistogram::max_relative_error() + 1.0;
            self.checks.push(LatencyCheck {
                run: run.to_string(),
                quantile: label.to_string(),
                exact,
                histogram: est,
                bound,
                pass: (est as f64 - exact as f64).abs() <= bound,
            });
        }
    }

    /// Records the experiment's wall time into the aggregated registry
    /// (the summary line reads it back from there).
    pub fn set_wall_ns(&mut self, ns: u64) {
        let g = self.registry.gauge(names::RUN_WALL_NS, GaugeKind::Max);
        self.registry.gauge_peak(g, ns);
    }

    /// `true` when every latency check passed (vacuously true without
    /// checks).
    pub fn checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The collected runs, in recording order.
    pub fn runs(&self) -> impl Iterator<Item = &(String, RunTelemetry)> {
        self.runs.iter()
    }

    /// The latency checks recorded so far.
    pub fn checks(&self) -> &[LatencyCheck] {
        &self.checks
    }

    /// One-line experiment summary sourced from the aggregated registry:
    /// wall time and peak live partial matches.
    pub fn summary_line(&self) -> String {
        let wall_ms = self.registry.gauge_value(names::RUN_WALL_NS).unwrap_or(0) as f64 / 1e6;
        let peak = self
            .registry
            .gauge_value(names::JOIN_PEAK_LIVE)
            .unwrap_or(0);
        format!("wall {wall_ms:.1} ms, peak live matches {peak} [registry]")
    }

    fn section(&self, experiment: &str) -> Value {
        let runs: Vec<Value> = self
            .runs
            .iter()
            .map(|(label, run)| {
                obj(vec![
                    ("run", label.to_value()),
                    ("clock", run.clock.to_value()),
                    ("registry", run.registry.snapshot().to_value()),
                    ("tasks", run.tasks.to_value()),
                    (
                        "series",
                        obj(vec![
                            ("len", (run.series.len() as u64).to_value()),
                            ("dropped", run.series.dropped().to_value()),
                        ]),
                    ),
                    (
                        "trace",
                        obj(vec![
                            ("len", (run.trace.len() as u64).to_value()),
                            ("dropped", run.trace.dropped().to_value()),
                        ]),
                    ),
                    (
                        "provenance",
                        obj(vec![
                            ("len", (run.provenance.len() as u64).to_value()),
                            ("dropped", run.provenance.dropped().to_value()),
                            ("summary", run.provenance_summary().to_value()),
                        ]),
                    ),
                    ("discrimination", run.discrimination_summary().to_value()),
                    ("recovery", run.recovery_summary().to_value()),
                ])
            })
            .collect();
        obj(vec![
            ("experiment", experiment.to_value()),
            ("registry", self.registry.snapshot().to_value()),
            ("runs", Value::Array(runs)),
            ("latency_checks", self.checks.to_value()),
        ])
    }
}

/// Tags a serialized record with its experiment and run, one JSONL line.
fn tagged_line<T: Serialize>(experiment: &str, run: &str, rec: &T) -> String {
    let mut v = rec.to_value();
    if let Value::Object(map) = &mut v {
        map.insert("experiment".to_string(), experiment.to_value());
        map.insert("run".to_string(), run.to_value());
    }
    serde_json::to_string(&v).expect("value renders as JSON")
}

/// Accumulates every experiment's telemetry and writes the export files.
#[derive(Default)]
pub struct TelemetryOutput {
    experiments: Vec<Value>,
    series: String,
    trace: String,
    provenance: String,
}

impl TelemetryOutput {
    /// Creates an empty output.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished experiment's collector into the output.
    pub fn add(&mut self, experiment: &str, collector: &TelemetryCollector) {
        self.experiments.push(collector.section(experiment));
        for (label, run) in collector.runs() {
            for rec in run.series.records() {
                self.series.push_str(&tagged_line(experiment, label, rec));
                self.series.push('\n');
            }
            for rec in run.trace.records() {
                self.trace.push_str(&tagged_line(experiment, label, rec));
                self.trace.push('\n');
            }
            for rec in run.provenance.records() {
                self.provenance
                    .push_str(&tagged_line(experiment, label, rec));
                self.provenance.push('\n');
            }
        }
    }

    /// Writes `telemetry.json`, `series.jsonl`, `trace.jsonl`, and
    /// `provenance.jsonl` into `dir` (created if missing). Returns the
    /// written paths.
    pub fn write(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let doc = obj(vec![(
            "experiments",
            Value::Array(self.experiments.clone()),
        )]);
        let text = serde_json::to_string_pretty(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let json_path = dir.join("telemetry.json");
        std::fs::write(&json_path, text)?;
        let series_path = dir.join("series.jsonl");
        std::fs::write(&series_path, &self.series)?;
        let trace_path = dir.join("trace.jsonl");
        std::fs::write(&trace_path, &self.trace)?;
        let prov_path = dir.join("provenance.jsonl");
        std::fs::write(&prov_path, &self.provenance)?;
        Ok(vec![json_path, series_path, trace_path, prov_path])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_runtime::telemetry::ClockDomain;

    #[test]
    fn latency_check_passes_on_histogram_fed_metrics() {
        let mut metrics = Metrics::new(1);
        for l in [5u64, 100, 2_000, 30_000, 400_000] {
            metrics.record_latency(l);
        }
        let mut c = TelemetryCollector::new();
        c.check_latency("t", &metrics);
        assert_eq!(c.checks().len(), 2);
        assert!(c.checks_pass(), "checks: {:?}", c.checks());
    }

    #[test]
    fn summary_line_reads_registry() {
        let mut c = TelemetryCollector::new();
        c.set_wall_ns(2_500_000);
        assert!(c.summary_line().contains("wall 2.5 ms"));
    }

    #[test]
    fn output_writes_tagged_jsonl() {
        let mut c = TelemetryCollector::new();
        let mut run = RunTelemetry::new(ClockDomain::VirtualTicks, &c.spec());
        run.series.push(muse_telemetry::SeriesRecord {
            t: 7,
            task: 0,
            node: 0,
            label: "J0".into(),
            queue_depth: 1,
            live_matches: 2,
            watermark_lag: 0,
            inputs: 1,
            probes: 1,
            evictions: 0,
            emitted: 0,
        });
        c.record_run("r0", run);
        let mut out = TelemetryOutput::new();
        out.add("exp", &c);
        let line = serde_json::parse(out.series.lines().next().unwrap()).unwrap();
        let map = line.as_object().unwrap();
        assert_eq!(map.get("experiment").and_then(Value::as_str), Some("exp"));
        assert_eq!(map.get("run").and_then(Value::as_str), Some("r0"));
        assert!(map.contains_key("t"));
        // The experiment section carries the latency-check array.
        let section = out.experiments[0].as_object().unwrap();
        assert!(section.contains_key("latency_checks"));
        assert!(section.contains_key("registry"));
    }
}
