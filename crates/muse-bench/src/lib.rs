//! # muse-bench
//!
//! The experiment harness reproducing every table and figure of the MuSE
//! graphs paper's evaluation (§7):
//!
//! | Paper artifact | Function | Harness target |
//! |---|---|---|
//! | Fig. 5a/5b | transmission ratio vs. event-node ratio | `fig5a`, `fig5b` |
//! | Fig. 5c/5d | transmission ratio vs. network size | `fig5c`, `fig5d` |
//! | Fig. 6a/6b | transmission ratio vs. event rate skew | `fig6a`, `fig6b` |
//! | Fig. 7a/7b | transmission ratio vs. query selectivity | `fig7a`, `fig7b` |
//! | Fig. 7c | transmission ratio vs. workload size | `fig7c` |
//! | Fig. 7d | construction time and projection counts | `fig7d` |
//! | Table 3 | case-study transmission ratios (AND/SEQ/QWL) | `table3` |
//! | Fig. 8 | case-study latency and throughput (MS vs. OP) | `fig8` |
//!
//! Run with `cargo run -p muse-bench --release --bin harness -- all`.
//! Criterion micro/ablation benches live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod experiments;
pub mod matcher_stress;
pub mod observe;
pub mod runner;
pub mod stats;
pub mod telemetry;
pub mod transport_stress;

pub use experiments::{all_experiments, run_experiment, ExperimentOutput};
pub use runner::{evaluate_workload, StrategyCosts, SweepSettings};
pub use telemetry::{TelemetryCollector, TelemetryOutput};
