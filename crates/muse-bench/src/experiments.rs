//! The experiments of §7, one function per table/figure.
//!
//! Simulation experiments (Figs. 5-7) compute plan costs analytically via
//! the cost model, exactly like the paper's simulation study; the case
//! study (Table 3, Fig. 8) actually executes the plans on the runtime over
//! the synthetic cluster trace.

use crate::runner::{evaluate_workload, RatioPoint, StrategyCosts, SweepSettings};
use crate::stats::summarize;
use crate::telemetry::TelemetryCollector;
use muse_core::algorithms::amuse::AMuseConfig;
use muse_core::algorithms::baselines::placement_to_graph;
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::graph::PlanContext;
use muse_core::projection::ProjectionTable;
use muse_core::workload::Workload;
use muse_runtime::deploy::Deployment;
use muse_runtime::sim::{run_simulation, SimConfig};
use muse_runtime::threaded::{run_threaded, ThreadedConfig};
use muse_sim::cluster_trace::{
    generate_cluster_trace, query1_source, query2_source, ClusterTraceConfig,
};
use muse_sim::network_gen::{generate_network, NetworkConfig};
use muse_sim::workload_gen::{generate_workload, WorkloadConfig};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Output of one experiment: a ratio sweep, a construction-statistics
/// table, the case-study table, or the case-study latency/throughput runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ExperimentOutput {
    /// Transmission-ratio sweep (Figs. 5-7c).
    RatioSweep {
        /// Experiment id (e.g. "fig5a").
        id: String,
        /// Human-readable description.
        title: String,
        /// Name of the swept parameter.
        x_label: String,
        /// Measured points.
        points: Vec<RatioPoint>,
    },
    /// Construction efficiency (Fig. 7d).
    Construction {
        /// Experiment id ("fig7d").
        id: String,
        /// Rows: (setting, aMuSE ms, aMuSE* ms, aMuSE #proj, aMuSE* #proj).
        rows: Vec<ConstructionRow>,
    },
    /// Case-study transmission ratios (Table 3).
    CaseStudyTable {
        /// Experiment id ("table3").
        id: String,
        /// Rows: per scenario, measured transmission ratios.
        rows: Vec<CaseStudyRow>,
    },
    /// Case-study latency/throughput (Fig. 8).
    CaseStudyRuns {
        /// Experiment id ("fig8").
        id: String,
        /// Per-scenario latency and throughput of MS vs. OP.
        rows: Vec<RunRow>,
    },
    /// Threaded-executor transport throughput: batched/backpressured vs.
    /// naive per-match shipping (written as `BENCH_executor.json`; not a
    /// paper artifact).
    ExecutorBench {
        /// Experiment id ("executor").
        id: String,
        /// Workload executed ("relay": the transport-bound relay topology).
        scenario: String,
        /// Events injected per run.
        events: u64,
        /// Messages per frame before an eager flush (batched transport).
        batch: usize,
        /// Bounded per-node channel capacity, in frames.
        capacity: usize,
        /// Batched-transport measurements.
        batched: TransportRunRow,
        /// Naive-transport measurements.
        naive: TransportRunRow,
        /// Batched events/sec over naive events/sec.
        speedup: f64,
        /// Whether both transports produced identical per-query match sets.
        fingerprints_equal: bool,
    },
    /// Threaded-executor crash recovery (§7.3 Ambrosia): uninterrupted
    /// baseline vs. chunk-boundary checkpointing vs. an injected node
    /// crash with restore-and-replay recovery (written as
    /// `BENCH_faults.json`; not a paper artifact).
    FaultBench {
        /// Experiment id ("faults").
        id: String,
        /// Workload executed ("relay": the transport-bound relay topology).
        scenario: String,
        /// Events injected per run.
        events: u64,
        /// Node whose crash is injected (a join-hosting center node).
        crash_node: usize,
        /// Injection index at that node where the crash fires.
        crash_at: u64,
        /// Simulated downtime before the node restarts, in milliseconds.
        restart_delay_ms: f64,
        /// Uninterrupted run, no resilience machinery.
        baseline: FaultRunRow,
        /// Chunk-boundary checkpointing on, no crash.
        checkpointed: FaultRunRow,
        /// Checkpointing plus the injected crash and recovery.
        crashed: FaultRunRow,
        /// Checkpointed wall time over baseline wall time.
        checkpoint_overhead: f64,
        /// Crashed-run wall time over baseline wall time.
        recovery_overhead: f64,
        /// Whether all three runs produced identical per-query match sets
        /// (the losslessness gate CI checks).
        fingerprints_equal: bool,
    },
    /// Matcher join-engine throughput: indexed vs. naive reference
    /// (written as `BENCH_matcher.json`; not a paper artifact).
    MatcherBench {
        /// Experiment id ("matcher").
        id: String,
        /// Join arrivals fed per engine run.
        arrivals: u64,
        /// Query window (ticks).
        window: u64,
        /// Eviction slack factor (the threaded executor's default).
        slack: f64,
        /// Indexed engine measurements.
        indexed: MatcherEngineRow,
        /// Naive reference engine measurements.
        naive: MatcherEngineRow,
        /// Indexed events/sec over naive events/sec.
        speedup: f64,
        /// Whether both engines emitted identical fingerprint streams.
        fingerprints_equal: bool,
    },
    /// Shared multi-query evaluation at scale: throughput, per-event
    /// candidate-set size, and resident partials as the number of
    /// concurrent queries grows, with shared-plan execution gated on
    /// fingerprint equality against independent per-query evaluation
    /// (written as `BENCH_multiquery.json`; not a paper artifact).
    MultiQueryBench {
        /// Experiment id ("multiquery").
        id: String,
        /// Events injected per run (one trace shared by all sweep points).
        events: u64,
        /// Per-sweep-point measurements, in ascending query count.
        points: Vec<MultiQueryRow>,
        /// Whether shared and independent evaluation agreed at every point.
        fingerprints_equal: bool,
        /// Whether shared-mode wall time grew sublinearly in the query
        /// count between the smallest and largest sweep points.
        sublinear: bool,
    },
    /// Observability stack end-to-end (written as `BENCH_observe.json`;
    /// not a paper artifact): provenance-tracing overhead on the threaded
    /// relay workload, witness-closure replay and cost-model drift on the
    /// calibrated `SEQ` workload, and the crash flight recorder.
    ObserveBench {
        /// Experiment id ("observe").
        id: String,
        /// Events injected per overhead run (relay trace length).
        events: u64,
        /// Provenance sampling divisor of the "sampled" overhead mode.
        sample: u64,
        /// Overhead modes, in order: off, disabled, sampled, full.
        overhead: Vec<ObserveModeRow>,
        /// Disabled-provenance telemetry stayed under 5% wall overhead.
        disabled_ok: bool,
        /// 1-in-`sample` provenance stayed under 15% wall overhead.
        sampled_ok: bool,
        /// Simulator and threaded executor produced identical per-query
        /// match sets on the relay trace.
        fingerprints_equal: bool,
        /// Provenance records captured by the witness run (sample = 1).
        provenance_records: u64,
        /// Mean witness events per record.
        mean_witness: f64,
        /// Every record's witness set replayed to a byte-identical match.
        witnesses_reproduce: bool,
        /// Rate-weighted drift score on the stationary calibrated trace.
        stationary_score: f64,
        /// Stationary score stayed under 0.10.
        stationary_ok: bool,
        /// Rate-weighted drift score on the 3x rate-shifted trace.
        shifted_score: f64,
        /// Shifted score exceeded 0.5.
        shifted_detected: bool,
        /// Drift-monitored vertices in the calibrated deployment.
        drift_vertices: usize,
        /// Full per-vertex drift report for the stationary trace.
        stationary_drift: muse_runtime::drift::CostDrift,
        /// Full per-vertex drift report for the rate-shifted trace.
        shifted_drift: muse_runtime::drift::CostDrift,
        /// Flight records recovered from the injected crash's dump.
        flight_records: u64,
        /// Pretty-printed tail of the crashed node's flight timeline.
        flight_timeline: String,
    },
    /// Live-migration soundness gate (written as `BENCH_migrate.json`; not
    /// a paper artifact): a run under plan A is snapshotted mid-trace, the
    /// A→B plan diff is certified by `muse-verify`'s migration pass, and
    /// the mapped snapshot resumes under B in both executors with match
    /// sets checked against an uninterrupted run. The narrowed-window pair
    /// must be refused by the verifier AND fail the mapped restore —
    /// `scripts/ci.sh` greps both flags.
    MigrateBench {
        /// Experiment id ("migrate").
        id: String,
        /// Events injected per run.
        events: u64,
        /// Old plan's window (ticks); the identity pair keeps it.
        window_old: u64,
        /// Widened window of the certified-with-replay pair (ticks).
        window_wide: u64,
        /// Narrowed window of the refused pair (ticks).
        window_narrow: u64,
        /// Tasks matched across the identity migration's plan diff.
        matched_tasks: usize,
        /// Verifier certified the identity migration with no replay.
        identity_certified: bool,
        /// Simulator resume matched the uninterrupted run's match sets.
        sim_identical: bool,
        /// Threaded resume matched the uninterrupted run's match sets.
        threaded_identical: bool,
        /// Certified migration restored fingerprint-identical in BOTH
        /// executors (the CI gate).
        certified_identical: bool,
        /// Widened pair certified with a replay obligation and restored.
        widened_certified_with_replay: bool,
        /// Verifier refused the narrowed pair.
        narrow_refused: bool,
        /// Mapped restore of the refused pair failed with
        /// `MigrationRejected` (the CI gate).
        rejected_fails: bool,
        /// Complete matches delivered by the migrated simulator run.
        migrated_matches: u64,
    },
}

/// One telemetry mode's wall-clock measurement in the observe bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObserveModeRow {
    /// Mode name ("off", "disabled", "sampled", or "full").
    pub mode: String,
    /// Wall-clock time of the best rep, milliseconds.
    pub wall_ms: f64,
    /// Wall time relative to the "off" mode (1.0 = no overhead).
    pub overhead: f64,
    /// Provenance records held at end of run.
    pub provenance_records: u64,
    /// Provenance records evicted by the ring bound.
    pub provenance_dropped: u64,
}

/// One transport mode's measurements in the executor bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransportRunRow {
    /// Transport name ("batched" or "naive").
    pub transport: String,
    /// Injected events per wall-clock second (best of reps).
    pub events_per_sec: f64,
    /// Wall-clock time of the best rep, milliseconds.
    pub wall_ms: f64,
    /// Sink-latency five-number summary in microseconds (best rep).
    pub latency_us: [f64; 5],
    /// Complete matches produced.
    pub matches: u64,
    /// Frames pushed onto inter-node channels.
    pub frames_sent: u64,
    /// Messages carried inside those frames.
    pub messages_framed: u64,
    /// Mean realized batch size (messages per frame).
    pub mean_batch: f64,
    /// `try_send` attempts rejected by a full channel.
    pub blocked_sends: u64,
    /// Fraction of frame buffers served from the recycling pool.
    pub pool_reuse_ratio: f64,
    /// Peak frames in flight to any single node.
    pub peak_queue_depth: u64,
}

/// One resilience mode's measurements in the faults bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRunRow {
    /// Mode name ("baseline", "checkpointed", or "crashed").
    pub mode: String,
    /// Injected events per wall-clock second (best of reps).
    pub events_per_sec: f64,
    /// Wall-clock time of the best rep, milliseconds.
    pub wall_ms: f64,
    /// Complete matches produced.
    pub matches: u64,
    /// Node crashes taken (0 except in the crashed mode).
    pub crashes: u64,
    /// Chunk-boundary snapshots written across all nodes.
    pub snapshots_taken: u64,
    /// Cumulative encoded snapshot bytes.
    pub snapshot_bytes: u64,
    /// Messages re-delivered to the restarted node from peer replay logs.
    pub replayed_messages: u64,
    /// Duplicate replay deliveries suppressed by receivers.
    pub suppressed_sends: u64,
    /// Sender retry rounds against the downed node (bounded backoff).
    pub send_retries: u64,
    /// Wall milliseconds from crash to fully restored state.
    pub recovery_ms: f64,
}

/// One engine's measurements in the matcher bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatcherEngineRow {
    /// Engine name ("indexed" or "naive").
    pub engine: String,
    /// Join arrivals processed per wall-clock second (best of reps).
    pub events_per_sec: f64,
    /// Complete matches emitted.
    pub matches_emitted: u64,
    /// Peak simultaneously open (live) partial matches in the join stores.
    pub peak_open_partials: u64,
    /// Wall-clock time of the best rep, milliseconds.
    pub wall_ms: f64,
}

/// One sweep point of the multi-query bench.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiQueryRow {
    /// Concurrent queries registered at this point.
    pub queries: usize,
    /// Distinct query structures the planner actually constructed (the
    /// rest reused an earlier plan via structural memoization).
    pub distinct_plans: usize,
    /// Logical tasks (graph vertices) before sharing collapsed them.
    pub logical_tasks: usize,
    /// Physical tasks after shared-projection collapsing.
    pub physical_tasks: usize,
    /// Shared-plan events per wall-clock second (best of reps).
    pub shared_events_per_sec: f64,
    /// Shared-plan wall time of the best rep, milliseconds.
    pub shared_wall_ms: f64,
    /// Independent per-query-task events per wall-clock second.
    pub independent_events_per_sec: f64,
    /// Independent-evaluation wall time, milliseconds.
    pub independent_wall_ms: f64,
    /// Shared events/sec over independent events/sec.
    pub speedup: f64,
    /// Mean discrimination-index candidates per event, shared plan.
    pub mean_candidates_shared: f64,
    /// Mean discrimination-index candidates per event, independent plan.
    pub mean_candidates_independent: f64,
    /// Share of considered candidates rejected by the band filter before
    /// any predicate evaluation (shared plan).
    pub filtered_pct: f64,
    /// Peak concurrently-buffered partial matches, shared plan.
    pub peak_partials_shared: u64,
    /// Peak concurrently-buffered partial matches, independent plan.
    pub peak_partials_independent: u64,
    /// Complete matches delivered across all logical sinks.
    pub matches: u64,
    /// Whether both evaluation modes produced identical per-query match
    /// sets at this point.
    pub fingerprints_equal: bool,
}

/// One Fig. 7d row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstructionRow {
    /// Experiment setting this row belongs to.
    pub setting: String,
    /// aMuSE construction time (milliseconds, median across seeds).
    pub amuse_ms: f64,
    /// aMuSE* construction time (milliseconds, median).
    pub amuse_star_ms: f64,
    /// Beneficial projections explored by aMuSE (median).
    pub amuse_projections: f64,
    /// Beneficial projections explored by aMuSE* (median).
    pub amuse_star_projections: f64,
}

/// One Table 3 row: measured (executed) transmission ratios.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudyRow {
    /// Scenario: "AND", "SEQ", or "QWL".
    pub scenario: String,
    /// aMuSE transmission ratio (messages / injected events).
    pub amuse_ratio: f64,
    /// oOP transmission ratio.
    pub oop_ratio: f64,
    /// Matches found (sanity: both plans must agree).
    pub matches: u64,
}

/// One Fig. 8 row: executed latency/throughput of a strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRow {
    /// Scenario: "AND", "SEQ", or "QWL".
    pub scenario: String,
    /// Strategy: "MS" (MuSE graph) or "OP" (operator placement).
    pub strategy: String,
    /// Wall-clock latency five-number summary in microseconds.
    pub latency_us: [f64; 5],
    /// Injected events per wall-clock second.
    pub events_per_sec: f64,
    /// Matches produced.
    pub matches: u64,
}

/// The ids of all experiments, in paper order. The `ablation` experiment is
/// not a paper artifact (it quantifies this implementation's design
/// choices) and is therefore not part of `all`; run it explicitly.
pub fn all_experiments() -> Vec<&'static str> {
    vec![
        "fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b", "fig7a", "fig7b", "fig7c", "fig7d",
        "table3", "fig8",
    ]
}

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id; see [`all_experiments`].
pub fn run_experiment(id: &str, settings: &SweepSettings) -> ExperimentOutput {
    run_experiment_telemetry(id, settings, None)
}

/// Runs one experiment by id, optionally collecting executor telemetry.
/// Only the experiments that actually execute plans (`table3`, `fig8`,
/// `matcher`) produce telemetry; the analytic sweeps ignore the collector.
///
/// # Panics
///
/// Panics on an unknown id; see [`all_experiments`].
pub fn run_experiment_telemetry(
    id: &str,
    settings: &SweepSettings,
    tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    match id {
        "fig5a" => fig5_event_node_ratio(id, false, settings),
        "fig5b" => fig5_event_node_ratio(id, true, settings),
        "fig5c" => fig5_network_size(id, false, settings),
        "fig5d" => fig5_network_size(id, true, settings),
        "fig6a" => fig6_event_skew(id, false, settings),
        "fig6b" => fig6_event_skew(id, true, settings),
        "fig7a" => fig7_selectivity(id, false, settings),
        "fig7b" => fig7_selectivity(id, true, settings),
        "fig7c" => fig7_workload_size(id, settings),
        "fig7d" => fig7_construction(id, settings),
        "table3" => table3_case_study(id, settings, tel),
        "fig8" => fig8_case_study(id, settings, tel),
        "ablation" => ablation(id, settings),
        "matcher" => matcher_bench(id, settings, tel),
        "executor" => executor_bench(id, settings, tel),
        "faults" => faults_bench(id, settings, tel),
        "multiquery" => multiquery_bench(id, settings, tel),
        "observe" => observe_bench(id, settings, tel),
        "migrate" => migrate_bench(id, settings, tel),
        other => panic!("unknown experiment '{other}'; see `all_experiments()`"),
    }
}

/// Builds the (network, workload) instance of a simulation experiment.
fn instance(
    net_cfg: &NetworkConfig,
    wl_cfg: &WorkloadConfig,
) -> (muse_core::network::Network, Workload) {
    let network = generate_network(net_cfg);
    let workload = generate_workload(wl_cfg);
    (network, workload)
}

fn base_configs(large: bool, seed: u64) -> (NetworkConfig, WorkloadConfig) {
    if large {
        (
            NetworkConfig {
                seed,
                ..NetworkConfig::large()
            },
            WorkloadConfig {
                seed,
                ..WorkloadConfig::large()
            },
        )
    } else {
        (
            NetworkConfig {
                seed,
                ..Default::default()
            },
            WorkloadConfig {
                seed,
                ..Default::default()
            },
        )
    }
}

fn sweep(
    id: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    settings: &SweepSettings,
    mut make: impl FnMut(f64, u64) -> StrategyCosts,
) -> ExperimentOutput {
    let points = xs
        .iter()
        .map(|&x| {
            let costs: Vec<StrategyCosts> = settings.seeds().map(|seed| make(x, seed)).collect();
            RatioPoint::collect(x, &costs)
        })
        .collect();
    ExperimentOutput::RatioSweep {
        id: id.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        points,
    }
}

/// Fig. 5a/5b: varying the event node ratio.
fn fig5_event_node_ratio(id: &str, large: bool, settings: &SweepSettings) -> ExperimentOutput {
    let xs = [0.2, 0.4, 0.6, 0.8, 1.0];
    sweep(
        id,
        "Transmission ratio vs. event node ratio",
        "event node ratio",
        &xs,
        settings,
        |x, seed| {
            let (mut nc, wc) = base_configs(large, seed);
            nc.event_node_ratio = x;
            let (net, w) = instance(&nc, &wc);
            evaluate_workload(&w, &net)
        },
    )
}

/// Fig. 5c/5d: varying the network size.
fn fig5_network_size(id: &str, large: bool, settings: &SweepSettings) -> ExperimentOutput {
    let xs: Vec<f64> = if large {
        vec![20.0, 40.0, 60.0, 80.0, 100.0]
    } else {
        vec![10.0, 20.0, 30.0, 40.0, 50.0]
    };
    sweep(
        id,
        "Transmission ratio vs. network size",
        "nodes",
        &xs,
        settings,
        move |x, seed| {
            let (mut nc, wc) = base_configs(large, seed);
            nc.nodes = x as usize;
            let (net, w) = instance(&nc, &wc);
            evaluate_workload(&w, &net)
        },
    )
}

/// Fig. 6a/6b: varying the event rate skew.
fn fig6_event_skew(id: &str, large: bool, settings: &SweepSettings) -> ExperimentOutput {
    let xs = [1.1, 1.4, 1.7, 2.0];
    sweep(
        id,
        "Transmission ratio vs. event skew",
        "zipf exponent",
        &xs,
        settings,
        move |x, seed| {
            let (mut nc, wc) = base_configs(large, seed);
            nc.rate_skew = x;
            let (net, w) = instance(&nc, &wc);
            evaluate_workload(&w, &net)
        },
    )
}

/// Fig. 7a/7b: varying the minimal selectivity.
fn fig7_selectivity(id: &str, large: bool, settings: &SweepSettings) -> ExperimentOutput {
    let xs = [0.01, 0.05, 0.1, 0.15, 0.2];
    sweep(
        id,
        "Transmission ratio vs. minimal selectivity",
        "min selectivity",
        &xs,
        settings,
        move |x, seed| {
            let (nc, mut wc) = base_configs(large, seed);
            wc.selectivity_min = x;
            wc.selectivity_max = 0.2f64.max(x);
            let (net, w) = instance(&nc, &wc);
            evaluate_workload(&w, &net)
        },
    )
}

/// Fig. 7c: varying the workload size.
fn fig7_workload_size(id: &str, settings: &SweepSettings) -> ExperimentOutput {
    let xs = [1.0, 5.0, 10.0, 15.0, 20.0];
    sweep(
        id,
        "Transmission ratio vs. workload size",
        "queries",
        &xs,
        settings,
        move |x, seed| {
            let (nc, mut wc) = base_configs(false, seed);
            wc.queries = x as usize;
            let (net, w) = instance(&nc, &wc);
            evaluate_workload(&w, &net)
        },
    )
}

/// Fig. 7d: construction time and number of considered projections for the
/// default and large settings.
fn fig7_construction(id: &str, settings: &SweepSettings) -> ExperimentOutput {
    let mut rows = Vec::new();
    for (setting, large) in [
        ("default (20 nodes, 5 queries)", false),
        ("large (50 nodes, 15 queries)", true),
    ] {
        let costs: Vec<StrategyCosts> = settings
            .seeds()
            .map(|seed| {
                let (nc, wc) = base_configs(large, seed);
                let (net, w) = instance(&nc, &wc);
                evaluate_workload(&w, &net)
            })
            .collect();
        let med = |f: &dyn Fn(&StrategyCosts) -> f64| {
            let v: Vec<f64> = costs.iter().map(f).collect();
            summarize(&v).median
        };
        rows.push(ConstructionRow {
            setting: setting.to_string(),
            amuse_ms: med(&|c| c.amuse_time.as_secs_f64() * 1e3),
            amuse_star_ms: med(&|c| c.amuse_star_time.as_secs_f64() * 1e3),
            amuse_projections: med(&|c| c.amuse_projections as f64),
            amuse_star_projections: med(&|c| c.amuse_star_projections as f64),
        });
    }
    ExperimentOutput::Construction {
        id: id.to_string(),
        rows,
    }
}

/// Ablation of this implementation's design choices (DESIGN.md §3b):
/// multi-sink placements on/off and the bounded combination enumeration,
/// across the event-node-ratio sweep. Reported like a ratio sweep with the
/// strategies reinterpreted: `amuse` = full aMuSE, `amuse_star` = multi-sink
/// disabled, `oop` = combination cap reduced to 50.
fn ablation(id: &str, settings: &SweepSettings) -> ExperimentOutput {
    let xs = [0.2, 0.4, 0.6, 0.8, 1.0];
    let run = |config: &AMuseConfig, x: f64, seed: u64| -> f64 {
        let (mut nc, wc) = base_configs(false, seed);
        nc.event_node_ratio = x;
        let (net, w) = instance(&nc, &wc);
        let central = muse_core::algorithms::baselines::centralized_cost(w.queries(), &net);
        let plan = amuse_workload(&w, &net, config).expect("plans");
        plan.total_cost / central.max(f64::MIN_POSITIVE)
    };
    let points = xs
        .iter()
        .map(|&x| {
            let full: Vec<f64> = settings
                .seeds()
                .map(|s| run(&AMuseConfig::default(), x, s))
                .collect();
            let no_ms: Vec<f64> = settings
                .seeds()
                .map(|s| {
                    run(
                        &AMuseConfig {
                            disable_multi_sink: true,
                            ..Default::default()
                        },
                        x,
                        s,
                    )
                })
                .collect();
            let small_cap: Vec<f64> = settings
                .seeds()
                .map(|s| {
                    run(
                        &AMuseConfig {
                            max_combinations: 50,
                            ..Default::default()
                        },
                        x,
                        s,
                    )
                })
                .collect();
            RatioPoint {
                x,
                amuse: full,
                amuse_star: no_ms,
                oop: small_cap,
            }
        })
        .collect();
    ExperimentOutput::RatioSweep {
        id: id.to_string(),
        title: "Ablation: full aMuSE vs. no multi-sink vs. combination cap 50".to_string(),
        x_label: "event node ratio".to_string(),
        points,
    }
}

/// The three case-study scenarios: each is a (name, query sources) pair.
fn case_study_scenarios() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("SEQ", vec![query1_source()]),
        ("AND", vec![query2_source()]),
        ("QWL", vec![query1_source(), query2_source()]),
    ]
}

/// Builds the cluster-trace instance and parses a scenario's workload.
///
/// Planning statistics are *estimated from the trace*, as a real system
/// would: rates are re-derived in window units (events per 30 min window
/// per node) and predicate selectivities come from empirical same-id pair
/// counts ([`muse_sim::stats_est`]); naive independence assumptions would
/// mislead the planner because a task's life-cycle events are strongly
/// correlated in both id and time.
fn case_study_instance(
    sources: &[&str],
    jobs: usize,
    seed: u64,
) -> (muse_sim::cluster_trace::ClusterTrace, Workload) {
    let mut trace = generate_cluster_trace(&ClusterTraceConfig {
        jobs,
        seed,
        ..Default::default()
    });
    let cfg = ClusterTraceConfig::default();
    let window = 30 * 60 * 1000; // the queries' WITHIN 30min
    let options = muse_core::query::parser::ParserOptions::default();
    let mut workload = Workload::parse(trace.catalog.clone(), sources.iter().copied(), &options)
        .expect("case-study queries parse");

    let attrs = [
        trace.catalog.attr("jID").unwrap(),
        trace.catalog.attr("uID").unwrap(),
    ];
    let selectivities = muse_sim::stats_est::PairSelectivities::estimate(
        &trace.events,
        window,
        &attrs,
        cfg.duration_ms,
    );
    for q in workload.queries_mut() {
        selectivities.apply_to_query(q);
    }
    trace.network = muse_sim::stats_est::rates_per_window(
        &trace.network,
        &trace.events,
        window,
        cfg.duration_ms,
    );
    (trace, workload)
}

/// Deploys the aMuSE plan and the oOP plan of a workload on the cluster
/// network. Returns `(muse deployment, oop deployment)`.
fn case_study_deployments(
    trace: &muse_sim::cluster_trace::ClusterTrace,
    workload: &Workload,
) -> (Deployment, Deployment) {
    let plan = amuse_workload(workload, &trace.network, &AMuseConfig::default())
        .expect("aMuSE plans the case study");
    let ctx = PlanContext::new(workload.queries(), &trace.network, &plan.table);
    let muse_deployment = Deployment::new(&plan.merged, &ctx);

    let mut table = ProjectionTable::new();
    let mut oop_graph = muse_core::graph::MuseGraph::new();
    let placements =
        muse_core::algorithms::baselines::optimal_operator_placement_workload_placements(
            workload.queries(),
            &trace.network,
        );
    for (q, placement) in workload.queries().iter().zip(&placements) {
        let g =
            placement_to_graph(q, placement, &trace.network, &mut table).expect("placement graph");
        oop_graph.union_with(&g);
    }
    let oop_ctx = PlanContext::new(workload.queries(), &trace.network, &table);
    let oop_deployment = Deployment::new(&oop_graph, &oop_ctx);
    (muse_deployment, oop_deployment)
}

/// Table 3: executed transmission ratios of the case study.
fn table3_case_study(
    id: &str,
    settings: &SweepSettings,
    mut tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    let jobs = if settings.reps <= 2 { 150 } else { 400 };
    let sim_config = SimConfig {
        telemetry: tel.as_ref().map(|t| t.spec()),
        ..SimConfig::default()
    };
    let mut rows = Vec::new();
    for (scenario, sources) in case_study_scenarios() {
        let (trace, workload) = case_study_instance(&sources, jobs, settings.seed);
        let (ms, op) = case_study_deployments(&trace, &workload);
        let mut ms_report = run_simulation(&ms, &trace.events, &sim_config);
        let mut op_report = run_simulation(&op, &trace.events, &sim_config);
        let ms_matches: u64 = ms_report.matches.iter().map(|m| m.len() as u64).sum();
        let op_matches: u64 = op_report.matches.iter().map(|m| m.len() as u64).sum();
        assert_eq!(
            ms_matches, op_matches,
            "{scenario}: MuSE and oOP plans must produce identical matches"
        );
        if let Some(tel) = tel.as_deref_mut() {
            for (strategy, report) in [("MS", &mut ms_report), ("OP", &mut op_report)] {
                let label = format!("{id}/{scenario}/{strategy}");
                if let Some(run) = report.telemetry.take() {
                    tel.record_run(&label, run);
                }
                tel.check_latency(&label, &report.metrics);
            }
        }
        rows.push(CaseStudyRow {
            scenario: scenario.to_string(),
            amuse_ratio: ms_report.metrics.transmission_ratio(),
            oop_ratio: op_report.metrics.transmission_ratio(),
            matches: ms_matches,
        });
    }
    ExperimentOutput::CaseStudyTable {
        id: id.to_string(),
        rows,
    }
}

/// Fig. 8: wall-clock latency and throughput of MS vs. OP on the threaded
/// executor.
fn fig8_case_study(
    id: &str,
    settings: &SweepSettings,
    mut tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    let jobs = if settings.reps <= 2 { 100 } else { 250 };
    let threaded_config = ThreadedConfig {
        telemetry: tel.as_ref().map(|t| t.spec()),
        ..ThreadedConfig::default()
    };
    let mut rows = Vec::new();
    for (scenario, sources) in case_study_scenarios() {
        let (trace, workload) = case_study_instance(&sources, jobs, settings.seed);
        let (ms, op) = case_study_deployments(&trace, &workload);
        for (strategy, deployment) in [("MS", &ms), ("OP", &op)] {
            let mut report = run_threaded(deployment, &trace.events, &threaded_config);
            if let Some(tel) = tel.as_deref_mut() {
                if let Some(run) = report.telemetry.take() {
                    tel.record_run(&format!("{id}/{scenario}/{strategy}"), run);
                }
            }
            let latency_us = report
                .latency_summary_ns()
                .map(|s| s.map(|v| v as f64 / 1e3))
                .unwrap_or([0.0; 5]);
            rows.push(RunRow {
                scenario: scenario.to_string(),
                strategy: strategy.to_string(),
                latency_us,
                events_per_sec: report.events_per_sec,
                matches: report.metrics.sink_matches,
            });
        }
    }
    ExperimentOutput::CaseStudyRuns {
        id: id.to_string(),
        rows,
    }
}

/// The `executor` experiment (`BENCH_executor.json`): threaded-executor
/// throughput with the batched, backpressured transport vs. the naive
/// per-match transport on the transport-bound relay workload
/// ([`crate::transport_stress`]), with the per-query match sets
/// cross-checked.
fn executor_bench(
    id: &str,
    settings: &SweepSettings,
    tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    let duration = if settings.reps <= 2 { 60.0 } else { 200.0 };
    executor_bench_sized(id, duration, settings, tel)
}

fn executor_bench_sized(
    id: &str,
    duration: f64,
    settings: &SweepSettings,
    tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    use crate::transport_stress::{stress_deployment, stress_network, stress_trace};
    use muse_runtime::matcher::Match;
    use muse_runtime::threaded::TransportMode;
    use std::collections::BTreeSet;

    // Both transports run with the same enlarged chunk (20 windows): the
    // relay window is short, and per-window chunks would make barrier
    // rounds, not the data plane, the measured cost. The eviction slack is
    // raised to cover it — remote deliveries can land a full chunk late,
    // so `slack * window` must stay above `chunk` or window stores evict
    // partials that a late frame still needs (transport-dependent match
    // loss, which the fingerprint check below would flag).
    const CHUNK_TICKS: muse_core::event::Timestamp = 10 * crate::transport_stress::WINDOW;
    const SLACK: f64 = 12.0;
    let scenario = "relay";
    let network = stress_network();
    let ms = stress_deployment(&network);
    let trace_events = stress_trace(&network, duration, settings.seed);
    let reps = settings.reps.max(1);
    let (batch, capacity) = match TransportMode::default() {
        TransportMode::Batched { batch, capacity } => (batch, capacity),
        TransportMode::Naive => unreachable!("default transport is batched"),
    };

    // Best-of-reps timing per transport; fingerprints come from the best
    // rep (the executor is deterministic up to thread interleaving, and
    // match *sets* are interleaving-independent).
    let measure =
        |transport: TransportMode, name: &str| -> (TransportRunRow, Vec<BTreeSet<Vec<u64>>>) {
            let config = ThreadedConfig {
                transport,
                slack: SLACK,
                chunk_ticks: Some(CHUNK_TICKS),
                ..ThreadedConfig::default()
            };
            // One untimed warmup rep: the first run after process start pays
            // for faulting the trace in and warming the allocator, and always
            // hitting the first-measured transport with that cost skews the
            // ratio between the two.
            let _ = run_threaded(&ms, &trace_events, &config);
            let mut best: Option<muse_runtime::threaded::ThreadedReport> = None;
            for _ in 0..reps {
                let report = run_threaded(&ms, &trace_events, &config);
                if best.as_ref().is_none_or(|b| report.wall_time < b.wall_time) {
                    best = Some(report);
                }
            }
            let report = best.expect("reps >= 1");
            let fps: Vec<BTreeSet<Vec<u64>>> = report
                .matches
                .iter()
                .map(|q| q.iter().map(Match::fingerprint).collect())
                .collect();
            let t = &report.metrics.transport;
            let mean_batch = if t.frames_sent > 0 {
                t.messages_framed as f64 / t.frames_sent as f64
            } else {
                0.0
            };
            let row = TransportRunRow {
                transport: name.to_string(),
                events_per_sec: report.events_per_sec,
                wall_ms: report.wall_time.as_secs_f64() * 1e3,
                latency_us: report
                    .latency_summary_ns()
                    .map(|s| s.map(|v| v as f64 / 1e3))
                    .unwrap_or([0.0; 5]),
                matches: report.metrics.sink_matches,
                frames_sent: t.frames_sent,
                messages_framed: t.messages_framed,
                mean_batch,
                blocked_sends: t.blocked_sends,
                pool_reuse_ratio: t.pool_reuse_ratio(),
                peak_queue_depth: t.peak_queue_depth,
            };
            (row, fps)
        };

    let (batched, batched_fps) = measure(TransportMode::default(), "batched");
    let (naive, naive_fps) = measure(TransportMode::Naive, "naive");
    let fingerprints_equal = batched_fps == naive_fps;
    let speedup = batched.events_per_sec / naive.events_per_sec;

    // A separate instrumented pass (telemetry sampling has overhead, so it
    // stays out of the timed runs): one batched run with the collector's
    // spec, recorded under `<id>/batched` for the harness summary tables.
    if let Some(tel) = tel {
        let config = ThreadedConfig {
            transport: TransportMode::default(),
            slack: SLACK,
            chunk_ticks: Some(CHUNK_TICKS),
            telemetry: Some(tel.spec()),
            ..ThreadedConfig::default()
        };
        let mut report = run_threaded(&ms, &trace_events, &config);
        if let Some(run) = report.telemetry.take() {
            tel.record_run(&format!("{id}/batched"), run);
        }
    }

    ExperimentOutput::ExecutorBench {
        id: id.to_string(),
        scenario: scenario.to_string(),
        events: trace_events.len() as u64,
        batch,
        capacity,
        batched,
        naive,
        speedup,
        fingerprints_equal,
    }
}

/// The `faults` experiment (`BENCH_faults.json`): crash-recovery cost on
/// the threaded executor over the transport-bound relay workload. Three
/// modes run on the same trace: an uninterrupted baseline, chunk-boundary
/// checkpointing without a crash (the steady-state Ambrosia tax), and
/// checkpointing plus an injected crash of a join-hosting center node with
/// restore-and-replay recovery. The per-query match sets of all three must
/// be identical — the losslessness gate `scripts/ci.sh` checks.
fn faults_bench(
    id: &str,
    settings: &SweepSettings,
    tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    use crate::transport_stress::{stress_deployment, stress_network, stress_trace, WINDOW};
    use muse_runtime::matcher::Match;
    use muse_runtime::threaded::FaultPlan;
    use std::collections::BTreeSet;
    use std::time::Duration;

    // Same chunk/slack regime as the executor bench (see there for why the
    // relay workload needs the enlarged chunk and covering slack).
    const CHUNK_TICKS: muse_core::event::Timestamp = 10 * WINDOW;
    const SLACK: f64 = 12.0;
    let duration = if settings.reps <= 2 { 40.0 } else { 120.0 };
    let scenario = "relay";
    let network = stress_network();
    let deployment = stress_deployment(&network);
    let trace_events = stress_trace(&network, duration, settings.seed);
    let reps = settings.reps.max(1);

    // Crash center node 0 — it hosts join state fed by every edge node, so
    // recovery must rebuild window stores from the snapshot AND re-collect
    // a chunk of peer traffic from the replay logs. The crash fires halfway
    // through the node's own injections; the restart delay models a
    // supervisor respawning the process.
    let crash_node = 0usize;
    let local = trace_events
        .iter()
        .filter(|e| e.origin.index() == crash_node)
        .count() as u64;
    let crash_at = local / 2;
    let restart_delay = Duration::from_millis(1);
    let base_config = ThreadedConfig {
        slack: SLACK,
        chunk_ticks: Some(CHUNK_TICKS),
        ..ThreadedConfig::default()
    };

    let measure = |config: &ThreadedConfig, name: &str| -> (FaultRunRow, Vec<BTreeSet<Vec<u64>>>) {
        let _ = run_threaded(&deployment, &trace_events, config);
        let mut best: Option<muse_runtime::threaded::ThreadedReport> = None;
        for _ in 0..reps {
            let report = run_threaded(&deployment, &trace_events, config);
            if best.as_ref().is_none_or(|b| report.wall_time < b.wall_time) {
                best = Some(report);
            }
        }
        let report = best.expect("reps >= 1");
        let fps: Vec<BTreeSet<Vec<u64>>> = report
            .matches
            .iter()
            .map(|q| q.iter().map(Match::fingerprint).collect())
            .collect();
        let rec = &report.metrics.recovery;
        let row = FaultRunRow {
            mode: name.to_string(),
            events_per_sec: report.events_per_sec,
            wall_ms: report.wall_time.as_secs_f64() * 1e3,
            matches: report.metrics.sink_matches,
            crashes: rec.crashes,
            snapshots_taken: rec.snapshots_taken,
            snapshot_bytes: rec.snapshot_bytes,
            replayed_messages: rec.replayed_messages,
            suppressed_sends: rec.suppressed_sends,
            send_retries: rec.send_retries,
            recovery_ms: rec.recovery_ns as f64 / 1e6,
        };
        (row, fps)
    };

    let (baseline, base_fps) = measure(&base_config, "baseline");
    let (checkpointed, ckpt_fps) = measure(
        &ThreadedConfig {
            checkpoint: true,
            ..base_config.clone()
        },
        "checkpointed",
    );
    let crash_config = ThreadedConfig {
        checkpoint: true,
        fault: Some(FaultPlan {
            node: crash_node,
            crash_at,
            restart_delay,
        }),
        ..base_config.clone()
    };
    let (crashed, crash_fps) = measure(&crash_config, "crashed");
    let fingerprints_equal = base_fps == ckpt_fps && base_fps == crash_fps;
    let ratio = |row: &FaultRunRow| {
        if baseline.wall_ms > 0.0 {
            row.wall_ms / baseline.wall_ms
        } else {
            0.0
        }
    };
    let checkpoint_overhead = ratio(&checkpointed);
    let recovery_overhead = ratio(&crashed);

    // One instrumented crashed run so the recovery counters land in the
    // telemetry registry (sampling overhead keeps it out of the timing).
    if let Some(tel) = tel {
        let config = ThreadedConfig {
            telemetry: Some(tel.spec()),
            ..crash_config
        };
        let mut report = run_threaded(&deployment, &trace_events, &config);
        if let Some(run) = report.telemetry.take() {
            tel.record_run(&format!("{id}/crashed"), run);
        }
    }

    ExperimentOutput::FaultBench {
        id: id.to_string(),
        scenario: scenario.to_string(),
        events: trace_events.len() as u64,
        crash_node,
        crash_at,
        restart_delay_ms: restart_delay.as_secs_f64() * 1e3,
        baseline,
        checkpointed,
        crashed,
        checkpoint_overhead,
        recovery_overhead,
        fingerprints_equal,
    }
}

/// The `matcher` experiment (`BENCH_matcher.json`): indexed vs. naive join
/// throughput on the skip-till-any-match stress workload, with the
/// emission streams cross-checked for byte identity.
fn matcher_bench(
    id: &str,
    settings: &SweepSettings,
    tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    let arrivals = if settings.reps <= 2 { 40_000 } else { 150_000 };
    matcher_bench_sized(id, arrivals, settings, tel)
}

fn matcher_bench_sized(
    id: &str,
    arrivals: usize,
    settings: &SweepSettings,
    tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    use crate::matcher_stress::{stress_feed, stress_query, stress_slots, WINDOW};
    use muse_runtime::matcher::{JoinTask, Match, NaiveJoinTask};
    use std::time::Instant;

    // The threaded executor's default out-of-order slack: the naive engine
    // buffers (and rescans) this many windows of matches per slot.
    let slack = 4.0;
    let query = stress_query();
    let slots = stress_slots();
    let feed = stress_feed(arrivals, settings.seed);
    let reps = settings.reps.max(1);

    let run = |naive_engine: bool| -> (MatcherEngineRow, Vec<Vec<u64>>) {
        let mut best_ms = f64::INFINITY;
        let mut emitted = 0u64;
        let mut peak = 0u64;
        let mut prints: Vec<Vec<u64>> = Vec::new();
        for rep in 0..reps {
            let mut fps = Vec::new();
            let start = Instant::now();
            let (e, p) = if naive_engine {
                let mut join = NaiveJoinTask::with_slack(&query, query.prims(), &slots, slack);
                let mut peak = 0usize;
                for (slot, m) in &feed {
                    fps.extend(
                        join.on_match(*slot, m.clone())
                            .iter()
                            .map(Match::fingerprint),
                    );
                    peak = peak.max(join.buffered());
                }
                (join.emitted(), peak as u64)
            } else {
                let mut join = JoinTask::with_slack(&query, query.prims(), &slots, slack);
                for (slot, m) in &feed {
                    fps.extend(
                        join.on_match(*slot, m.clone())
                            .iter()
                            .map(Match::fingerprint),
                    );
                }
                (join.emitted(), join.stats().peak_buffered)
            };
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            emitted = e;
            peak = p;
            if rep == 0 {
                prints = fps;
            }
        }
        (
            MatcherEngineRow {
                engine: if naive_engine { "naive" } else { "indexed" }.to_string(),
                events_per_sec: arrivals as f64 / (best_ms / 1e3),
                matches_emitted: emitted,
                peak_open_partials: peak,
                wall_ms: best_ms,
            },
            prints,
        )
    };

    let (indexed, indexed_fps) = run(false);
    let (naive, naive_fps) = run(true);
    let fingerprints_equal = indexed_fps == naive_fps;
    let speedup = indexed.events_per_sec / naive.events_per_sec;

    // A separate instrumented pass over the indexed engine: emit-lag
    // latencies (engine watermark minus the emitted match's newest event)
    // feed both the exact vector and the streaming histogram, so the
    // exported quantiles can be cross-checked against the exact
    // percentiles.
    if let Some(tel) = tel {
        use muse_runtime::metrics::Metrics;
        use muse_runtime::telemetry::{
            names, ClockDomain, GaugeKind, RunTelemetry, TaskSummary, TraceRecord,
        };
        use muse_telemetry::SeriesRecord;

        let spec = tel.spec();
        let mut run = RunTelemetry::new(ClockDomain::VirtualTicks, &spec);
        let c_sink = run.registry.counter(names::SINK_MATCHES);
        let h_lat = run.registry.hist(names::LATENCY_SINK);
        let mut metrics = Metrics::new(1);
        let mut join = JoinTask::with_slack(&query, query.prims(), &slots, slack);
        let cadence = spec.series_cadence_ticks.max(1);
        let mut next_sample = 0u64;
        let mut prev = [0u64; 4];
        for (slot, m) in &feed {
            let outs = join.on_match(*slot, m.clone());
            let now = join.last_seen();
            for out in &outs {
                let lag = now.saturating_sub(out.last_time());
                metrics.record_latency(lag);
                run.registry.inc(c_sink, 1);
                run.registry.observe(h_lat, lag);
                run.trace.push(TraceRecord::SinkMatch {
                    t: now,
                    node: 0,
                    task: 0,
                    size: out.len(),
                    last_time: out.last_time(),
                });
            }
            if now >= next_sample {
                let s = join.stats();
                run.series.push(SeriesRecord {
                    t: now,
                    task: 0,
                    node: 0,
                    label: "J0@stress".to_string(),
                    queue_depth: 0,
                    live_matches: join.buffered() as u64,
                    watermark_lag: 0,
                    inputs: s.inputs.saturating_sub(prev[0]),
                    probes: s.probes.saturating_sub(prev[1]),
                    evictions: s.evicted.saturating_sub(prev[2]),
                    emitted: s.emitted.saturating_sub(prev[3]),
                });
                prev = [s.inputs, s.probes, s.evicted, s.emitted];
                next_sample = now + cadence;
            }
        }
        let s = *join.stats();
        for (name, v) in [
            (names::JOIN_INPUTS, s.inputs),
            (names::JOIN_PROBES, s.probes),
            (names::JOIN_GUARD_REJECTS, s.guard_rejects),
            (names::JOIN_MERGE_ATTEMPTS, s.merge_attempts),
            (names::JOIN_MERGE_SUCCESSES, s.merge_successes),
            (names::JOIN_EMITTED, s.emitted),
            (names::JOIN_EVICTED, s.evicted),
        ] {
            let c = run.registry.counter(name);
            run.registry.inc(c, v);
        }
        let g = run.registry.gauge(names::JOIN_PEAK_LIVE, GaugeKind::Max);
        run.registry.gauge_peak(g, s.peak_buffered);
        run.tasks.push(TaskSummary {
            task: 0,
            node: 0,
            label: "J0@stress".to_string(),
            kind: "sink".to_string(),
            inputs: s.inputs,
            probes: s.probes,
            emitted: s.emitted,
            evictions: s.evicted,
            peak_live: s.peak_buffered,
            considered: 0,
            admitted: 0,
            replayed: 0,
            suppressed: 0,
        });
        let label = format!("{id}/indexed");
        tel.record_run(&label, run);
        tel.check_latency(&label, &metrics);
    }

    ExperimentOutput::MatcherBench {
        id: id.to_string(),
        arrivals: arrivals as u64,
        window: WINDOW,
        slack,
        indexed,
        naive,
        speedup,
        fingerprints_equal,
    }
}

/// The `multiquery` experiment (`BENCH_multiquery.json`): shared
/// multi-query evaluation at scale. A family-structured workload is swept
/// from 1k to 100k concurrent queries over a fixed trace; at each point
/// the same merged plan runs twice on the simulator — once with
/// shared-projection collapsing plus the event discrimination index
/// (`Sharing::Shared`), once with one physical task per logical vertex
/// (`Sharing::Independent`) — and the per-query match sets must be
/// identical. Reported per point: events/sec for both modes, the mean
/// per-event candidate-set size, the band-filter rejection ratio, and the
/// peak of resident partial matches.
fn multiquery_bench(
    id: &str,
    settings: &SweepSettings,
    tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    let (sweep, duration): (&[usize], f64) = if settings.reps <= 2 {
        (&[200, 2_000], 120.0)
    } else {
        (&[1_000, 10_000, 100_000], 300.0)
    };
    multiquery_bench_sized(id, sweep, duration, settings, tel)
}

fn multiquery_bench_sized(
    id: &str,
    sweep: &[usize],
    duration: f64,
    settings: &SweepSettings,
    mut tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    use muse_core::network::NetworkBuilder;
    use muse_core::types::{EventTypeId, NodeId};
    use muse_runtime::deploy::Sharing;
    use muse_runtime::matcher::Match;
    use muse_runtime::sim::SimReport;
    use muse_sim::traces::{generate_traces, TraceConfig};
    use muse_sim::workload_gen::{generate_family_workload, FamilyWorkloadConfig};
    use std::collections::BTreeSet;
    use std::time::Instant;

    // 4 nodes, 12 types, each type produced by exactly one node at a flat
    // rate: the sweep varies the *workload*, so the event side stays fixed
    // and every throughput delta is attributable to query count.
    const TYPES: usize = 12;
    let mut builder = NetworkBuilder::new(4, TYPES);
    for node in 0..4u16 {
        let owned: Vec<EventTypeId> = (0..3).map(|k| EventTypeId(node * 3 + k)).collect();
        builder = builder.node(NodeId(node), owned.clone());
        for t in owned {
            builder = builder.rate(t, 2.0);
        }
    }
    let network = builder.build();

    let reps = settings.reps.max(1);
    let trace = generate_traces(
        &network,
        &TraceConfig {
            duration,
            ticks_per_unit: 1_000.0,
            rate_scale: 1.0,
            key_domain: 8,
            band_domain: 1_000,
            seed: settings.seed,
        },
    );
    let sim_config = SimConfig::default();

    let mut points = Vec::with_capacity(sweep.len());
    for (pi, &n) in sweep.iter().enumerate() {
        let workload = generate_family_workload(&FamilyWorkloadConfig {
            queries: n,
            families: 25,
            variants_per_family: 8,
            prims_per_family: 3,
            types: TYPES,
            share_fraction: 0.3,
            band_domain: 1_000,
            window: 1_000,
            seed: settings.seed,
        });
        let plan = amuse_workload(&workload, &network, &AMuseConfig::default())
            .expect("family workload plans");
        let distinct_plans = plan.graphs.len() - plan.reused_plans();
        let ctx = PlanContext::new(workload.queries(), &network, &plan.table);
        // `unchecked`: the fail-fast verifier walks every query and vertex,
        // which at 100k generated queries costs more than the run itself;
        // these plans come straight from the in-tree construction.
        let shared = Deployment::unchecked(&plan.merged, &ctx, Sharing::Shared);
        let independent = Deployment::unchecked(&plan.merged, &ctx, Sharing::Independent);

        let fingerprints = |report: &SimReport| -> Vec<BTreeSet<Vec<u64>>> {
            report
                .matches
                .iter()
                .map(|q| q.iter().map(Match::fingerprint).collect())
                .collect()
        };

        // Shared mode: one untimed warmup (faults the trace in), then
        // best-of-reps. Independent mode runs once afterwards, with the
        // trace already warm — any cache bias favors the baseline.
        let _ = run_simulation(&shared, &trace, &sim_config);
        let mut best: Option<(std::time::Duration, SimReport)> = None;
        for _ in 0..reps {
            let started = Instant::now();
            let report = run_simulation(&shared, &trace, &sim_config);
            let wall = started.elapsed();
            if best.as_ref().is_none_or(|(b, _)| wall < *b) {
                best = Some((wall, report));
            }
        }
        let (shared_wall, shared_report) = best.expect("reps >= 1");
        let started = Instant::now();
        let independent_report = run_simulation(&independent, &trace, &sim_config);
        let independent_wall = started.elapsed();

        let fingerprints_equal = fingerprints(&shared_report) == fingerprints(&independent_report);
        let shared_wall_ms = shared_wall.as_secs_f64() * 1e3;
        let independent_wall_ms = independent_wall.as_secs_f64() * 1e3;
        let shared_eps = trace.len() as f64 / shared_wall.as_secs_f64();
        let independent_eps = trace.len() as f64 / independent_wall.as_secs_f64();
        let sd = &shared_report.metrics.discrimination;
        let idd = &independent_report.metrics.discrimination;

        // Instrumented shared pass on the smallest point only: telemetry
        // sampling has overhead and one labeled run is enough for the
        // harness summary tables.
        if pi == 0 {
            if let Some(tel) = tel.as_deref_mut() {
                let config = SimConfig {
                    telemetry: Some(tel.spec()),
                    ..sim_config.clone()
                };
                let mut report = run_simulation(&shared, &trace, &config);
                if let Some(run) = report.telemetry.take() {
                    tel.record_run(&format!("{id}/q{n}/shared"), run);
                }
            }
        }

        points.push(MultiQueryRow {
            queries: n,
            distinct_plans,
            logical_tasks: shared.logical_tasks,
            physical_tasks: shared.tasks.len(),
            shared_events_per_sec: shared_eps,
            shared_wall_ms,
            independent_events_per_sec: independent_eps,
            independent_wall_ms,
            speedup: shared_eps / independent_eps,
            mean_candidates_shared: sd.mean_candidates(),
            mean_candidates_independent: idd.mean_candidates(),
            filtered_pct: 100.0 * sd.hit_ratio(),
            peak_partials_shared: shared_report.metrics.join.peak_buffered,
            peak_partials_independent: independent_report.metrics.join.peak_buffered,
            matches: shared_report.metrics.sink_matches,
            fingerprints_equal,
        });
    }

    let fingerprints_equal = points.iter().all(|p| p.fingerprints_equal);
    let first = points.first().expect("non-empty sweep");
    let last = points.last().expect("non-empty sweep");
    let sublinear =
        last.shared_wall_ms / first.shared_wall_ms < last.queries as f64 / first.queries as f64;

    ExperimentOutput::MultiQueryBench {
        id: id.to_string(),
        events: trace.len() as u64,
        points,
        fingerprints_equal,
        sublinear,
    }
}

/// The `observe` experiment (`BENCH_observe.json`): the observability
/// stack end-to-end. Four phases:
///
/// 1. **Overhead** — the relay workload runs on the simulator with
///    telemetry off, with telemetry attached but provenance disabled,
///    with 1-in-64 provenance sampling, and with every sink match
///    recorded; wall-time ratios against the off mode gate the
///    zero-cost-when-disabled claim. A threaded run with sampling on is
///    then checked for match parity against the untraced simulator.
/// 2. **Witness closure** — the calibrated `SEQ` workload runs on the
///    simulator with `provenance_sample = 1`; every record's witness set
///    is replayed through a fresh simulation and must reproduce its match
///    byte-identically (the same check `harness explain` exposes).
/// 3. **Drift** — the §4.4 cost model is re-evaluated against observed
///    per-vertex rates: near-zero on the stationary trace, above 0.5 when
///    the trace is generated from a 3x rate-shifted network.
/// 4. **Flight recorder** — a crash is injected into a checkpointed relay
///    run; the crashed node's bounded flight ring must dump and decode.
fn observe_bench(
    id: &str,
    settings: &SweepSettings,
    tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    let relay_duration = if settings.reps <= 2 { 40.0 } else { 120.0 };
    let witness_duration = crate::observe::witness_duration(settings.reps <= 2);
    observe_bench_sized(id, relay_duration, witness_duration, settings, tel)
}

fn observe_bench_sized(
    id: &str,
    relay_duration: f64,
    witness_duration: f64,
    settings: &SweepSettings,
    mut tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    use crate::observe::{
        find_recorded_match, observe_deployment, observe_network, observe_trace, shifted_network,
        witness_closure_holds, witness_spec, RATE_SCALE, TICKS_PER_UNIT,
    };
    use crate::transport_stress::{stress_deployment, stress_network, stress_trace, WINDOW};
    use muse_runtime::drift::CostDrift;
    use muse_runtime::flight::{decode_dump, render_timeline};
    use muse_runtime::matcher::Match;
    use muse_runtime::threaded::FaultPlan;
    use muse_telemetry::TelemetrySpec;
    use std::collections::BTreeSet;
    use std::time::Duration;

    // Same chunk/slack regime as the executor bench (see there).
    const CHUNK_TICKS: muse_core::event::Timestamp = 10 * WINDOW;
    const SLACK: f64 = 12.0;
    const SAMPLE: u64 = 64;
    let network = stress_network();
    let deployment = stress_deployment(&network);
    let trace_events = stress_trace(&network, relay_duration, settings.seed);
    let reps = settings.reps.max(1);

    // Phase 1: wall-time overhead of the provenance path, measured on the
    // simulator. The telemetry spec under test IS the measured
    // configuration here (unlike the other benches, which keep
    // instrumentation out of the timed runs); the single-threaded
    // simulator exercises every per-event hook the tracer adds
    // (inject/candidate/emit/rate/sink-match) while keeping the timing
    // deterministic — the threaded executor's barrier rounds make its
    // wall time scheduler-bound on small hosts, which would gate CI on
    // noise rather than on the tracer. Modes are measured round-robin and
    // scored by their fastest rep, on a trace long enough that the 5%
    // gate's headroom dwarfs timer jitter.
    let overhead_events = stress_trace(&network, relay_duration.max(240.0), settings.seed);
    let modes: [(&str, Option<TelemetrySpec>); 4] = [
        ("off", None),
        ("disabled", Some(TelemetrySpec::provenance_only(0))),
        ("sampled", Some(TelemetrySpec::provenance_only(SAMPLE))),
        ("full", Some(TelemetrySpec::provenance_only(1))),
    ];
    let measure_reps = reps.max(5);
    let mut best_ms = [f64::MAX; 4];
    let mut held_dropped = [(0u64, 0u64); 4];
    for round in 0..=measure_reps {
        for (i, (_, spec)) in modes.iter().enumerate() {
            let config = SimConfig {
                telemetry: spec.clone(),
                ..SimConfig::default()
            };
            let started = std::time::Instant::now();
            let report = run_simulation(&deployment, &overhead_events, &config);
            let ms = started.elapsed().as_secs_f64() * 1e3;
            // Round 0 is warmup for every mode alike.
            if round > 0 && ms < best_ms[i] {
                best_ms[i] = ms;
            }
            held_dropped[i] = report.telemetry.as_ref().map_or((0, 0), |t| {
                (t.provenance.len() as u64, t.provenance.dropped())
            });
            std::hint::black_box(report);
        }
    }
    let base = best_ms[0].max(f64::MIN_POSITIVE);
    let mut rows: Vec<ObserveModeRow> = modes
        .iter()
        .zip(best_ms.iter().zip(held_dropped))
        .map(|((name, _), (&ms, (held, dropped)))| ObserveModeRow {
            mode: name.to_string(),
            wall_ms: ms,
            overhead: ms / base,
            provenance_records: held,
            provenance_dropped: dropped,
        })
        .collect();
    let full = rows.pop().expect("4 modes");
    let sampled = rows.pop().expect("4 modes");
    let disabled = rows.pop().expect("4 modes");
    let off = rows.pop().expect("4 modes");
    let disabled_ok = disabled.overhead < 1.05;
    let sampled_ok = sampled.overhead < 1.15;

    // Executor parity on the relay trace: the simulator's untraced
    // trace-ordered run and a threaded run with 1-in-64 provenance
    // sampling must agree per query — the check that provenance hooks
    // cannot perturb matching, which also keeps the threaded hot path
    // covered now that the timed rows above come from the simulator.
    let fingerprints = |matches: &[Vec<Match>]| -> Vec<BTreeSet<Vec<u64>>> {
        matches
            .iter()
            .map(|q| q.iter().map(Match::fingerprint).collect())
            .collect()
    };
    let threaded_config = ThreadedConfig {
        slack: SLACK,
        chunk_ticks: Some(CHUNK_TICKS),
        telemetry: Some(TelemetrySpec::provenance_only(SAMPLE)),
        ..ThreadedConfig::default()
    };
    let traced_report = run_threaded(&deployment, &trace_events, &threaded_config);
    let sim_report = run_simulation(&deployment, &trace_events, &SimConfig::default());
    let fingerprints_equal =
        fingerprints(&sim_report.matches) == fingerprints(&traced_report.matches);

    // Phase 2: witness closure on the calibrated workload.
    let onet = observe_network();
    let odeployment = observe_deployment(&onet);
    let otrace = observe_trace(&onet, witness_duration, settings.seed);
    let oconfig = SimConfig {
        telemetry: Some(witness_spec()),
        ..SimConfig::default()
    };
    let mut oreport = run_simulation(&odeployment, &otrace, &oconfig);
    let orun = oreport.telemetry.take().expect("telemetry requested");
    let provenance_records = orun.provenance.len() as u64;
    let witness_total: usize = orun.provenance.records().map(|r| r.witness.len()).sum();
    let mean_witness = witness_total as f64 / provenance_records.max(1) as f64;
    let mut witnesses_reproduce = provenance_records > 0 && orun.provenance.dropped() == 0;
    for rec in orun.provenance.records() {
        witnesses_reproduce &= find_recorded_match(&oreport.matches, rec)
            .is_some_and(|orig| witness_closure_holds(&odeployment, &otrace, rec, orig));
    }

    // Phase 3: cost-model drift — stationary rates from the witness run's
    // estimators, shifted rates from a trace generated at 3x.
    let duration_ticks = (witness_duration * TICKS_PER_UNIT) as u64;
    let stationary = CostDrift::compute(
        &odeployment,
        &orun.rates,
        TICKS_PER_UNIT,
        RATE_SCALE,
        duration_ticks,
    );
    let strace = observe_trace(&shifted_network(), witness_duration, settings.seed + 1);
    let mut sreport = run_simulation(&odeployment, &strace, &oconfig);
    let srun = sreport.telemetry.take().expect("telemetry requested");
    let shifted = CostDrift::compute(
        &odeployment,
        &srun.rates,
        TICKS_PER_UNIT,
        RATE_SCALE,
        duration_ticks,
    );
    let stationary_ok = stationary.score < 0.10;
    let shifted_detected = shifted.score > 0.5;
    if let Some(tel) = tel.as_deref_mut() {
        tel.record_run(&format!("{id}/witness"), orun);
    }

    // Phase 4: flight recorder. A short checkpointed relay run with an
    // injected crash; the crashed node publishes its flight ring, which
    // must decode and carry the crash marker.
    let ftrace = stress_trace(&network, relay_duration.min(20.0), settings.seed);
    // Crash the first *edge* node: it injects ~100 events per time unit,
    // so the halfway crash point exists even on short traces (the centers'
    // rare anchors may not produce a single event before the run ends).
    let crash_node = crate::transport_stress::CENTERS;
    let local = ftrace
        .iter()
        .filter(|e| e.origin.index() == crash_node)
        .count() as u64;
    let fconfig = ThreadedConfig {
        slack: SLACK,
        chunk_ticks: Some(CHUNK_TICKS),
        checkpoint: true,
        fault: Some(FaultPlan {
            node: crash_node,
            crash_at: local / 2,
            restart_delay: Duration::from_millis(1),
        }),
        telemetry: tel.as_deref().map(|t| t.spec()),
        ..ThreadedConfig::default()
    };
    let mut freport = run_threaded(&deployment, &ftrace, &fconfig);
    if let Some(tel) = tel {
        if let Some(run) = freport.telemetry.take() {
            tel.record_run(&format!("{id}/crashed"), run);
        }
    }
    let dumps: Vec<muse_runtime::flight::FlightDump> = freport
        .flight_dumps
        .iter()
        .filter_map(|d| decode_dump(d))
        .collect();
    let flight_records = dumps.iter().map(|d| d.records.len() as u64).sum();
    let flight_timeline = dumps
        .first()
        .map(|d| {
            let full = render_timeline(d);
            let lines: Vec<&str> = full.lines().collect();
            let tail = lines.len().saturating_sub(12);
            lines[tail..].join("\n")
        })
        .unwrap_or_default();

    ExperimentOutput::ObserveBench {
        id: id.to_string(),
        events: trace_events.len() as u64,
        sample: SAMPLE,
        overhead: vec![off, disabled, sampled, full],
        disabled_ok,
        sampled_ok,
        fingerprints_equal,
        provenance_records,
        mean_witness,
        witnesses_reproduce,
        stationary_score: stationary.score,
        stationary_ok,
        shifted_score: shifted.score,
        shifted_detected,
        drift_vertices: stationary.per_vertex.len(),
        stationary_drift: stationary,
        shifted_drift: shifted,
        flight_records,
        flight_timeline,
    }
}

/// The `migrate` experiment (`BENCH_migrate.json`): the live-migration
/// soundness gate over the Fig. 1 `SEQ(AND(t0, t1), t2)` workload, whose
/// partial matches cross the network. A simulator run under plan A is
/// snapshotted mid-trace; the certified identity migration must resume
/// fingerprint-identical to an uninterrupted run in the simulator AND the
/// threaded executor; the certified widened-window pair must restore with
/// its replay obligation; and the narrowed-window pair must be refused by
/// the verifier and fail [`checkpoint::map_snapshot`]. `scripts/ci.sh`
/// greps the `certified_identical` and `rejected_fails` flags.
fn migrate_bench(
    id: &str,
    settings: &SweepSettings,
    _tel: Option<&mut TelemetryCollector>,
) -> ExperimentOutput {
    use muse_core::catalog::Catalog;
    use muse_core::event::Timestamp;
    use muse_core::graph::MuseGraph;
    use muse_core::query::{Pattern, Predicate, Query};
    use muse_core::types::{EventTypeId, NodeId};
    use muse_runtime::checkpoint::{self, CheckpointError};
    use muse_runtime::matcher::Match;
    use muse_runtime::sim::SimExecutor;
    use muse_runtime::threaded::run_threaded_resumed;
    use muse_verify::verify_migration;
    use std::collections::BTreeSet;

    const WINDOW_OLD: Timestamp = 5_000;
    const WINDOW_WIDE: Timestamp = 8_000;
    const WINDOW_NARROW: Timestamp = 2_000;

    let t = EventTypeId;
    let network = muse_core::network::NetworkBuilder::new(3, 3)
        .node(NodeId(0), [t(0), t(2)])
        .node(NodeId(1), [t(0), t(1)])
        .node(NodeId(2), [t(1)])
        .rate(t(0), 20.0)
        .rate(t(1), 20.0)
        .rate(t(2), 1.0)
        .build();
    let events = muse_sim::traces::generate_traces(
        &network,
        &muse_sim::traces::TraceConfig {
            duration: 30.0,
            ticks_per_unit: 100.0,
            rate_scale: 0.05,
            key_domain: 0,
            band_domain: 0,
            seed: settings.seed,
        },
    );
    let half = events.len() / 2;

    struct Placed {
        queries: Vec<Query>,
        table: ProjectionTable,
        graph: MuseGraph,
        deployment: Deployment,
    }
    let place = |window: Timestamp| -> Placed {
        let pattern = Pattern::seq([
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]);
        let workload = Workload::from_patterns(
            Catalog::with_anonymous_types(3),
            [(pattern, Vec::<Predicate>::new(), window)],
        )
        .expect("pattern builds a workload");
        let plan = amuse_workload(&workload, &network, &AMuseConfig::default())
            .expect("aMuSE plans workload");
        let queries = workload.queries().to_vec();
        let ctx = PlanContext::new(&queries, &network, &plan.table);
        let deployment = Deployment::new(&plan.merged, &ctx);
        Placed {
            queries,
            table: plan.table,
            graph: plan.merged,
            deployment,
        }
    };
    let certify = |a: &Placed, b: &Placed| {
        let actx = PlanContext::new(&a.queries, &network, &a.table);
        let bctx = PlanContext::new(&b.queries, &network, &b.table);
        verify_migration(&a.graph, &actx, &b.graph, &bctx, None)
    };
    let fps = |matches: &[Match]| -> BTreeSet<Vec<u64>> {
        matches.iter().map(Match::fingerprint).collect()
    };

    let a = place(WINDOW_OLD);
    let b = place(WINDOW_OLD);
    let wide = place(WINDOW_WIDE);
    let narrow = place(WINDOW_NARROW);

    // One mid-trace snapshot under plan A feeds every direction below.
    let mut exec = SimExecutor::new(&a.deployment, SimConfig::default());
    exec.process_trace(&events[..half]);
    let bytes = checkpoint::snapshot(&exec).expect("sim snapshots");

    // Certified identity migration: resume in both executors and compare
    // against uninterrupted runs under the new plan.
    let (_, plan_ab) = certify(&a, &b);
    let identity_certified = plan_ab.safe && !plan_ab.needs_replay;
    let matched_tasks = plan_ab.matched;
    let (sim_identical, migrated_matches) = if plan_ab.safe {
        let mut resumed = checkpoint::restore_mapped(
            &a.deployment,
            &b.deployment,
            &plan_ab,
            SimConfig::default(),
            &bytes,
        )
        .expect("certified migration restores");
        resumed.process_trace(&events[half..]);
        let migrated = resumed.finish();
        let mut uninterrupted = SimExecutor::new(&b.deployment, SimConfig::default());
        uninterrupted.process_trace(&events);
        let baseline = uninterrupted.finish();
        let identical = !baseline.matches[0].is_empty()
            && fps(&migrated.matches[0]) == fps(&baseline.matches[0]);
        (identical, migrated.metrics.sink_matches)
    } else {
        (false, 0)
    };
    let tcfg = ThreadedConfig::default();
    let threaded_identical = plan_ab.safe && {
        let mapped =
            checkpoint::map_snapshot(&a.deployment, &b.deployment, &plan_ab, tcfg.slack, &bytes)
                .expect("certified migration maps");
        let mapped_bytes = checkpoint::encode(&mapped);
        let migrated = run_threaded_resumed(&b.deployment, &events, &tcfg, &mapped_bytes)
            .expect("mapped snapshot resumes the threaded executor");
        let baseline = run_threaded(&b.deployment, &events, &tcfg);
        !baseline.matches[0].is_empty() && fps(&migrated.matches[0]) == fps(&baseline.matches[0])
    };
    let certified_identical = identity_certified && sim_identical && threaded_identical;

    // Widened window: must certify with a replay obligation and restore.
    let (_, plan_aw) = certify(&a, &wide);
    let widened_certified_with_replay = plan_aw.safe
        && plan_aw.needs_replay
        && checkpoint::restore_mapped(
            &a.deployment,
            &wide.deployment,
            &plan_aw,
            SimConfig::default(),
            &bytes,
        )
        .is_ok();

    // Narrowed window: the verifier must refuse, and the mapped restore
    // must fail — no state ever crosses an uncertified migration.
    let (_, plan_an) = certify(&a, &narrow);
    let narrow_refused = !plan_an.safe;
    let rejected_fails = matches!(
        checkpoint::map_snapshot(
            &a.deployment,
            &narrow.deployment,
            &plan_an,
            SimConfig::default().slack,
            &bytes,
        ),
        Err(CheckpointError::MigrationRejected(_))
    );

    ExperimentOutput::MigrateBench {
        id: id.to_string(),
        events: events.len() as u64,
        window_old: WINDOW_OLD,
        window_wide: WINDOW_WIDE,
        window_narrow: WINDOW_NARROW,
        matched_tasks,
        identity_certified,
        sim_identical,
        threaded_identical,
        certified_identical,
        widened_certified_with_replay,
        narrow_refused,
        rejected_fails,
        migrated_matches,
    }
}

impl ExperimentOutput {
    /// The experiment's id.
    pub fn id(&self) -> &str {
        match self {
            ExperimentOutput::RatioSweep { id, .. }
            | ExperimentOutput::Construction { id, .. }
            | ExperimentOutput::CaseStudyTable { id, .. }
            | ExperimentOutput::CaseStudyRuns { id, .. }
            | ExperimentOutput::ExecutorBench { id, .. }
            | ExperimentOutput::FaultBench { id, .. }
            | ExperimentOutput::MatcherBench { id, .. }
            | ExperimentOutput::MultiQueryBench { id, .. }
            | ExperimentOutput::ObserveBench { id, .. }
            | ExperimentOutput::MigrateBench { id, .. } => id,
        }
    }

    /// Renders the experiment as a plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self {
            ExperimentOutput::RatioSweep {
                id,
                title,
                x_label,
                points,
            } => {
                let _ = writeln!(out, "== {id}: {title} ==");
                let _ = writeln!(
                    out,
                    "{x_label:>16} | {:>24} | {:>24} | {:>24}",
                    "aMuSE (med [min,max])", "aMuSE* (med [min,max])", "oOP (med [min,max])"
                );
                for p in points {
                    let f = |v: &Vec<f64>| {
                        let s = summarize(v);
                        format!("{:.5} [{:.5},{:.5}]", s.median, s.min, s.max)
                    };
                    let _ = writeln!(
                        out,
                        "{:>16} | {:>24} | {:>24} | {:>24}",
                        p.x,
                        f(&p.amuse),
                        f(&p.amuse_star),
                        f(&p.oop)
                    );
                }
            }
            ExperimentOutput::Construction { id, rows } => {
                let _ = writeln!(out, "== {id}: construction efficiency ==");
                let _ = writeln!(
                    out,
                    "{:>32} | {:>12} | {:>12} | {:>12} | {:>12}",
                    "setting", "aMuSE [ms]", "aMuSE* [ms]", "aMuSE #proj", "aMuSE* #proj"
                );
                for r in rows {
                    let _ = writeln!(
                        out,
                        "{:>32} | {:>12.2} | {:>12.2} | {:>12.0} | {:>12.0}",
                        r.setting,
                        r.amuse_ms,
                        r.amuse_star_ms,
                        r.amuse_projections,
                        r.amuse_star_projections
                    );
                }
            }
            ExperimentOutput::CaseStudyTable { id, rows } => {
                let _ = writeln!(out, "== {id}: case study transmission ratio ==");
                let _ = writeln!(
                    out,
                    "{:>8} | {:>12} | {:>12} | {:>10}",
                    "scenario", "aMuSE", "oOP", "matches"
                );
                for r in rows {
                    let _ = writeln!(
                        out,
                        "{:>8} | {:>11.1}% | {:>11.1}% | {:>10}",
                        r.scenario,
                        r.amuse_ratio * 100.0,
                        r.oop_ratio * 100.0,
                        r.matches
                    );
                }
            }
            ExperimentOutput::CaseStudyRuns { id, rows } => {
                let _ = writeln!(out, "== {id}: case study latency & throughput ==");
                let _ = writeln!(
                    out,
                    "{:>8} | {:>4} | {:>44} | {:>12} | {:>8}",
                    "scenario", "plan", "latency µs (min/q1/med/q3/max)", "events/s", "matches"
                );
                for r in rows {
                    let lat = format!(
                        "{:.0}/{:.0}/{:.0}/{:.0}/{:.0}",
                        r.latency_us[0],
                        r.latency_us[1],
                        r.latency_us[2],
                        r.latency_us[3],
                        r.latency_us[4]
                    );
                    let _ = writeln!(
                        out,
                        "{:>8} | {:>4} | {:>44} | {:>12.0} | {:>8}",
                        r.scenario, r.strategy, lat, r.events_per_sec, r.matches
                    );
                }
            }
            ExperimentOutput::ExecutorBench {
                id,
                scenario,
                events,
                batch,
                capacity,
                batched,
                naive,
                speedup,
                fingerprints_equal,
            } => {
                let _ = writeln!(
                    out,
                    "== {id}: transport throughput ({scenario}, {events} events, \
                     batch {batch}, capacity {capacity}) =="
                );
                let _ = writeln!(
                    out,
                    "{:>8} | {:>12} | {:>10} | {:>8} | {:>10} | {:>10} | {:>8} | {:>7} | {:>6} | {:>8}",
                    "mode",
                    "events/s",
                    "wall ms",
                    "matches",
                    "frames",
                    "messages",
                    "batch",
                    "blocked",
                    "reuse",
                    "q-peak"
                );
                for r in [batched, naive] {
                    let _ = writeln!(
                        out,
                        "{:>8} | {:>12.0} | {:>10.1} | {:>8} | {:>10} | {:>10} | {:>8.1} | {:>7} | {:>5.0}% | {:>8}",
                        r.transport,
                        r.events_per_sec,
                        r.wall_ms,
                        r.matches,
                        r.frames_sent,
                        r.messages_framed,
                        r.mean_batch,
                        r.blocked_sends,
                        r.pool_reuse_ratio * 100.0,
                        r.peak_queue_depth
                    );
                }
                let _ = writeln!(
                    out,
                    "speedup: {speedup:.2}x, match sets identical: {fingerprints_equal}"
                );
            }
            ExperimentOutput::FaultBench {
                id,
                scenario,
                events,
                crash_node,
                crash_at,
                restart_delay_ms,
                baseline,
                checkpointed,
                crashed,
                checkpoint_overhead,
                recovery_overhead,
                fingerprints_equal,
            } => {
                let _ = writeln!(
                    out,
                    "== {id}: crash recovery ({scenario}, {events} events, crash node \
                     {crash_node} at injection {crash_at}, downtime {restart_delay_ms:.0} ms) =="
                );
                let _ = writeln!(
                    out,
                    "{:>12} | {:>12} | {:>10} | {:>8} | {:>6} | {:>10} | {:>10} | {:>9} | {:>10} | {:>8} | {:>8}",
                    "mode",
                    "events/s",
                    "wall ms",
                    "matches",
                    "crash",
                    "snapshots",
                    "snap KiB",
                    "replayed",
                    "suppressed",
                    "retries",
                    "rec ms"
                );
                for r in [baseline, checkpointed, crashed] {
                    let _ = writeln!(
                        out,
                        "{:>12} | {:>12.0} | {:>10.1} | {:>8} | {:>6} | {:>10} | {:>10.1} | {:>9} | {:>10} | {:>8} | {:>8.2}",
                        r.mode,
                        r.events_per_sec,
                        r.wall_ms,
                        r.matches,
                        r.crashes,
                        r.snapshots_taken,
                        r.snapshot_bytes as f64 / 1024.0,
                        r.replayed_messages,
                        r.suppressed_sends,
                        r.send_retries,
                        r.recovery_ms
                    );
                }
                let _ = writeln!(
                    out,
                    "checkpoint overhead: {checkpoint_overhead:.2}x, recovery overhead: \
                     {recovery_overhead:.2}x, match sets identical: {fingerprints_equal}"
                );
            }
            ExperimentOutput::MatcherBench {
                id,
                arrivals,
                window,
                slack,
                indexed,
                naive,
                speedup,
                fingerprints_equal,
            } => {
                let _ = writeln!(
                    out,
                    "== {id}: join engine throughput ({arrivals} arrivals, window {window}, \
                     slack {slack}) =="
                );
                let _ = writeln!(
                    out,
                    "{:>8} | {:>12} | {:>10} | {:>14} | {:>10}",
                    "engine", "events/s", "wall ms", "peak partials", "matches"
                );
                for r in [indexed, naive] {
                    let _ = writeln!(
                        out,
                        "{:>8} | {:>12.0} | {:>10.1} | {:>14} | {:>10}",
                        r.engine,
                        r.events_per_sec,
                        r.wall_ms,
                        r.peak_open_partials,
                        r.matches_emitted
                    );
                }
                let _ = writeln!(
                    out,
                    "speedup: {speedup:.2}x, emission streams identical: {fingerprints_equal}"
                );
            }
            ExperimentOutput::MultiQueryBench {
                id,
                events,
                points,
                fingerprints_equal,
                sublinear,
            } => {
                let _ = writeln!(
                    out,
                    "== {id}: shared multi-query evaluation ({events} events per run) =="
                );
                let _ = writeln!(
                    out,
                    "{:>8} | {:>8} | {:>8} {:>8} | {:>12} {:>12} | {:>8} | {:>10} {:>9} | {:>10} | {:>8} | {:>3}",
                    "queries",
                    "distinct",
                    "logical",
                    "physical",
                    "shared e/s",
                    "indep e/s",
                    "speedup",
                    "mean-cand",
                    "filtered",
                    "partials",
                    "matches",
                    "fp"
                );
                for p in points {
                    let _ = writeln!(
                        out,
                        "{:>8} | {:>8} | {:>8} {:>8} | {:>12.0} {:>12.0} | {:>7.2}x | {:>10.1} {:>8.1}% | {:>10} | {:>8} | {:>3}",
                        p.queries,
                        p.distinct_plans,
                        p.logical_tasks,
                        p.physical_tasks,
                        p.shared_events_per_sec,
                        p.independent_events_per_sec,
                        p.speedup,
                        p.mean_candidates_shared,
                        p.filtered_pct,
                        p.peak_partials_shared,
                        p.matches,
                        if p.fingerprints_equal { "ok" } else { "DIV" }
                    );
                }
                let _ = writeln!(
                    out,
                    "all match sets identical: {fingerprints_equal}, sublinear scaling: {sublinear}"
                );
            }
            ExperimentOutput::ObserveBench {
                id,
                events,
                sample,
                overhead,
                disabled_ok,
                sampled_ok,
                fingerprints_equal,
                provenance_records,
                mean_witness,
                witnesses_reproduce,
                stationary_score,
                stationary_ok,
                shifted_score,
                shifted_detected,
                drift_vertices,
                stationary_drift: _,
                shifted_drift,
                flight_records,
                flight_timeline,
            } => {
                let _ = writeln!(
                    out,
                    "== {id}: observability stack (relay, {events} events, sample 1-in-{sample}) =="
                );
                let _ = writeln!(
                    out,
                    "{:>10} | {:>10} | {:>8} | {:>12} | {:>8}",
                    "provenance", "wall ms", "overhead", "records", "dropped"
                );
                for r in overhead {
                    let _ = writeln!(
                        out,
                        "{:>10} | {:>10.1} | {:>7.2}x | {:>12} | {:>8}",
                        r.mode, r.wall_ms, r.overhead, r.provenance_records, r.provenance_dropped
                    );
                }
                let _ = writeln!(
                    out,
                    "disabled <5%: {disabled_ok}, sampled <15%: {sampled_ok}, \
                     sim/threaded match sets identical: {fingerprints_equal}"
                );
                let _ = writeln!(
                    out,
                    "witness closure: {provenance_records} records, mean witness \
                     {mean_witness:.1} events, all reproduce byte-identically: \
                     {witnesses_reproduce}"
                );
                let _ = writeln!(
                    out,
                    "cost-model drift over {drift_vertices} vertices: stationary \
                     {stationary_score:.4} (ok: {stationary_ok}), shifted {shifted_score:.4} \
                     (detected: {shifted_detected})"
                );
                let _ = writeln!(out, "worst shifted vertices:\n{}", shifted_drift.render(3));
                let _ = writeln!(
                    out,
                    "flight recorder: {flight_records} records dumped at crash"
                );
                if !flight_timeline.is_empty() {
                    let _ = writeln!(out, "{flight_timeline}");
                }
            }
            ExperimentOutput::MigrateBench {
                id,
                events,
                window_old,
                window_wide,
                window_narrow,
                matched_tasks,
                identity_certified,
                sim_identical,
                threaded_identical,
                certified_identical,
                widened_certified_with_replay,
                narrow_refused,
                rejected_fails,
                migrated_matches,
            } => {
                let _ = writeln!(
                    out,
                    "== {id}: live migration soundness (fig1 workload, {events} events) =="
                );
                let _ = writeln!(
                    out,
                    "identity {window_old} -> {window_old}: certified {identity_certified}, \
                     {matched_tasks} matched task(s), sim identical {sim_identical}, threaded \
                     identical {threaded_identical} ({migrated_matches} matches)"
                );
                let _ = writeln!(
                    out,
                    "widened {window_old} -> {window_wide}: certified with replay and restores: \
                     {widened_certified_with_replay}"
                );
                let _ = writeln!(
                    out,
                    "narrowed {window_old} -> {window_narrow}: verifier refused {narrow_refused}, \
                     mapped restore fails {rejected_fails}"
                );
                let _ = writeln!(
                    out,
                    "certified restores identical: {certified_identical}, rejected restore \
                     fails: {rejected_fails}"
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepSettings {
        SweepSettings { reps: 1, seed: 3 }
    }

    #[test]
    fn experiment_ids_resolve() {
        assert_eq!(all_experiments().len(), 12);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run_experiment("fig99", &quick());
    }

    #[test]
    fn matcher_bench_small_instance_agrees() {
        let out = matcher_bench_sized("matcher", 2_000, &quick(), None);
        match &out {
            ExperimentOutput::MatcherBench {
                indexed,
                naive,
                fingerprints_equal,
                ..
            } => {
                assert!(*fingerprints_equal, "engines diverged");
                assert_eq!(indexed.matches_emitted, naive.matches_emitted);
                assert!(indexed.matches_emitted > 0);
                assert!(indexed.peak_open_partials > 0);
            }
            other => panic!("unexpected output {other:?}"),
        }
        assert_eq!(out.id(), "matcher");
        let text = out.render();
        assert!(text.contains("speedup"));
        assert!(text.contains("indexed"));
    }

    #[test]
    fn executor_bench_small_instance_agrees() {
        let mut tel = TelemetryCollector::new();
        let out = executor_bench_sized("executor", 20.0, &quick(), Some(&mut tel));
        match &out {
            ExperimentOutput::ExecutorBench {
                batched,
                naive,
                fingerprints_equal,
                ..
            } => {
                assert!(*fingerprints_equal, "transports diverged");
                assert_eq!(batched.matches, naive.matches);
                assert!(batched.matches > 0, "workload must produce matches");
                assert!(batched.frames_sent > 0, "plan must ship frames");
                // The naive baseline ships one message per frame and never
                // recycles; the batched transport must do strictly better
                // on both axes.
                assert_eq!(naive.frames_sent, naive.messages_framed);
                assert_eq!(naive.pool_reuse_ratio, 0.0);
                assert!(batched.frames_sent < batched.messages_framed);
                assert!(batched.mean_batch > 1.0);
            }
            other => panic!("unexpected output {other:?}"),
        }
        assert_eq!(out.id(), "executor");
        let text = out.render();
        assert!(text.contains("speedup"));
        assert!(text.contains("batched"));
        let (label, run) = tel.runs().next().expect("one instrumented run");
        assert_eq!(label, "executor/batched");
        assert!(
            run.transport_summary().is_some(),
            "instrumented run must carry transport telemetry"
        );
    }

    #[test]
    fn multiquery_bench_small_instance_agrees() {
        let mut tel = TelemetryCollector::new();
        let out = multiquery_bench_sized("multiquery", &[50, 500], 30.0, &quick(), Some(&mut tel));
        match &out {
            ExperimentOutput::MultiQueryBench {
                points,
                fingerprints_equal,
                ..
            } => {
                assert!(*fingerprints_equal, "evaluation modes diverged");
                assert_eq!(points.len(), 2);
                for p in points {
                    assert!(p.matches > 0, "workload must produce matches");
                    // Sharing must collapse duplicate structures: 500
                    // queries over 200 distinct structures cannot need
                    // more physical than logical tasks, and the larger
                    // point must show strictly fewer physical tasks than
                    // logical ones.
                    assert!(p.physical_tasks <= p.logical_tasks);
                    assert!(p.mean_candidates_shared > 0.0);
                }
                assert!(
                    points[1].physical_tasks < points[1].logical_tasks,
                    "500 queries over 200 structures must share tasks"
                );
                // The shared plan never does worse than one-task-per-vertex.
                assert!(points[1].speedup > 1.0, "speedup {}", points[1].speedup);
            }
            other => panic!("unexpected output {other:?}"),
        }
        assert_eq!(out.id(), "multiquery");
        let text = out.render();
        assert!(text.contains("sublinear"));
        let (label, run) = tel.runs().next().expect("one instrumented run");
        assert_eq!(label, "multiquery/q50/shared");
        assert!(
            run.discrimination_summary().is_some(),
            "instrumented run must carry discrimination telemetry"
        );
    }

    #[test]
    fn observe_bench_small_instance_holds() {
        let mut tel = TelemetryCollector::new();
        // Relay phase shortened to 10 units (wall-clock bound); the
        // witness/drift phase needs ~60 units or Poisson noise alone
        // pushes per-vertex drift past the stationary gate.
        let out = observe_bench_sized("observe", 10.0, 60.0, &quick(), Some(&mut tel));
        match &out {
            ExperimentOutput::ObserveBench {
                overhead,
                fingerprints_equal,
                provenance_records,
                witnesses_reproduce,
                stationary_ok,
                shifted_detected,
                flight_records,
                ..
            } => {
                assert_eq!(overhead.len(), 4);
                assert!(*fingerprints_equal, "sim and threaded diverged");
                assert!(*provenance_records > 0, "witness run must record");
                assert!(*witnesses_reproduce, "witness closure violated");
                assert!(*stationary_ok, "stationary drift too high");
                assert!(*shifted_detected, "3x shift not flagged");
                assert!(*flight_records > 0, "crash must dump flight records");
                // The "full" sampling mode records every sink match.
                assert!(overhead[3].provenance_records > 0);
                // Overhead gates are deliberately NOT asserted here: a
                // 10-unit trace is wall-noise-dominated; the CI lane gates
                // them on the real durations.
            }
            other => panic!("unexpected output {other:?}"),
        }
        let text = out.render();
        assert!(text.contains("witness closure"));
        assert!(
            text.contains("CRASH"),
            "timeline must show the crash:\n{text}"
        );
        let labels: Vec<&str> = tel.runs().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["observe/witness", "observe/crashed"]);
        let (_, witness_run) = tel.runs().next().unwrap();
        assert!(
            witness_run.provenance_summary().is_some(),
            "witness run must surface a provenance summary"
        );
    }

    #[test]
    fn matcher_bench_telemetry_quantiles_match_exact() {
        let mut tel = TelemetryCollector::new();
        matcher_bench_sized("matcher", 2_000, &quick(), Some(&mut tel));
        let (label, run) = tel.runs().next().expect("one instrumented run");
        assert_eq!(label, "matcher/indexed");
        assert!(run.registry.counter_value("sink_matches").unwrap() > 0);
        assert!(!run.tasks.is_empty());
        assert!(!run.series.is_empty());
        // The histogram-derived p50/p100 must match the exact sorted
        // percentiles within one bucket's relative error.
        assert!(!tel.checks().is_empty(), "no latency checks recorded");
        assert!(
            tel.checks_pass(),
            "latency checks failed: {:?}",
            tel.checks()
        );
    }

    #[test]
    fn render_ratio_sweep() {
        let out = ExperimentOutput::RatioSweep {
            id: "figX".into(),
            title: "test".into(),
            x_label: "x".into(),
            points: vec![RatioPoint {
                x: 0.5,
                amuse: vec![0.01],
                amuse_star: vec![0.02],
                oop: vec![0.9],
            }],
        };
        let text = out.render();
        assert!(text.contains("figX"));
        assert!(text.contains("0.5"));
        assert_eq!(out.id(), "figX");
    }
}
