//! Shared experiment plumbing: planning one (network, workload) instance
//! with every strategy and sweeping a parameter over repeated seeds.

use muse_core::algorithms::amuse::AMuseConfig;
use muse_core::algorithms::baselines::{centralized_cost, optimal_operator_placement_workload};
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::network::Network;
use muse_core::workload::Workload;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Costs and construction statistics of all strategies on one instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyCosts {
    /// Centralized evaluation cost (the reference, §7.1).
    pub centralized: f64,
    /// Traditional optimal single-sink operator placement.
    pub oop: f64,
    /// aMuSE workload cost (with multi-query reuse).
    pub amuse: f64,
    /// aMuSE* workload cost.
    pub amuse_star: f64,
    /// aMuSE construction time.
    pub amuse_time: Duration,
    /// aMuSE* construction time.
    pub amuse_star_time: Duration,
    /// Beneficial projections considered by aMuSE (summed over queries).
    pub amuse_projections: usize,
    /// Beneficial projections considered by aMuSE*.
    pub amuse_star_projections: usize,
}

impl StrategyCosts {
    /// Transmission ratio of a strategy (cost / centralized).
    pub fn ratio(&self, cost: f64) -> f64 {
        if self.centralized <= 0.0 {
            0.0
        } else {
            cost / self.centralized
        }
    }
}

/// Plans a workload with every strategy and collects costs.
///
/// # Panics
///
/// Panics if planning fails (generated workloads always reference
/// producible types).
pub fn evaluate_workload(workload: &Workload, network: &Network) -> StrategyCosts {
    let centralized = centralized_cost(workload.queries(), network);
    let oop = optimal_operator_placement_workload(workload.queries(), network);

    let amuse_plan = amuse_workload(workload, network, &AMuseConfig::default())
        .expect("aMuSE plans generated workloads");
    let star_plan = amuse_workload(workload, network, &AMuseConfig::star())
        .expect("aMuSE* plans generated workloads");

    StrategyCosts {
        centralized,
        oop,
        amuse: amuse_plan.total_cost,
        amuse_star: star_plan.total_cost,
        amuse_time: amuse_plan.stats.iter().map(|s| s.elapsed).sum(),
        amuse_star_time: star_plan.stats.iter().map(|s| s.elapsed).sum(),
        amuse_projections: amuse_plan
            .stats
            .iter()
            .map(|s| s.projections_beneficial)
            .sum(),
        amuse_star_projections: star_plan
            .stats
            .iter()
            .map(|s| s.projections_beneficial)
            .sum(),
    }
}

/// Sweep settings: repetitions per parameter value and the base seed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepSettings {
    /// Repetitions (distinct seeds) per parameter value.
    pub reps: u64,
    /// Base PRNG seed.
    pub seed: u64,
}

impl Default for SweepSettings {
    fn default() -> Self {
        Self { reps: 5, seed: 1 }
    }
}

impl SweepSettings {
    /// Reduced settings for smoke tests and CI.
    pub fn quick() -> Self {
        Self { reps: 2, seed: 1 }
    }

    /// The seeds of a sweep point.
    pub fn seeds(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.reps).map(|r| self.seed.wrapping_mul(1000).wrapping_add(r))
    }
}

/// One measured point of a ratio sweep: the parameter value and per-seed
/// transmission ratios per strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// aMuSE transmission ratios across seeds.
    pub amuse: Vec<f64>,
    /// aMuSE* transmission ratios across seeds.
    pub amuse_star: Vec<f64>,
    /// oOP transmission ratios across seeds.
    pub oop: Vec<f64>,
}

impl RatioPoint {
    /// Collects a sweep point from per-seed strategy costs.
    pub fn collect(x: f64, costs: &[StrategyCosts]) -> Self {
        Self {
            x,
            amuse: costs.iter().map(|c| c.ratio(c.amuse)).collect(),
            amuse_star: costs.iter().map(|c| c.ratio(c.amuse_star)).collect(),
            oop: costs.iter().map(|c| c.ratio(c.oop)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_sim::network_gen::{generate_network, NetworkConfig};
    use muse_sim::workload_gen::{generate_workload, WorkloadConfig};

    fn small_instance(seed: u64) -> (Network, Workload) {
        let net = generate_network(&NetworkConfig {
            nodes: 6,
            types: 6,
            event_node_ratio: 0.5,
            rate_skew: 1.4,
            max_rate: 10_000,
            seed,
        });
        let w = generate_workload(&WorkloadConfig {
            queries: 2,
            prims_per_query: 3,
            types: 6,
            seed,
            ..Default::default()
        });
        (net, w)
    }

    #[test]
    fn evaluate_orders_strategies() {
        for seed in 0..3 {
            let (net, w) = small_instance(seed);
            let costs = evaluate_workload(&w, &net);
            assert!(costs.centralized > 0.0);
            // oOP never beats centralized by construction? It can (it avoids
            // shipping local events), but never exceeds it by more than the
            // match streams. aMuSE must be within centralized.
            assert!(
                costs.amuse <= costs.centralized + 1e-6,
                "seed {seed}: amuse {} central {}",
                costs.amuse,
                costs.centralized
            );
            assert!(
                costs.amuse <= costs.amuse_star + 1e-6,
                "seed {seed}: amuse {} star {}",
                costs.amuse,
                costs.amuse_star
            );
            assert!(costs.ratio(costs.amuse) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn sweep_settings_generate_distinct_seeds() {
        let s = SweepSettings { reps: 4, seed: 9 };
        let seeds: Vec<u64> = s.seeds().collect();
        assert_eq!(seeds.len(), 4);
        let mut dedup = seeds.clone();
        dedup.dedup();
        assert_eq!(dedup, seeds);
    }

    #[test]
    fn ratio_point_collects_per_strategy() {
        let (net, w) = small_instance(1);
        let costs = vec![evaluate_workload(&w, &net)];
        let point = RatioPoint::collect(0.5, &costs);
        assert_eq!(point.amuse.len(), 1);
        assert_eq!(point.x, 0.5);
    }
}
