//! The observability workload shared by the `observe` harness experiment
//! (`BENCH_observe.json`) and the `explain` subcommand.
//!
//! The drift monitor compares the §4.4 cost model's *per-rate-unit*
//! predictions against *per-tick* observed rates, so the workload here is
//! built to make the two commensurable on stationary input:
//!
//! * every event type has exactly one producing node — the trace
//!   generator runs one Poisson process per producing `(node, type)`
//!   pair, so a multi-producer type would observe a multiple of the
//!   model's declared rate;
//! * queries are two-primitive `SEQ`s whose window spans exactly
//!   `ticks_per_unit / rate_scale` ticks — the one-time-unit horizon the
//!   model's product rule implicitly prices (`SEQ(A,B)` observes
//!   `r_A · r_B · W` matches per tick in per-tick rates, which equals the
//!   modeled `r_A · r_B` exactly when `W` is one time unit).
//!
//! On this workload a stationary trace scores near-zero drift while a
//! trace generated from a rate-shifted network scores toward 1 — the two
//! gates `scripts/ci.sh` checks. The same workload serves the witness
//! closure: with `provenance_sample = 1` every sink match gets a
//! [`ProvenanceRecord`], and replaying *only* the recorded witness events
//! must reproduce the match byte-for-byte.

use muse_core::algorithms::amuse::AMuseConfig;
use muse_core::algorithms::multi_query::amuse_workload;
use muse_core::catalog::Catalog;
use muse_core::event::{Event, Timestamp};
use muse_core::graph::PlanContext;
use muse_core::network::{Network, NetworkBuilder};
use muse_core::query::{Pattern, Predicate};
use muse_core::types::{EventTypeId, NodeId};
use muse_core::workload::Workload;
use muse_runtime::codec::encode_match;
use muse_runtime::deploy::Deployment;
use muse_runtime::matcher::Match;
use muse_runtime::sim::{run_simulation, SimConfig, SimReport};
use muse_sim::traces::{generate_traces, TraceConfig};
use muse_telemetry::{ProvenanceRecord, TelemetrySpec};
use std::collections::BTreeSet;

/// Virtual ticks per network rate unit in the generated traces.
pub const TICKS_PER_UNIT: f64 = 100.0;

/// Trace rate multiplier (1: the network's declared rates verbatim).
pub const RATE_SCALE: f64 = 1.0;

/// Query window in ticks: exactly one rate unit (`TICKS_PER_UNIT /
/// RATE_SCALE`), the horizon that makes modeled and observed `SEQ` rates
/// agree on stationary input.
pub const WINDOW: Timestamp = 100;

/// Declared per-unit rates of the three event types.
const RATES: [f64; 3] = [3.0, 4.0, 2.0];

fn scaled_network(scale: f64) -> Network {
    let mut b = NetworkBuilder::new(RATES.len(), RATES.len());
    for (i, r) in RATES.iter().enumerate() {
        b = b.node(NodeId(i as u16), [EventTypeId(i as u16)]);
        b = b.rate(EventTypeId(i as u16), r * scale);
    }
    b.build()
}

/// The calibrated network: three nodes, each the sole producer of one
/// event type.
pub fn observe_network() -> Network {
    scaled_network(1.0)
}

/// The same topology with every rate tripled — used only to *generate*
/// drifted traces; plans and drift reports keep pricing against
/// [`observe_network`]'s declared rates.
pub fn shifted_network() -> Network {
    scaled_network(3.0)
}

/// Two-primitive `SEQ` queries (`SEQ(A,B)`, `SEQ(B,C)`) at the calibrated
/// window, planned by aMuSE over the calibrated network.
pub fn observe_deployment(network: &Network) -> Deployment {
    let leaf = |i: u16| Pattern::leaf(EventTypeId(i));
    let workload = Workload::from_patterns(
        Catalog::with_anonymous_types(RATES.len()),
        [
            (
                Pattern::seq([leaf(0), leaf(1)]),
                Vec::<Predicate>::new(),
                WINDOW,
            ),
            (
                Pattern::seq([leaf(1), leaf(2)]),
                Vec::<Predicate>::new(),
                WINDOW,
            ),
        ],
    )
    .expect("observe patterns build a workload");
    let plan = amuse_workload(&workload, network, &AMuseConfig::default())
        .expect("observe workload plans");
    let ctx = PlanContext::new(workload.queries(), network, &plan.table);
    Deployment::new(&plan.merged, &ctx)
}

/// A stationary Poisson trace over `network` at the calibrated tick scale.
pub fn observe_trace(network: &Network, duration: f64, seed: u64) -> Vec<Event> {
    generate_traces(
        network,
        &TraceConfig {
            duration,
            ticks_per_unit: TICKS_PER_UNIT,
            rate_scale: RATE_SCALE,
            key_domain: 8,
            band_domain: 0,
            seed,
        },
    )
}

/// The telemetry spec of the witness run: every sink match recorded
/// (`provenance_sample = 1`), with a ring large enough that nothing is
/// evicted at the durations the harness uses.
pub fn witness_spec() -> TelemetrySpec {
    TelemetrySpec {
        provenance_sample: 1,
        provenance_capacity: 1 << 16,
        ..TelemetrySpec::default()
    }
}

/// Witness-run trace duration in time units (`--quick` halves the work).
pub fn witness_duration(quick: bool) -> f64 {
    if quick {
        60.0
    } else {
        120.0
    }
}

/// Builds the observe workload and runs it once on the simulator with
/// full provenance sampling. Shared by the `observe` experiment's witness
/// phase and the `explain` subcommand, so a hash printed by one is
/// resolvable by the other.
pub fn witness_run(duration: f64, seed: u64) -> (Deployment, Vec<Event>, SimReport) {
    let network = observe_network();
    let deployment = observe_deployment(&network);
    let trace = observe_trace(&network, duration, seed);
    let config = SimConfig {
        telemetry: Some(witness_spec()),
        ..SimConfig::default()
    };
    let report = run_simulation(&deployment, &trace, &config);
    (deployment, trace, report)
}

fn seq_key(m: &Match) -> Vec<u64> {
    let mut seqs: Vec<u64> = m.entries().iter().map(|(_, e)| e.seq).collect();
    seqs.sort_unstable();
    seqs
}

/// Finds the sink match a provenance record describes in a run's
/// per-query match lists, by witness sequence-number set.
pub fn find_recorded_match<'a>(
    matches: &'a [Vec<Match>],
    rec: &ProvenanceRecord,
) -> Option<&'a Match> {
    let mut want = rec.witness_seqs();
    want.sort_unstable();
    matches
        .get(rec.query as usize)?
        .iter()
        .find(|m| seq_key(m) == want)
}

/// The witness-closure property of one record: filtering the trace down
/// to exactly the witness sequence numbers and replaying it through a
/// fresh simulation must reproduce the recorded match byte-identically
/// (same wire encoding as `original`, the match from the full run).
pub fn witness_closure_holds(
    deployment: &Deployment,
    trace: &[Event],
    rec: &ProvenanceRecord,
    original: &Match,
) -> bool {
    let seqs: BTreeSet<u64> = rec.witness_seqs().into_iter().collect();
    let filtered: Vec<Event> = trace
        .iter()
        .filter(|e| seqs.contains(&e.seq))
        .cloned()
        .collect();
    if filtered.len() != seqs.len() {
        return false;
    }
    let replay = run_simulation(deployment, &filtered, &SimConfig::default());
    match find_recorded_match(&replay.matches, rec) {
        Some(reproduced) => {
            use bytes::Buf as _;
            encode_match(reproduced).chunk() == encode_match(original).chunk()
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_run_records_and_closes() {
        let (deployment, trace, mut report) = witness_run(20.0, 11);
        let run = report.telemetry.take().expect("telemetry requested");
        assert!(report.metrics.sink_matches > 0, "workload must match");
        assert_eq!(
            run.provenance.len() as u64,
            report.metrics.sink_matches,
            "sample=1 must record every sink match without eviction"
        );
        for rec in run.provenance.records() {
            let original = find_recorded_match(&report.matches, rec)
                .expect("record describes a delivered match");
            assert!(
                witness_closure_holds(&deployment, &trace, rec, original),
                "witness replay diverged for {:016x}",
                rec.match_hash
            );
        }
    }

    #[test]
    fn stationary_trace_scores_near_zero_drift() {
        use muse_runtime::drift::CostDrift;
        let duration = 80.0;
        let network = observe_network();
        let deployment = observe_deployment(&network);
        let trace = observe_trace(&network, duration, 5);
        let config = SimConfig {
            telemetry: Some(TelemetrySpec::default()),
            ..SimConfig::default()
        };
        let mut report = run_simulation(&deployment, &trace, &config);
        let run = report.telemetry.take().unwrap();
        let ticks = (duration * TICKS_PER_UNIT) as u64;
        let drift = CostDrift::compute(&deployment, &run.rates, TICKS_PER_UNIT, RATE_SCALE, ticks);
        assert!(
            drift.score < 0.10,
            "stationary workload must track the model: {}",
            drift.render(0)
        );
    }

    #[test]
    fn shifted_trace_is_flagged() {
        use muse_runtime::drift::CostDrift;
        let duration = 80.0;
        let network = observe_network();
        let deployment = observe_deployment(&network);
        let trace = observe_trace(&shifted_network(), duration, 5);
        let config = SimConfig {
            telemetry: Some(TelemetrySpec::default()),
            ..SimConfig::default()
        };
        let mut report = run_simulation(&deployment, &trace, &config);
        let run = report.telemetry.take().unwrap();
        let ticks = (duration * TICKS_PER_UNIT) as u64;
        let drift = CostDrift::compute(&deployment, &run.rates, TICKS_PER_UNIT, RATE_SCALE, ticks);
        assert!(
            drift.score > 0.5,
            "3x rate shift must dominate the weighted score: {}",
            drift.render(0)
        );
    }
}
