//! Small statistics helpers for experiment reporting (the paper reports
//! medians with box plots over repeated runs).

use serde::{Deserialize, Serialize};

/// Five-number summary of a sample: min, lower quartile, median, upper
/// quartile, max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Percentile of a sample (p ∈ [0, 100]), nearest-rank on the sorted data.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Computes the five-number summary of a sample.
pub fn summarize(values: &[f64]) -> Summary {
    Summary {
        min: percentile(values, 0.0),
        q1: percentile(values, 25.0),
        median: percentile(values, 50.0),
        q3: percentile(values, 75.0),
        max: percentile(values, 100.0),
    }
}

/// Geometric mean (transmission ratios are multiplicative quantities).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
    }

    #[test]
    fn summary_ordered() {
        let v: Vec<f64> = (1..=99).map(|i| i as f64).collect();
        let s = summarize(&v);
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 99.0);
        assert_eq!(s.median, 50.0);
    }

    #[test]
    fn single_value_summary() {
        let s = summarize(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let v = [0.01, 1.0];
        assert!((geometric_mean(&v) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
