//! The transport-bound distributed workload shared by the transport
//! criterion bench and the `executor` harness experiment
//! (`BENCH_executor.json`).
//!
//! A relay topology: three edge nodes each produce one frequent event
//! type, two center nodes each produce a rare anchor type, and each query
//! `SEQ(edge_i, anchor_c)` is pinned wholesale to its center `c` through a
//! hand-built [`OperatorPlacement`] — deliberately *not* an aMuSE plan,
//! because aMuSE exists to minimize exactly the traffic this workload
//! needs. Every edge event therefore crosses the network to every center
//! as a single-event partial match (the streams differ per center, so
//! once-per-node multiplexing cannot dedup them), while the join work
//! there stays linear: edge partials are inserted into a window store that
//! only the rare anchors sweep. The result is a run whose cost is
//! dominated by the inter-node data plane — the component the batched
//! transport optimizes — rather than by the join engine, which
//! `BENCH_matcher.json` already isolates.

use muse_core::algorithms::baselines::{placement_to_graph, OperatorPlacement};
use muse_core::catalog::Catalog;
use muse_core::event::{Event, Timestamp};
use muse_core::graph::{MuseGraph, PlanContext};
use muse_core::network::{Network, NetworkBuilder};
use muse_core::projection::ProjectionTable;
use muse_core::query::{Pattern, Predicate};
use muse_core::types::{EventTypeId, NodeId};
use muse_core::workload::Workload;
use muse_runtime::deploy::Deployment;
use muse_sim::traces::{generate_traces, TraceConfig};

/// The query window (ticks): anchors sweep this span of buffered edge
/// partials, so sink-match volume stays proportional to the anchor rate.
pub const WINDOW: Timestamp = 100;

/// Edge event types (one per edge node) relayed to every center.
pub const EDGE_TYPES: usize = 3;

/// Center nodes; each edge event ships to every one of them, so the
/// expected messages-per-event ratio of the workload is `CENTERS`.
pub const CENTERS: usize = 2;

/// Events per time unit of each edge type (before trace `rate_scale`).
const EDGE_RATE: f64 = 100.0;

/// Events per time unit of each rare anchor type.
const ANCHOR_RATE: f64 = 0.1;

/// Edge node `i` (producing edge type `i`) is node `CENTERS + i`.
fn edge_node(i: usize) -> NodeId {
    NodeId((CENTERS + i) as u16)
}

/// Center `c`'s anchor type is `EDGE_TYPES + c`.
fn anchor_type(c: usize) -> EventTypeId {
    EventTypeId((EDGE_TYPES + c) as u16)
}

/// The relay network: `CENTERS` center nodes each produce one rare anchor
/// type; `EDGE_TYPES` edge nodes each produce one frequent edge type.
pub fn stress_network() -> Network {
    let mut b = NetworkBuilder::new(CENTERS + EDGE_TYPES, EDGE_TYPES + CENTERS);
    for c in 0..CENTERS {
        b = b.node(NodeId(c as u16), [anchor_type(c)]);
        b = b.rate(anchor_type(c), ANCHOR_RATE);
    }
    for i in 0..EDGE_TYPES {
        b = b.node(edge_node(i), [EventTypeId(i as u16)]);
        b = b.rate(EventTypeId(i as u16), EDGE_RATE);
    }
    b.build()
}

/// Deploys `SEQ(edge_i, anchor_c)` for every (edge type, center) pair,
/// each pinned to its center, so every edge event ships to every center.
pub fn stress_deployment(network: &Network) -> Deployment {
    let workload = Workload::from_patterns(
        Catalog::with_anonymous_types(EDGE_TYPES + CENTERS),
        (0..CENTERS).flat_map(|c| {
            (0..EDGE_TYPES).map(move |i| {
                (
                    Pattern::seq([
                        Pattern::leaf(EventTypeId(i as u16)),
                        Pattern::leaf(anchor_type(c)),
                    ]),
                    Vec::<Predicate>::new(),
                    WINDOW,
                )
            })
        }),
    )
    .expect("relay patterns build a workload");

    let mut table = ProjectionTable::new();
    let mut graph = MuseGraph::new();
    for (q_idx, q) in workload.queries().iter().enumerate() {
        let center = NodeId((q_idx / EDGE_TYPES) as u16);
        let placement = OperatorPlacement {
            assignments: vec![(q.prims(), center)],
            cost: 0.0,
        };
        let g = placement_to_graph(q, &placement, network, &mut table)
            .expect("pinned placement builds a graph");
        graph.union_with(&g);
    }
    let ctx = PlanContext::new(workload.queries(), network, &table);
    Deployment::new(&graph, &ctx)
}

/// Measurement attributes added to every event beyond the join key,
/// mirroring the cluster-trace schema (job/machine ids, CPU, memory, …):
/// the wire size of a message is payload-dominated, as it is for real
/// traces, so per-message encoding is a first-order transport cost.
const EXTRA_ATTRS: u8 = 8;

/// A Poisson trace over the relay network. Events carry a key attribute
/// (domain 64) plus [`EXTRA_ATTRS`] measurement attributes, so both
/// transports ship realistically sized payloads, not bare timestamps.
pub fn stress_trace(network: &Network, duration: f64, seed: u64) -> Vec<Event> {
    let mut events = generate_traces(
        network,
        &TraceConfig {
            duration,
            ticks_per_unit: 100.0,
            rate_scale: 1.0,
            key_domain: 64,
            band_domain: 0,
            seed,
        },
    );
    for e in &mut events {
        // Deterministic pseudo-measurements derived from the sequence
        // number; values are irrelevant to matching (only the key attr is
        // ever compared), but they must ride the wire.
        for j in 0..EXTRA_ATTRS {
            let x = e.seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (8 + j);
            let attr = muse_core::types::AttrId(1 + j);
            if j % 2 == 0 {
                e.payload
                    .set(attr, muse_core::event::Value::Int((x & 0xffff) as i64));
            } else {
                e.payload.set(
                    attr,
                    muse_core::event::Value::Float((x & 0xffff) as f64 / 16.0),
                );
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_runtime::sim::{run_simulation, SimConfig};

    #[test]
    fn relay_workload_is_transport_dominated() {
        let net = stress_network();
        let deployment = stress_deployment(&net);
        let events = stress_trace(&net, 20.0, 7);
        assert!(!events.is_empty());
        let report = run_simulation(&deployment, &events, &SimConfig::default());
        // Every edge event must cross the network to every center: the
        // pinned placements leave nothing local to evaluate at the edges.
        let edge_events = events.iter().filter(|e| e.ty.0 < EDGE_TYPES as u16).count() as u64;
        assert!(
            report.metrics.messages_sent >= (CENTERS as u64) * edge_events,
            "relay must multicast every edge event ({} sent vs {} edge events x {} centers)",
            report.metrics.messages_sent,
            edge_events,
            CENTERS
        );
        assert!(report.metrics.sink_matches > 0, "anchors must find matches");
    }
}
