//! The skip-till-any-match join stress workload shared by the matcher
//! criterion bench and the `matcher` harness experiment
//! (`BENCH_matcher.json`).
//!
//! The workload drives one join of `SEQ(AND(A, B), C)` — β = {AB, C} — with
//! a long, mildly out-of-order stream of AB matches and C singles spanning
//! hundreds of windows. An equality predicate on a bucketed key keeps the
//! emitted-match volume low, so the measured cost is dominated by the store
//! probes and eviction that the indexed engine optimizes, not by shared
//! emission work. Run with a slack factor > 1 (the threaded executor's
//! out-of-order tolerance), the naive engine buffers and cross-products
//! `slack` windows of matches and rescans them on every arrival, while the
//! indexed engine binary-searches the single window-compatible slice and
//! drains dead prefixes by watermark stride.

use muse_core::event::{Event, Payload, Timestamp, Value};
use muse_core::query::{CmpOp, Pattern, Predicate, Query};
use muse_core::types::{AttrId, EventTypeId, NodeId, PrimId, PrimSet, QueryId};
use muse_runtime::matcher::Match;

/// The stress query: `SEQ(AND(A, B), C)` with an `A.key == C.key`
/// predicate, window 200.
pub fn stress_query() -> Query {
    let pred = Predicate::binary(
        (PrimId(0), AttrId(0)),
        CmpOp::Eq,
        (PrimId(2), AttrId(0)),
        1.0 / KEY_BUCKETS as f64,
    );
    Query::build(
        QueryId(0),
        &Pattern::seq([
            Pattern::and([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
            Pattern::leaf(EventTypeId(2)),
        ]),
        vec![pred],
        WINDOW,
    )
    .unwrap()
}

/// The query window (ticks).
pub const WINDOW: Timestamp = 200;

/// Distinct predicate keys: each C joins with roughly
/// `window / (2 · STEP · KEY_BUCKETS)` buffered ABs.
pub const KEY_BUCKETS: u64 = 16;

/// Ticks between consecutive arrivals.
const STEP: u64 = 5;

/// The join's slot layout: slot 0 takes AB matches, slot 1 takes C singles.
pub fn stress_slots() -> [PrimSet; 2] {
    [
        [PrimId(0), PrimId(1)].into_iter().collect(),
        [PrimId(2)].into_iter().collect(),
    ]
}

fn keyed(seq: u64, ty: u16, time: Timestamp, key: i64) -> Event {
    let mut p = Payload::new();
    p.set(AttrId(0), Value::Int(key));
    Event::with_payload(seq, EventTypeId(ty), time, NodeId(0), p)
}

/// Generates `n` join arrivals `(slot, match)`: alternating AB matches and
/// C singles whose base time advances `STEP` ticks per arrival, with a
/// deterministic backwards jitter of up to half a window (the out-of-order
/// arrival pattern that motivates eviction slack).
pub fn stress_feed(n: usize, seed: u64) -> Vec<(usize, Match)> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        // xorshift64*: cheap, deterministic, no external dependency.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut out = Vec::with_capacity(n);
    for k in 0..n as u64 {
        let base = WINDOW + k * STEP;
        let t = base - next() % (WINDOW / 2);
        let key = (next() % KEY_BUCKETS) as i64;
        let seq = k * 2 + 1;
        if k % 2 == 0 {
            let ab = Match::new(vec![
                (PrimId(0), keyed(seq, 0, t, key)),
                (PrimId(1), keyed(seq + 1, 1, t + 1, key)),
            ]);
            out.push((0usize, ab));
        } else {
            out.push((1usize, Match::single(PrimId(2), keyed(seq, 2, t + 2, key))));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_runtime::matcher::{JoinTask, NaiveJoinTask};

    #[test]
    fn feed_is_deterministic_and_within_jitter() {
        let a = stress_feed(200, 7);
        let b = stress_feed(200, 7);
        assert_eq!(a.len(), 200);
        for ((sa, ma), (sb, mb)) in a.iter().zip(&b) {
            assert_eq!(sa, sb);
            assert_eq!(ma.fingerprint(), mb.fingerprint());
        }
    }

    #[test]
    fn workload_produces_matches_on_both_engines() {
        let q = stress_query();
        let slots = stress_slots();
        let mut indexed = JoinTask::with_slack(&q, q.prims(), &slots, 4.0);
        let mut naive = NaiveJoinTask::with_slack(&q, q.prims(), &slots, 4.0);
        for (slot, m) in stress_feed(400, 1) {
            let a = indexed.on_match(slot, m.clone());
            let b = naive.on_match(slot, m);
            assert_eq!(
                a.iter().map(Match::fingerprint).collect::<Vec<_>>(),
                b.iter().map(Match::fingerprint).collect::<Vec<_>>()
            );
        }
        assert!(indexed.emitted() > 0, "stress feed must emit matches");
        assert_eq!(indexed.emitted(), naive.emitted());
    }
}
