//! Experiment harness CLI: regenerates every table and figure of the
//! paper's evaluation (§7).
//!
//! ```text
//! harness <experiment|all> [--reps N] [--seed S] [--quick] [--out DIR] [--telemetry DIR]
//! harness explain <match-hash|all> [--seed S] [--quick]
//! ```
//!
//! Experiments: fig5a fig5b fig5c fig5d fig6a fig6b fig7a fig7b fig7c fig7d
//! table3 fig8. Results are printed as text tables and, with `--out`,
//! written as JSON for downstream plotting. Extra experiments are
//! run only when named explicitly: `ablation` (design-choice ablations),
//! `matcher` (indexed vs. naive join engine; written as
//! `BENCH_matcher.json`), `executor` (batched vs. naive inter-node
//! transport on the threaded executor; written as `BENCH_executor.json`),
//! `faults` (crash recovery on the threaded executor; written as
//! `BENCH_faults.json`), `multiquery` (shared evaluation at scale;
//! `BENCH_multiquery.json`), `observe` (provenance overhead, witness
//! closure, cost-model drift, flight recorder; `BENCH_observe.json`), and
//! `migrate` (live-migration soundness gate: certified plan pairs restore
//! fingerprint-identical, rejected pairs fail the restore;
//! `BENCH_migrate.json`).
//!
//! `explain` re-runs the observe witness workload with full provenance
//! sampling and replays one recorded match (by its hex hash, as printed
//! in provenance exports) — or every record with `all` — checking that
//! the witness event set alone reproduces the match byte-identically.
//!
//! With `--telemetry DIR`, the executing experiments (`table3`, `fig8`,
//! `matcher`, `executor`) additionally collect run telemetry — registry snapshots,
//! per-task series, lineage traces, provenance records — written as
//! `DIR/telemetry.json`, `DIR/series.jsonl`, `DIR/trace.jsonl`, and
//! `DIR/provenance.jsonl`, with a per-task summary table printed per run
//! and the experiment wall time sourced from the telemetry registry.

use muse_bench::experiments::{all_experiments, run_experiment_telemetry};
use muse_bench::runner::SweepSettings;
use muse_bench::telemetry::{TelemetryCollector, TelemetryOutput};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: harness <experiment|all> [--reps N] [--seed S] [--quick] [--out DIR] \
             [--telemetry DIR]\n\
             \u{20}      harness explain <match-hash|all> [--seed S] [--quick]\n\
             experiments: {} all",
            all_experiments().join(" ")
        );
        return ExitCode::from(2);
    }
    if args[0] == "explain" {
        return run_explain(&args[1..]);
    }

    let mut ids: Vec<String> = Vec::new();
    let mut settings = SweepSettings::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut telemetry_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                settings.reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
            }
            "--seed" => {
                i += 1;
                settings.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--quick" => settings = SweepSettings::quick(),
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--out needs a path")),
                ));
            }
            "--telemetry" => {
                i += 1;
                telemetry_dir = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--telemetry needs a path")),
                ));
            }
            "all" => ids.extend(all_experiments().iter().map(|s| s.to_string())),
            id if all_experiments().contains(&id)
                || id == "ablation"
                || id == "matcher"
                || id == "executor"
                || id == "faults"
                || id == "multiquery"
                || id == "observe"
                || id == "migrate" =>
            {
                ids.push(id.to_string())
            }
            other => die(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if ids.is_empty() {
        die("no experiment selected");
    }
    ids.dedup();

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let mut telemetry_out = telemetry_dir.as_ref().map(|_| TelemetryOutput::new());
    let mut all_checks_pass = true;
    for id in &ids {
        eprintln!("running {id} (reps = {}) …", settings.reps);
        let mut collector = telemetry_dir.as_ref().map(|_| TelemetryCollector::new());
        let started = std::time::Instant::now();
        let output = run_experiment_telemetry(id, &settings, collector.as_mut());
        let elapsed = started.elapsed();
        println!("{}", output.render());
        if let Some(collector) = &mut collector {
            // The experiment's wall time flows through the telemetry
            // registry; the summary line below reads it (and the peak
            // live-match gauge) back from there rather than from ad-hoc
            // `Instant` arithmetic.
            collector.set_wall_ns(elapsed.as_nanos() as u64);
            for (label, run) in collector.runs() {
                if !run.tasks.is_empty() {
                    println!("-- {label} --\n{}", run.task_table());
                }
                if let Some(transport) = run.transport_summary() {
                    println!("-- {label} transport --\n{transport}");
                }
                if let Some(disc) = run.discrimination_summary() {
                    println!("-- {label} discrimination --\n{disc}");
                }
                if let Some(rec) = run.recovery_summary() {
                    println!("-- {label} recovery --\n{rec}");
                }
                if let Some(prov) = run.provenance_summary() {
                    println!("-- {label} provenance --\n{prov}");
                }
            }
            eprintln!("{id} finished: {}\n", collector.summary_line());
            all_checks_pass &= collector.checks_pass();
            if let Some(out) = &mut telemetry_out {
                out.add(id, collector);
            }
        } else {
            eprintln!("{id} finished in {elapsed:.1?}\n");
        }
        if let Some(dir) = &out_dir {
            // The matcher and executor benches are named deliverables, not
            // paper figures.
            let file = match id.as_str() {
                "matcher" => "BENCH_matcher.json".to_string(),
                "executor" => "BENCH_executor.json".to_string(),
                "faults" => "BENCH_faults.json".to_string(),
                "multiquery" => "BENCH_multiquery.json".to_string(),
                "observe" => "BENCH_observe.json".to_string(),
                "migrate" => "BENCH_migrate.json".to_string(),
                _ => format!("{id}.json"),
            };
            let path = dir.join(file);
            let json = serde_json::to_string_pretty(&output).expect("serialize result");
            std::fs::write(&path, json).expect("write result file");
            eprintln!("wrote {}", path.display());
        }
    }
    if let (Some(dir), Some(out)) = (&telemetry_dir, &telemetry_out) {
        let paths = out.write(dir).expect("write telemetry files");
        for p in paths {
            eprintln!("wrote {}", p.display());
        }
    }
    if !all_checks_pass {
        eprintln!("error: telemetry latency checks failed (histogram vs. exact percentiles)");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// `harness explain <match-hash|all> [--seed S] [--quick]`: replays the
/// observe witness workload and checks, for the targeted provenance
/// record(s), that the recorded witness events alone reproduce the match
/// byte-identically.
fn run_explain(args: &[String]) -> ExitCode {
    use muse_bench::observe::{
        find_recorded_match, witness_closure_holds, witness_duration, witness_run,
    };

    let mut target: Option<String> = None;
    let mut seed: u64 = 1;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--quick" => quick = true,
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_string());
            }
            other => die(&format!("unknown explain argument '{other}'")),
        }
        i += 1;
    }
    let target = target.unwrap_or_else(|| "all".to_string());

    let duration = witness_duration(quick);
    eprintln!("replaying observe witness run (duration = {duration}, seed = {seed}) …");
    let (deployment, trace, mut report) = witness_run(duration, seed);
    let run = report
        .telemetry
        .take()
        .unwrap_or_else(|| die("witness run produced no telemetry"));

    let records: Vec<_> = if target == "all" {
        run.provenance.records().collect()
    } else {
        let hash = u64::from_str_radix(target.trim_start_matches("0x"), 16)
            .unwrap_or_else(|_| die(&format!("'{target}' is not a hex match hash or 'all'")));
        match run.provenance.find(hash) {
            Some(rec) => vec![rec],
            None => {
                eprintln!("error: no provenance record with hash {hash:016x}");
                return ExitCode::from(1);
            }
        }
    };
    if records.is_empty() {
        eprintln!("error: witness run recorded no matches");
        return ExitCode::from(1);
    }

    let mut failures = 0usize;
    for rec in &records {
        let verdict = match find_recorded_match(&report.matches, rec) {
            Some(original) if witness_closure_holds(&deployment, &trace, rec, original) => {
                "reproduced"
            }
            Some(_) => {
                failures += 1;
                "FAILED (replay diverged)"
            }
            None => {
                failures += 1;
                "FAILED (match not delivered)"
            }
        };
        println!(
            "{:016x} t={} query={} witnesses={} absence={} -> {verdict}",
            rec.match_hash,
            rec.t,
            rec.query,
            rec.witness.len(),
            rec.absence.len(),
        );
    }
    println!(
        "{} of {} record(s) reproduced byte-identically from their witness sets",
        records.len() - failures,
        records.len()
    );
    if failures > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
