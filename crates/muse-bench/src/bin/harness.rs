//! Experiment harness CLI: regenerates every table and figure of the
//! paper's evaluation (§7).
//!
//! ```text
//! harness <experiment|all> [--reps N] [--seed S] [--quick] [--out DIR] [--telemetry DIR]
//! ```
//!
//! Experiments: fig5a fig5b fig5c fig5d fig6a fig6b fig7a fig7b fig7c fig7d
//! table3 fig8. Results are printed as text tables and, with `--out`,
//! written as JSON for downstream plotting. Four extra experiments are
//! run only when named explicitly: `ablation` (design-choice ablations),
//! `matcher` (indexed vs. naive join engine; written as
//! `BENCH_matcher.json`), `executor` (batched vs. naive inter-node
//! transport on the threaded executor; written as `BENCH_executor.json`),
//! and `faults` (crash recovery on the threaded executor; written as
//! `BENCH_faults.json`).
//!
//! With `--telemetry DIR`, the executing experiments (`table3`, `fig8`,
//! `matcher`, `executor`) additionally collect run telemetry — registry snapshots,
//! per-task series, lineage traces — written as `DIR/telemetry.json`,
//! `DIR/series.jsonl`, and `DIR/trace.jsonl`, with a per-task summary
//! table printed per run and the experiment wall time sourced from the
//! telemetry registry.

use muse_bench::experiments::{all_experiments, run_experiment_telemetry};
use muse_bench::runner::SweepSettings;
use muse_bench::telemetry::{TelemetryCollector, TelemetryOutput};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: harness <experiment|all> [--reps N] [--seed S] [--quick] [--out DIR] \
             [--telemetry DIR]\n\
             experiments: {} all",
            all_experiments().join(" ")
        );
        return ExitCode::from(2);
    }

    let mut ids: Vec<String> = Vec::new();
    let mut settings = SweepSettings::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut telemetry_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                settings.reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
            }
            "--seed" => {
                i += 1;
                settings.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--quick" => settings = SweepSettings::quick(),
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--out needs a path")),
                ));
            }
            "--telemetry" => {
                i += 1;
                telemetry_dir = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--telemetry needs a path")),
                ));
            }
            "all" => ids.extend(all_experiments().iter().map(|s| s.to_string())),
            id if all_experiments().contains(&id)
                || id == "ablation"
                || id == "matcher"
                || id == "executor"
                || id == "faults"
                || id == "multiquery" =>
            {
                ids.push(id.to_string())
            }
            other => die(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if ids.is_empty() {
        die("no experiment selected");
    }
    ids.dedup();

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let mut telemetry_out = telemetry_dir.as_ref().map(|_| TelemetryOutput::new());
    let mut all_checks_pass = true;
    for id in &ids {
        eprintln!("running {id} (reps = {}) …", settings.reps);
        let mut collector = telemetry_dir.as_ref().map(|_| TelemetryCollector::new());
        let started = std::time::Instant::now();
        let output = run_experiment_telemetry(id, &settings, collector.as_mut());
        let elapsed = started.elapsed();
        println!("{}", output.render());
        if let Some(collector) = &mut collector {
            // The experiment's wall time flows through the telemetry
            // registry; the summary line below reads it (and the peak
            // live-match gauge) back from there rather than from ad-hoc
            // `Instant` arithmetic.
            collector.set_wall_ns(elapsed.as_nanos() as u64);
            for (label, run) in collector.runs() {
                if !run.tasks.is_empty() {
                    println!("-- {label} --\n{}", run.task_table());
                }
                if let Some(transport) = run.transport_summary() {
                    println!("-- {label} transport --\n{transport}");
                }
                if let Some(disc) = run.discrimination_summary() {
                    println!("-- {label} discrimination --\n{disc}");
                }
            }
            eprintln!("{id} finished: {}\n", collector.summary_line());
            all_checks_pass &= collector.checks_pass();
            if let Some(out) = &mut telemetry_out {
                out.add(id, collector);
            }
        } else {
            eprintln!("{id} finished in {elapsed:.1?}\n");
        }
        if let Some(dir) = &out_dir {
            // The matcher and executor benches are named deliverables, not
            // paper figures.
            let file = match id.as_str() {
                "matcher" => "BENCH_matcher.json".to_string(),
                "executor" => "BENCH_executor.json".to_string(),
                "faults" => "BENCH_faults.json".to_string(),
                "multiquery" => "BENCH_multiquery.json".to_string(),
                _ => format!("{id}.json"),
            };
            let path = dir.join(file);
            let json = serde_json::to_string_pretty(&output).expect("serialize result");
            std::fs::write(&path, json).expect("write result file");
            eprintln!("wrote {}", path.display());
        }
    }
    if let (Some(dir), Some(out)) = (&telemetry_dir, &telemetry_out) {
        let paths = out.write(dir).expect("write telemetry files");
        for p in paths {
            eprintln!("wrote {}", p.display());
        }
    }
    if !all_checks_pass {
        eprintln!("error: telemetry latency checks failed (histogram vs. exact percentiles)");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
