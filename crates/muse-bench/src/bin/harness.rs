//! Experiment harness CLI: regenerates every table and figure of the
//! paper's evaluation (§7).
//!
//! ```text
//! harness <experiment|all> [--reps N] [--seed S] [--quick] [--out DIR]
//! ```
//!
//! Experiments: fig5a fig5b fig5c fig5d fig6a fig6b fig7a fig7b fig7c fig7d
//! table3 fig8. Results are printed as text tables and, with `--out`,
//! written as JSON for downstream plotting. Two extra experiments are run
//! only when named explicitly: `ablation` (design-choice ablations) and
//! `matcher` (indexed vs. naive join engine; written as
//! `BENCH_matcher.json`).

use muse_bench::experiments::{all_experiments, run_experiment};
use muse_bench::runner::SweepSettings;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: harness <experiment|all> [--reps N] [--seed S] [--quick] [--out DIR]\n\
             experiments: {} all",
            all_experiments().join(" ")
        );
        return ExitCode::from(2);
    }

    let mut ids: Vec<String> = Vec::new();
    let mut settings = SweepSettings::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                settings.reps = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
            }
            "--seed" => {
                i += 1;
                settings.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--quick" => settings = SweepSettings::quick(),
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--out needs a path")),
                ));
            }
            "all" => ids.extend(all_experiments().iter().map(|s| s.to_string())),
            id if all_experiments().contains(&id) || id == "ablation" || id == "matcher" => {
                ids.push(id.to_string())
            }
            other => die(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if ids.is_empty() {
        die("no experiment selected");
    }
    ids.dedup();

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for id in &ids {
        eprintln!("running {id} (reps = {}) …", settings.reps);
        let started = std::time::Instant::now();
        let output = run_experiment(id, &settings);
        println!("{}", output.render());
        eprintln!("{id} finished in {:.1?}\n", started.elapsed());
        if let Some(dir) = &out_dir {
            // The matcher join bench is a named deliverable, not a paper figure.
            let file = if id == "matcher" {
                "BENCH_matcher.json".to_string()
            } else {
                format!("{id}.json")
            };
            let path = dir.join(file);
            let json = serde_json::to_string_pretty(&output).expect("serialize result");
            std::fs::write(&path, json).expect("write result file");
            eprintln!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
