//! Provenance overhead benchmarks: the threaded executor on the shared
//! relay stress workload with provenance tracing absent, compiled-in but
//! disabled (`provenance_sample = 0`), and sampled at 1-in-64 — the same
//! three regimes `harness -- observe` gates in `BENCH_observe.json`
//! (disabled < 5% overhead, sampled < 15%). Match counts are asserted
//! equal across modes every iteration, so tracing that perturbs matching
//! fails the bench rather than skewing it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use muse_bench::transport_stress::{stress_deployment, stress_network, stress_trace};
use muse_runtime::telemetry::TelemetrySpec;
use muse_runtime::threaded::{run_threaded, ThreadedConfig};
use std::hint::black_box;

/// Chunking mirrors `harness -- observe`: enlarged chunks keep barrier
/// rounds off the measured path, and the eviction slack covers them.
const CHUNK_TICKS: muse_core::event::Timestamp = 10 * muse_bench::transport_stress::WINDOW;
const SLACK: f64 = 12.0;

fn provenance_overhead(c: &mut Criterion) {
    let network = stress_network();
    let deployment = stress_deployment(&network);
    let events = stress_trace(&network, 40.0, 42);
    let expected: usize = {
        let config = config_for(None);
        run_threaded(&deployment, &events, &config)
            .matches
            .iter()
            .map(Vec::len)
            .sum()
    };

    let mut group = c.benchmark_group("provenance");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.throughput(Throughput::Elements(events.len() as u64));
    for (name, spec) in [
        ("provenance_off", None),
        (
            "provenance_disabled",
            Some(TelemetrySpec::provenance_only(0)),
        ),
        (
            "provenance_sampled",
            Some(TelemetrySpec::provenance_only(64)),
        ),
    ] {
        let config = config_for(spec);
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_threaded(&deployment, black_box(&events), &config);
                let matches: usize = report.matches.iter().map(Vec::len).sum();
                assert_eq!(matches, expected, "{name} perturbed matching");
                black_box(matches)
            })
        });
    }
    group.finish();
}

fn config_for(telemetry: Option<TelemetrySpec>) -> ThreadedConfig {
    ThreadedConfig {
        telemetry,
        slack: SLACK,
        chunk_ticks: Some(CHUNK_TICKS),
        ..ThreadedConfig::default()
    }
}

criterion_group!(benches, provenance_overhead);
criterion_main!(benches);
