//! Construction-time benchmarks: aMuSE vs. aMuSE* (the Fig. 7d comparison)
//! plus the enumeration-only phase, on the paper's default instance shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use muse_core::algorithms::amuse::{amuse, AMuseConfig};
use muse_sim::network_gen::{generate_network, NetworkConfig};
use muse_sim::workload_gen::{generate_workload, WorkloadConfig};
use std::hint::black_box;

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for prims in [3usize, 4, 5] {
        let network = generate_network(&NetworkConfig {
            seed: 42,
            ..Default::default()
        });
        let workload = generate_workload(&WorkloadConfig {
            queries: 1,
            prims_per_query: prims,
            seed: 42,
            ..Default::default()
        });
        let query = &workload.queries()[0];

        group.bench_with_input(BenchmarkId::new("amuse", prims), &prims, |b, _| {
            b.iter(|| {
                let plan = amuse(black_box(query), &network, &AMuseConfig::default()).unwrap();
                black_box(plan.cost)
            })
        });
        group.bench_with_input(BenchmarkId::new("amuse_star", prims), &prims, |b, _| {
            b.iter(|| {
                let plan = amuse(black_box(query), &network, &AMuseConfig::star()).unwrap();
                black_box(plan.cost)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
