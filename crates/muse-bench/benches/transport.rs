//! Inter-node transport benchmarks: the threaded executor's batched,
//! backpressured data plane against the naive per-match transport on the
//! shared relay stress workload (same workload as `harness -- executor`,
//! which writes `BENCH_executor.json`). Throughput is reported per
//! injected event; the two modes are asserted to produce the same number
//! of sink matches every iteration, so a divergence fails the bench
//! rather than skewing it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use muse_bench::transport_stress::{stress_deployment, stress_network, stress_trace};
use muse_runtime::threaded::{run_threaded, ThreadedConfig, TransportMode};
use std::hint::black_box;

/// Chunking mirrors `harness -- executor`: enlarged chunks keep barrier
/// rounds off the measured path, and the eviction slack covers them
/// (`slack * window > chunk`, or late frames lose matches).
const CHUNK_TICKS: muse_core::event::Timestamp = 10 * muse_bench::transport_stress::WINDOW;
const SLACK: f64 = 12.0;

fn transport_throughput(c: &mut Criterion) {
    let network = stress_network();
    let deployment = stress_deployment(&network);
    let events = stress_trace(&network, 40.0, 42);
    let expected: usize = {
        let config = config_for(TransportMode::default());
        run_threaded(&deployment, &events, &config)
            .matches
            .iter()
            .map(Vec::len)
            .sum()
    };

    let mut group = c.benchmark_group("transport");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.throughput(Throughput::Elements(events.len() as u64));
    for (name, transport) in [
        ("transport_batched", TransportMode::default()),
        ("transport_naive", TransportMode::Naive),
    ] {
        let config = config_for(transport);
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_threaded(&deployment, black_box(&events), &config);
                let matches: usize = report.matches.iter().map(Vec::len).sum();
                assert_eq!(matches, expected, "{name} diverged from the batched run");
                black_box(matches)
            })
        });
    }
    group.finish();
}

fn config_for(transport: TransportMode) -> ThreadedConfig {
    ThreadedConfig {
        transport,
        slack: SLACK,
        chunk_ticks: Some(CHUNK_TICKS),
        ..ThreadedConfig::default()
    }
}

criterion_group!(benches, transport_throughput);
criterion_main!(benches);
