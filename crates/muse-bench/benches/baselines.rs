//! Baseline benchmarks: the oOP dynamic program against exhaustive
//! placement enumeration, and the centralized cost computation.

use criterion::{criterion_group, criterion_main, Criterion};
use muse_core::algorithms::baselines::{
    centralized_cost, exhaustive_operator_placement, optimal_operator_placement,
};
use muse_sim::network_gen::{generate_network, NetworkConfig};
use muse_sim::workload_gen::{generate_workload, WorkloadConfig};
use std::hint::black_box;

fn baselines(c: &mut Criterion) {
    let network = generate_network(&NetworkConfig {
        nodes: 4,
        types: 6,
        seed: 5,
        ..Default::default()
    });
    let workload = generate_workload(&WorkloadConfig {
        queries: 1,
        prims_per_query: 4,
        types: 6,
        seed: 5,
        ..Default::default()
    });
    let query = &workload.queries()[0];

    let mut group = c.benchmark_group("baselines");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(6));
    group.bench_function("oop_dynamic_program", |b| {
        b.iter(|| black_box(optimal_operator_placement(black_box(query), &network).cost))
    });
    group.bench_function("oop_exhaustive", |b| {
        b.iter(|| black_box(exhaustive_operator_placement(black_box(query), &network)))
    });
    group.bench_function("centralized_cost", |b| {
        b.iter(|| black_box(centralized_cost(std::slice::from_ref(query), &network)))
    });
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
