//! Ablation benchmark: plan quality and construction time with and without
//! partitioning multi-sink placements (§6.1.3 of the paper). The cost gap
//! between the two configurations is the contribution of the paper's core
//! idea; this bench reports the time side, and prints the cost ratio once.

use criterion::{criterion_group, criterion_main, Criterion};
use muse_core::algorithms::amuse::{amuse, AMuseConfig};
use muse_sim::network_gen::{generate_network, NetworkConfig};
use muse_sim::workload_gen::{generate_workload, WorkloadConfig};
use std::hint::black_box;

fn placement(c: &mut Criterion) {
    let network = generate_network(&NetworkConfig {
        event_node_ratio: 0.8,
        seed: 7,
        ..Default::default()
    });
    let workload = generate_workload(&WorkloadConfig {
        queries: 1,
        prims_per_query: 5,
        seed: 7,
        ..Default::default()
    });
    let query = &workload.queries()[0];

    let multi = amuse(query, &network, &AMuseConfig::default()).unwrap();
    let single = amuse(
        query,
        &network,
        &AMuseConfig {
            disable_multi_sink: true,
            ..Default::default()
        },
    )
    .unwrap();
    eprintln!(
        "multi-sink cost {:.1} vs single-sink-only cost {:.1} (ratio {:.3})",
        multi.cost,
        single.cost,
        multi.cost / single.cost.max(f64::MIN_POSITIVE)
    );

    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("with_multi_sink", |b| {
        b.iter(|| {
            let plan = amuse(black_box(query), &network, &AMuseConfig::default()).unwrap();
            black_box(plan.cost)
        })
    });
    group.bench_function("single_sink_only", |b| {
        b.iter(|| {
            let plan = amuse(
                black_box(query),
                &network,
                &AMuseConfig {
                    disable_multi_sink: true,
                    ..Default::default()
                },
            )
            .unwrap();
            black_box(plan.cost)
        })
    });
    group.finish();
}

criterion_group!(benches, placement);
criterion_main!(benches);
