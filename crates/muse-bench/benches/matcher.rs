//! Matcher benchmarks: skip-till-any-match evaluation throughput and
//! partial-match join throughput — the per-node work that MuSE graphs
//! distribute. The `join_indexed`/`join_naive` pair compares the indexed,
//! window-pruned engine against the naive cross-product reference on the
//! shared stress workload (same workload as `harness -- matcher`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use muse_bench::matcher_stress::{stress_feed, stress_query, stress_slots};
use muse_core::event::Event;
use muse_core::query::{Pattern, Query};
use muse_core::types::{EventTypeId, NodeId, PrimId, PrimSet, QueryId};
use muse_runtime::matcher::{Evaluator, JoinTask, Match, NaiveJoinTask};
use std::hint::black_box;

fn make_query() -> Query {
    Query::build(
        QueryId(0),
        &Pattern::seq([
            Pattern::and([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
            Pattern::leaf(EventTypeId(2)),
        ]),
        vec![],
        200,
    )
    .unwrap()
}

fn make_trace(n: usize) -> Vec<Event> {
    (0..n)
        .map(|i| {
            Event::new(
                i as u64,
                EventTypeId((i % 3) as u16),
                i as u64 * 7,
                NodeId(0),
            )
        })
        .collect()
}

fn evaluator_throughput(c: &mut Criterion) {
    let query = make_query();
    let trace = make_trace(2_000);
    let mut group = c.benchmark_group("matcher");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("evaluator_skip_till_any", |b| {
        b.iter(|| {
            let mut ev = Evaluator::for_query(&query);
            let mut count = 0usize;
            for e in &trace {
                count += ev.on_event(black_box(e)).len();
            }
            black_box(count)
        })
    });

    // Join throughput: AB matches joined with C matches.
    let ab: PrimSet = [PrimId(0), PrimId(1)].into_iter().collect();
    let c_set: PrimSet = [PrimId(2)].into_iter().collect();
    group.bench_function("join_two_way", |b| {
        b.iter(|| {
            let mut join = JoinTask::new(&query, query.prims(), &[ab, c_set]);
            let mut count = 0usize;
            for i in 0..500u64 {
                let t = i * 7;
                let ab_match = Match::new(vec![
                    (PrimId(0), Event::new(i * 3, EventTypeId(0), t, NodeId(0))),
                    (
                        PrimId(1),
                        Event::new(i * 3 + 1, EventTypeId(1), t + 1, NodeId(1)),
                    ),
                ]);
                count += join.on_match(0, ab_match).len();
                let c_match = Match::single(
                    PrimId(2),
                    Event::new(i * 3 + 2, EventTypeId(2), t + 2, NodeId(2)),
                );
                count += join.on_match(1, c_match).len();
            }
            black_box(count)
        })
    });
    group.finish();
}

/// Indexed vs. naive join engine on the out-of-order stress feed
/// (slack 4.0, like the threaded executor's default).
fn join_engine_throughput(c: &mut Criterion) {
    let query = stress_query();
    let slots = stress_slots();
    let feed = stress_feed(6_000, 42);
    let mut group = c.benchmark_group("join_engine");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.throughput(Throughput::Elements(feed.len() as u64));
    group.bench_function("join_indexed", |b| {
        b.iter(|| {
            let mut join = JoinTask::with_slack(&query, query.prims(), &slots, 4.0);
            let mut count = 0usize;
            for (slot, m) in &feed {
                count += join.on_match(*slot, black_box(m.clone())).len();
            }
            black_box(count)
        })
    });
    group.bench_function("join_naive", |b| {
        b.iter(|| {
            let mut join = NaiveJoinTask::with_slack(&query, query.prims(), &slots, 4.0);
            let mut count = 0usize;
            for (slot, m) in &feed {
                count += join.on_match(*slot, black_box(m.clone())).len();
            }
            black_box(count)
        })
    });
    group.finish();
}

criterion_group!(benches, evaluator_throughput, join_engine_throughput);
criterion_main!(benches);
