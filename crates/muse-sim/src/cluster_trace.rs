//! A synthetic stand-in for the Google cluster workload traces used in the
//! paper's case study (§7.1, §7.3).
//!
//! The real dataset (12 h of task life-cycle events, ~770 k events, ~12.3 k
//! machines partitioned into 20 node streams) is proprietary-ish and large;
//! the experiments only depend on its *structure*, which this generator
//! reproduces:
//!
//! * nine event types denoting task life-cycle state transitions
//!   (`Submit`, `Schedule`, `Evict`, `Fail`, `Finish`, `Kill`, `Lost`,
//!   `UpdateP`, `UpdateR`),
//! * heavily skewed type frequencies (schedule/finish frequent,
//!   resource-constraint updates rare),
//! * an event node ratio of 1.0 — machines are partitioned into 20 node
//!   streams and every stream emits every type,
//! * `jID`/`uID` payload attributes supporting the equality predicates of
//!   Listing 1, with task life-cycles that actually produce
//!   fail → evict → kill → update sequences within a 30-minute window.
//!
//! Per-type rates are extracted from the generated trace exactly as the
//! paper extracts them from the dataset.

use crate::dist::exponential;
use muse_core::catalog::Catalog;
use muse_core::event::{Event, Payload, Timestamp, Value};
use muse_core::network::Network;
use muse_core::types::{EventTypeId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The nine task life-cycle event types, in catalog order.
pub const TYPE_NAMES: [&str; 9] = [
    "Submit", "Schedule", "Evict", "Fail", "Finish", "Kill", "Lost", "UpdateP", "UpdateR",
];

/// Indices of the types within [`TYPE_NAMES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum LifecycleType {
    Submit = 0,
    Schedule = 1,
    Evict = 2,
    Fail = 3,
    Finish = 4,
    Kill = 5,
    Lost = 6,
    UpdateP = 7,
    UpdateR = 8,
}

impl LifecycleType {
    /// The corresponding event type id in a [`cluster_catalog`].
    pub fn type_id(self) -> EventTypeId {
        EventTypeId(self as u16)
    }
}

/// Configuration of the cluster trace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterTraceConfig {
    /// Number of node streams (paper: machines partitioned into 20 sets).
    pub nodes: usize,
    /// Number of jobs.
    pub jobs: usize,
    /// Average tasks per job.
    pub tasks_per_job: usize,
    /// Trace horizon in milliseconds (paper: 12 h).
    pub duration_ms: Timestamp,
    /// Mean dwell time of a task in one state, in milliseconds. The paper's
    /// 30-minute query window covers the life-time of 85 % of jobs; with
    /// the default dwell time of 2 minutes a 4-transition life-cycle fits.
    pub mean_dwell_ms: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ClusterTraceConfig {
    fn default() -> Self {
        Self {
            nodes: 20,
            jobs: 400,
            tasks_per_job: 4,
            duration_ms: 12 * 60 * 60 * 1000,
            mean_dwell_ms: 2.0 * 60.0 * 1000.0,
            seed: 0,
        }
    }
}

/// A generated cluster trace with its catalog and derived network.
#[derive(Debug, Clone)]
pub struct ClusterTrace {
    /// Catalog with the nine life-cycle types and the `jID`/`uID` attributes.
    pub catalog: Catalog,
    /// 20-node network, event node ratio 1.0, rates measured from the trace.
    pub network: Network,
    /// The global trace, sorted with sequence numbers assigned.
    pub events: Vec<Event>,
}

/// Builds the case-study catalog: nine event types plus `jID` and `uID`.
pub fn cluster_catalog() -> Catalog {
    let mut c = Catalog::new();
    for name in TYPE_NAMES {
        c.add_event_type(name).expect("distinct names");
    }
    c.add_attr("jID").expect("fresh attr");
    c.add_attr("uID").expect("fresh attr");
    c
}

/// Query 1 of Listing 1: a failed task of a job is evicted and killed, then
/// rescheduled with updated constraints.
pub fn query1_source() -> &'static str {
    "PATTERN SEQ(Fail f, Evict e, Kill k, UpdateR u) \
     WHERE f.uID = e.uID AND e.uID = k.uID AND k.uID = u.uID \
     WITHIN 30min"
}

/// Query 2 of Listing 1: mixed task outcomes within one job.
pub fn query2_source() -> &'static str {
    "PATTERN AND(Finish fi, Fail fa, Kill k, UpdateR u) \
     WHERE fi.jID = fa.jID AND fa.jID = k.jID AND k.jID = u.jID \
     WITHIN 30min"
}

/// Generates the synthetic cluster trace.
pub fn generate_cluster_trace(config: &ClusterTraceConfig) -> ClusterTrace {
    assert!(config.nodes > 0 && config.jobs > 0 && config.tasks_per_job > 0);
    let catalog = cluster_catalog();
    let j_id = catalog.attr("jID").unwrap();
    let u_id = catalog.attr("uID").unwrap();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut raw: Vec<(Timestamp, u16, u16, i64, i64)> = Vec::new(); // (t, ty, node, jID, uID)
    let mut next_uid: i64 = 0;
    for job in 0..config.jobs {
        let job_id = job as i64;
        // Job arrival spread over the horizon, leaving room for life-cycles.
        let horizon = config
            .duration_ms
            .saturating_sub((config.mean_dwell_ms * 10.0) as u64);
        let arrival = rng.gen_range(0..horizon.max(1));
        let tasks = rng.gen_range(1..=config.tasks_per_job * 2 - 1);
        for _ in 0..tasks {
            let uid = next_uid;
            next_uid += 1;
            simulate_task(config, &mut rng, &mut raw, arrival, job_id, uid);
        }
    }
    raw.retain(|(t, ..)| *t < config.duration_ms);
    raw.sort_unstable();

    let events: Vec<Event> = raw
        .into_iter()
        .enumerate()
        .map(|(seq, (t, ty, node, jid, uid))| {
            let mut payload = Payload::new();
            payload.set(j_id, Value::Int(jid));
            payload.set(u_id, Value::Int(uid));
            Event::with_payload(seq as u64, EventTypeId(ty), t, NodeId(node), payload)
        })
        .collect();

    let network = derive_network(config, &catalog, &events);
    ClusterTrace {
        catalog,
        network,
        events,
    }
}

/// Simulates one task's life-cycle, appending its events.
fn simulate_task(
    config: &ClusterTraceConfig,
    rng: &mut StdRng,
    raw: &mut Vec<(Timestamp, u16, u16, i64, i64)>,
    arrival: Timestamp,
    job_id: i64,
    uid: i64,
) {
    use LifecycleType::*;
    let dwell_rate = 1.0 / config.mean_dwell_ms;
    let mut t = arrival as f64;
    let mut node = rng.gen_range(0..config.nodes) as u16;
    let emit = |t: f64, ty: LifecycleType, node: u16, raw: &mut Vec<_>| {
        raw.push((t as Timestamp, ty as u16, node, job_id, uid));
    };

    emit(t, Submit, node, raw);
    // Rarely the pending task's constraints are updated before its first
    // schedule (UPDATE_PENDING is ~0.4 % of events in the published trace).
    if rng.gen_bool(0.005) {
        t += exponential(rng, dwell_rate);
        emit(t, UpdateP, node, raw);
    }
    let mut attempts = 0;
    loop {
        attempts += 1;
        t += exponential(rng, dwell_rate);
        emit(t, Schedule, node, raw);
        t += exponential(rng, dwell_rate);
        // Outcome mix loosely calibrated to the published trace statistics:
        // finishes and kills dominate; LOST and resource-constraint updates
        // are one to two orders of magnitude rarer than schedules.
        let outcome: f64 = rng.gen();
        if outcome < 0.55 {
            emit(t, Finish, node, raw);
            return;
        } else if outcome < 0.72 {
            emit(t, Kill, node, raw);
            return;
        } else if outcome < 0.75 {
            emit(t, Lost, node, raw);
            return;
        } else if outcome < 0.9 {
            // Failure path: fail → evict → kill, rarely followed by a
            // reschedule with updated resource constraints (the scenario of
            // Query 1 — UPDATE_RUNNING is ~0.1 % of the published trace).
            emit(t, Fail, node, raw);
            t += exponential(rng, dwell_rate);
            emit(t, Evict, node, raw);
            t += exponential(rng, dwell_rate);
            emit(t, Kill, node, raw);
            if rng.gen_bool(0.03) {
                t += exponential(rng, dwell_rate);
                emit(t, UpdateR, node, raw);
            }
            node = rng.gen_range(0..config.nodes) as u16; // rescheduled elsewhere
        } else {
            // Eviction path: evicted, then resubmitted elsewhere.
            emit(t, Evict, node, raw);
            node = rng.gen_range(0..config.nodes) as u16;
        }
        if attempts >= 3 {
            t += exponential(rng, dwell_rate);
            emit(t, Kill, node, raw);
            return;
        }
    }
}

/// Builds the 20-node network with event node ratio 1.0 and per-type rates
/// measured from the trace, exactly as the paper extracts rates from the
/// dataset. Rates are per node: `count(type) / (duration · |N|)` in events
/// per second.
fn derive_network(config: &ClusterTraceConfig, catalog: &Catalog, events: &[Event]) -> Network {
    let mut network = Network::new(config.nodes, catalog.num_event_types());
    for node in 0..config.nodes {
        for ty in catalog.event_types() {
            network.set_generates(NodeId(node as u16), ty);
        }
    }
    let duration_s = (config.duration_ms as f64 / 1000.0).max(1.0);
    let mut counts = vec![0usize; catalog.num_event_types()];
    for e in events {
        counts[e.ty.index()] += 1;
    }
    for (i, count) in counts.iter().enumerate() {
        // Every node produces the type; keep a tiny floor so rates stay
        // positive (a zero-rate type would make projections free).
        let per_node = *count as f64 / duration_s / config.nodes as f64;
        network.set_rate(EventTypeId(i as u16), per_node.max(1e-6));
    }
    network
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_nine_types_and_attrs() {
        let c = cluster_catalog();
        assert_eq!(c.num_event_types(), 9);
        assert!(c.attr("jID").is_some());
        assert!(c.attr("uID").is_some());
        assert_eq!(c.event_type("Fail"), Some(LifecycleType::Fail.type_id()));
    }

    #[test]
    fn trace_sorted_and_bounded() {
        let trace = generate_cluster_trace(&ClusterTraceConfig {
            jobs: 50,
            ..Default::default()
        });
        assert!(!trace.events.is_empty());
        for w in trace.events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for (i, e) in trace.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert!(e.time < ClusterTraceConfig::default().duration_ms);
        }
    }

    #[test]
    fn event_node_ratio_is_one() {
        let trace = generate_cluster_trace(&ClusterTraceConfig::default());
        assert_eq!(trace.network.event_node_ratio(), 1.0);
        assert_eq!(trace.network.num_nodes(), 20);
    }

    #[test]
    fn type_frequencies_skewed_realistically() {
        let trace = generate_cluster_trace(&ClusterTraceConfig {
            jobs: 500,
            ..Default::default()
        });
        let count =
            |ty: LifecycleType| trace.events.iter().filter(|e| e.ty == ty.type_id()).count();
        // Schedules are the most frequent; updates are rare.
        assert!(count(LifecycleType::Schedule) > count(LifecycleType::UpdateR));
        assert!(count(LifecycleType::Finish) > count(LifecycleType::Lost));
        assert!(count(LifecycleType::UpdateR) > 0);
        assert!(count(LifecycleType::Fail) > 0);
    }

    #[test]
    fn fail_sequences_exist_for_query1() {
        // Some task must exhibit Fail → Evict → Kill → UpdateR with one uID
        // within 30 minutes.
        let trace = generate_cluster_trace(&ClusterTraceConfig {
            jobs: 200,
            ..Default::default()
        });
        let u_id = trace.catalog.attr("uID").unwrap();
        use std::collections::HashMap;
        let mut per_task: HashMap<i64, Vec<(Timestamp, EventTypeId)>> = HashMap::new();
        for e in &trace.events {
            if let Some(Value::Int(uid)) = e.payload.get(u_id) {
                per_task.entry(*uid).or_default().push((e.time, e.ty));
            }
        }
        let window = 30 * 60 * 1000;
        let found = per_task.values().any(|events| {
            let seq = [
                LifecycleType::Fail.type_id(),
                LifecycleType::Evict.type_id(),
                LifecycleType::Kill.type_id(),
                LifecycleType::UpdateR.type_id(),
            ];
            let mut i = 0;
            let mut start = None;
            for (t, ty) in events {
                if *ty == seq[i] {
                    if i == 0 {
                        start = Some(*t);
                    }
                    i += 1;
                    if i == seq.len() {
                        return *t - start.unwrap() <= window;
                    }
                }
            }
            false
        });
        assert!(found, "no Query-1 pattern in the synthetic trace");
    }

    #[test]
    fn rates_measured_from_trace() {
        let cfg = ClusterTraceConfig {
            jobs: 300,
            ..Default::default()
        };
        let trace = generate_cluster_trace(&cfg);
        let duration_s = cfg.duration_ms as f64 / 1000.0;
        for ty in trace.catalog.event_types() {
            let count = trace.events.iter().filter(|e| e.ty == ty).count() as f64;
            let expected = (count / duration_s / cfg.nodes as f64).max(1e-6);
            assert!((trace.network.rate(ty) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn queries_parse_against_catalog() {
        use muse_core::query::parser::{parse_query, ParserOptions};
        use muse_core::types::QueryId;
        let mut catalog = cluster_catalog();
        let q1 = parse_query(
            query1_source(),
            QueryId(0),
            &mut catalog,
            &ParserOptions::default(),
        )
        .unwrap();
        let q2 = parse_query(
            query2_source(),
            QueryId(1),
            &mut catalog,
            &ParserOptions::default(),
        )
        .unwrap();
        assert_eq!(q1.num_prims(), 4);
        assert_eq!(q2.num_prims(), 4);
        assert_eq!(q1.window(), 30 * 60 * 1000);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_cluster_trace(&ClusterTraceConfig {
            jobs: 20,
            ..Default::default()
        });
        let b = generate_cluster_trace(&ClusterTraceConfig {
            jobs: 20,
            ..Default::default()
        });
        assert_eq!(a.events, b.events);
    }
}
