//! Random query workloads (§7.1 of the paper).
//!
//! The simulation experiments use workloads of five queries with six
//! primitive operators on average (scalability: 15 queries, eight
//! primitives), containing sequence and conjunction operators with varying
//! hierarchy and nesting depth. Predicate selectivities are generated per
//! pair of event types from a uniform distribution over `[σ_min, σ_max]`
//! (default `[0.01, 0.2]`).

use muse_core::catalog::Catalog;
use muse_core::event::{Timestamp, Value};
use muse_core::query::{CmpOp, Pattern, Predicate};
use muse_core::types::{AttrId, EventTypeId, PrimId};
use muse_core::workload::Workload;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the workload generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of queries.
    pub queries: usize,
    /// Average number of primitive operators per query (jittered ±1).
    pub prims_per_query: usize,
    /// Size of the event type universe to draw from.
    pub types: usize,
    /// Lower bound of pairwise predicate selectivities.
    pub selectivity_min: f64,
    /// Upper bound of pairwise predicate selectivities.
    pub selectivity_max: f64,
    /// Fraction of a query's types reused from the previous query, keeping
    /// the workload *related* (§2.2: queries share composite operators).
    pub share_fraction: f64,
    /// Time window of every query.
    pub window: Timestamp,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            queries: 5,
            prims_per_query: 6,
            types: 15,
            selectivity_min: 0.01,
            selectivity_max: 0.2,
            share_fraction: 0.5,
            window: 1_000,
            seed: 0,
        }
    }
}

impl WorkloadConfig {
    /// The paper's scalability setup: 15 queries with eight primitives over
    /// 20 types.
    pub fn large() -> Self {
        Self {
            queries: 15,
            prims_per_query: 8,
            types: 20,
            ..Self::default()
        }
    }
}

/// A symmetric matrix of pairwise selectivities over the type universe.
#[derive(Debug, Clone)]
pub struct SelectivityMatrix {
    n: usize,
    values: Vec<f64>,
}

impl SelectivityMatrix {
    /// Draws a matrix with entries uniform in `[min, max]`.
    pub fn generate(n: usize, min: f64, max: f64, rng: &mut impl Rng) -> Self {
        assert!(min > 0.0 && min <= max && max <= 1.0);
        let mut values = vec![1.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let s = rng.gen_range(min..=max);
                values[i * n + j] = s;
                values[j * n + i] = s;
            }
        }
        Self { n, values }
    }

    /// The selectivity between two event types.
    pub fn get(&self, a: EventTypeId, b: EventTypeId) -> f64 {
        self.values[a.index() * self.n + b.index()]
    }
}

/// Generates a workload of related `SEQ`/`AND` queries with pairwise
/// equality predicates whose selectivities come from a fresh
/// [`SelectivityMatrix`].
pub fn generate_workload(config: &WorkloadConfig) -> Workload {
    let (workload, _) = generate_workload_with_matrix(config);
    workload
}

/// Like [`generate_workload`], also returning the selectivity matrix (used
/// by experiments that need ground-truth pair selectivities).
pub fn generate_workload_with_matrix(config: &WorkloadConfig) -> (Workload, SelectivityMatrix) {
    assert!(config.queries > 0);
    assert!(config.prims_per_query >= 2);
    assert!(config.types > config.prims_per_query);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let matrix = SelectivityMatrix::generate(
        config.types,
        config.selectivity_min,
        config.selectivity_max,
        &mut rng,
    );
    let catalog = Catalog::with_anonymous_types(config.types);

    let mut patterns = Vec::with_capacity(config.queries);
    let mut previous_types: Vec<EventTypeId> = Vec::new();
    for _ in 0..config.queries {
        let jitter = rng.gen_range(-1i32..=1);
        let n = (config.prims_per_query as i32 + jitter).clamp(2, config.types as i32) as usize;
        let types = pick_types(n, config, &previous_types, &mut rng);
        previous_types = types.clone();
        let pattern = random_tree(&types, None, &mut rng);
        // A predicate per pair of primitives, selectivity from the matrix.
        let mut predicates = Vec::new();
        for i in 0..types.len() {
            for j in (i + 1)..types.len() {
                predicates.push(Predicate::binary(
                    (PrimId(i as u8), AttrId(0)),
                    CmpOp::Eq,
                    (PrimId(j as u8), AttrId(0)),
                    matrix.get(types[i], types[j]),
                ));
            }
        }
        patterns.push((pattern, predicates, config.window));
    }
    let workload =
        Workload::from_patterns(catalog, patterns).expect("generated patterns are valid");
    (workload, matrix)
}

/// Picks `n` distinct types, reusing a share of the previous query's types.
fn pick_types(
    n: usize,
    config: &WorkloadConfig,
    previous: &[EventTypeId],
    rng: &mut StdRng,
) -> Vec<EventTypeId> {
    let mut chosen: Vec<EventTypeId> = Vec::with_capacity(n);
    let reuse = ((n as f64) * config.share_fraction).round() as usize;
    let mut prev: Vec<EventTypeId> = previous.to_vec();
    prev.shuffle(rng);
    chosen.extend(prev.into_iter().take(reuse.min(n)));
    let mut rest: Vec<EventTypeId> = (0..config.types as u16)
        .map(EventTypeId)
        .filter(|t| !chosen.contains(t))
        .collect();
    rest.shuffle(rng);
    chosen.extend(rest.into_iter().take(n - chosen.len()));
    // Leaf order is randomized so SEQ constraints differ between queries.
    chosen.shuffle(rng);
    chosen
}

/// Builds a random alternating `SEQ`/`AND` tree over the given leaf types.
/// `parent` is the kind of the parent composite (children must differ, per
/// the validity rule of §2.2).
fn random_tree(types: &[EventTypeId], parent: Option<bool>, rng: &mut StdRng) -> Pattern {
    if types.len() == 1 {
        return Pattern::leaf(types[0]);
    }
    // true = SEQ, false = AND; alternate with the parent.
    let is_seq = match parent {
        Some(p) => !p,
        None => rng.gen_bool(0.5),
    };
    // Split the leaves into 2..=len groups, each non-empty and contiguous.
    let groups = rng.gen_range(2..=types.len());
    let mut cut_points: Vec<usize> = (1..types.len()).collect();
    cut_points.shuffle(rng);
    let mut cuts: Vec<usize> = cut_points.into_iter().take(groups - 1).collect();
    cuts.sort_unstable();
    cuts.push(types.len());
    let mut children = Vec::with_capacity(groups);
    let mut start = 0;
    for cut in cuts {
        children.push(random_tree(&types[start..cut], Some(is_seq), rng));
        start = cut;
    }
    if is_seq {
        Pattern::Seq(children)
    } else {
        Pattern::And(children)
    }
}

/// Configuration of the multi-tenant *family* workload generator used by
/// the 100k-query experiments.
///
/// Queries are drawn from a small set of structural **families** (type
/// tree + pairwise predicates). Within a family, **variants** differ only
/// in a pair of unary band predicates over [`BAND_ATTR`], partitioning the
/// band value domain into disjoint slices. Query `j` belongs to family
/// `j % families` with variant `(j / families) % variants_per_family`, so
/// any workload larger than `families × variants_per_family` contains
/// exact structural duplicates — the regime where shared-plan evaluation
/// and the discrimination index pay off.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyWorkloadConfig {
    /// Total number of queries.
    pub queries: usize,
    /// Number of distinct structural families.
    pub families: usize,
    /// Number of predicate-band variants within each family.
    pub variants_per_family: usize,
    /// Primitive operators per family pattern.
    pub prims_per_family: usize,
    /// Size of the event type universe.
    pub types: usize,
    /// Fraction of a family's types reused from the previous family.
    pub share_fraction: f64,
    /// Domain of the banded attribute: values are `0..band_domain`.
    pub band_domain: i64,
    /// Time window of every query.
    pub window: Timestamp,
    /// PRNG seed.
    pub seed: u64,
}

/// The payload attribute carrying the band value discriminated by query
/// variants (the key attribute joined by pairwise predicates is
/// `AttrId(0)`).
pub const BAND_ATTR: AttrId = AttrId(1);

impl Default for FamilyWorkloadConfig {
    fn default() -> Self {
        Self {
            queries: 1_000,
            families: 20,
            variants_per_family: 10,
            prims_per_family: 3,
            types: 15,
            share_fraction: 0.3,
            band_domain: 1_000,
            window: 1_000,
            seed: 0,
        }
    }
}

/// Generates a family-structured multi-tenant workload (see
/// [`FamilyWorkloadConfig`]).
pub fn generate_family_workload(config: &FamilyWorkloadConfig) -> Workload {
    assert!(config.queries > 0);
    assert!(config.families > 0 && config.variants_per_family > 0);
    assert!(config.prims_per_family >= 2);
    assert!(config.types > config.prims_per_family);
    assert!(config.band_domain >= config.variants_per_family as i64);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let matrix = SelectivityMatrix::generate(config.types, 0.01, 0.2, &mut rng);
    let catalog = Catalog::with_anonymous_types(config.types);

    // Draw each family's structure once.
    let base = WorkloadConfig {
        types: config.types,
        share_fraction: config.share_fraction,
        ..WorkloadConfig::default()
    };
    let mut family_patterns = Vec::with_capacity(config.families);
    let mut previous_types: Vec<EventTypeId> = Vec::new();
    for _ in 0..config.families {
        let types = pick_types(config.prims_per_family, &base, &previous_types, &mut rng);
        previous_types = types.clone();
        let pattern = random_tree(&types, None, &mut rng);
        let mut predicates = Vec::new();
        for i in 0..types.len() {
            for j in (i + 1)..types.len() {
                predicates.push(Predicate::binary(
                    (PrimId(i as u8), AttrId(0)),
                    CmpOp::Eq,
                    (PrimId(j as u8), AttrId(0)),
                    matrix.get(types[i], types[j]),
                ));
            }
        }
        family_patterns.push((pattern, predicates));
    }

    // A variant constrains the first primitive's band attribute to one
    // slice of the domain. Slices are disjoint, so distinct variants never
    // admit the same event through their banded primitive.
    let step = config.band_domain / config.variants_per_family as i64;
    let sel = (1.0 / config.variants_per_family as f64).sqrt().max(1e-6);
    let mut patterns = Vec::with_capacity(config.queries);
    for j in 0..config.queries {
        let family = j % config.families;
        let variant = (j / config.families) % config.variants_per_family;
        let (pattern, preds) = &family_patterns[family];
        let lo = variant as i64 * step;
        let hi = if variant + 1 == config.variants_per_family {
            config.band_domain - 1
        } else {
            (variant as i64 + 1) * step - 1
        };
        let mut predicates = preds.clone();
        predicates.push(Predicate::unary(
            PrimId(0),
            BAND_ATTR,
            CmpOp::Ge,
            Value::Int(lo),
            sel,
        ));
        predicates.push(Predicate::unary(
            PrimId(0),
            BAND_ATTR,
            CmpOp::Le,
            Value::Int(hi),
            sel,
        ));
        patterns.push((pattern.clone(), predicates, config.window));
    }
    Workload::from_patterns(catalog, patterns).expect("generated patterns are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::types::QueryId;

    #[test]
    fn generates_requested_workload_shape() {
        let w = generate_workload(&WorkloadConfig::default());
        assert_eq!(w.len(), 5);
        for q in w.queries() {
            assert!((5..=7).contains(&q.num_prims()), "{}", q.num_prims());
            assert!(q.has_distinct_prim_types());
            // A predicate per pair.
            let n = q.num_prims();
            assert_eq!(q.predicates().len(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn selectivities_in_range() {
        let (w, matrix) = generate_workload_with_matrix(&WorkloadConfig::default());
        for q in w.queries() {
            for p in q.predicates() {
                assert!((0.01..=0.2).contains(&p.selectivity));
            }
        }
        let _ = matrix.get(EventTypeId(0), EventTypeId(1));
    }

    #[test]
    fn queries_are_related() {
        let w = generate_workload(&WorkloadConfig {
            share_fraction: 0.5,
            seed: 11,
            ..Default::default()
        });
        // Consecutive queries share at least one event type.
        for i in 1..w.len() {
            let a = w.query(QueryId((i - 1) as u32)).types();
            let b = w.query(QueryId(i as u32)).types();
            assert!(!a.intersect(b).is_empty(), "queries {i} unrelated");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_workload(&WorkloadConfig {
            seed: 3,
            ..Default::default()
        });
        let b = generate_workload(&WorkloadConfig {
            seed: 3,
            ..Default::default()
        });
        for (qa, qb) in a.queries().iter().zip(b.queries()) {
            assert_eq!(qa.signature(), qb.signature());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_workload(&WorkloadConfig {
            seed: 1,
            ..Default::default()
        });
        let b = generate_workload(&WorkloadConfig {
            seed: 2,
            ..Default::default()
        });
        let same = a
            .queries()
            .iter()
            .zip(b.queries())
            .all(|(x, y)| x.signature() == y.signature());
        assert!(!same);
    }

    #[test]
    fn large_config_shape() {
        let w = generate_workload(&WorkloadConfig::large());
        assert_eq!(w.len(), 15);
        let avg: f64 = w
            .queries()
            .iter()
            .map(|q| q.num_prims() as f64)
            .sum::<f64>()
            / w.len() as f64;
        assert!((avg - 8.0).abs() < 1.0, "avg prims {avg}");
    }

    #[test]
    fn matrix_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = SelectivityMatrix::generate(10, 0.01, 0.2, &mut rng);
        for i in 0..10u16 {
            for j in 0..10u16 {
                assert_eq!(
                    m.get(EventTypeId(i), EventTypeId(j)),
                    m.get(EventTypeId(j), EventTypeId(i))
                );
            }
        }
        assert_eq!(m.get(EventTypeId(3), EventTypeId(3)), 1.0);
    }

    #[test]
    fn family_workload_shape_and_duplicates() {
        let cfg = FamilyWorkloadConfig {
            queries: 50,
            families: 4,
            variants_per_family: 3,
            ..Default::default()
        };
        let w = generate_family_workload(&cfg);
        assert_eq!(w.len(), 50);
        // Query j and j + families*variants are exact duplicates.
        let period = cfg.families * cfg.variants_per_family;
        for j in 0..(50 - period) {
            let a = &w.queries()[j];
            let b = &w.queries()[j + period];
            assert_eq!(a.signature(), b.signature());
            assert_eq!(
                format!("{:?}", a.predicates()),
                format!("{:?}", b.predicates())
            );
        }
        // Same family, different variant: same structure, different bands.
        let a = &w.queries()[0];
        let b = &w.queries()[cfg.families];
        assert_eq!(
            a.root().signature(a.prim_types()),
            b.root().signature(b.prim_types())
        );
        assert_ne!(
            format!("{:?}", a.predicates()),
            format!("{:?}", b.predicates())
        );
    }

    #[test]
    fn family_workload_is_deterministic() {
        let cfg = FamilyWorkloadConfig {
            queries: 30,
            ..Default::default()
        };
        let a = generate_family_workload(&cfg);
        let b = generate_family_workload(&cfg);
        for (qa, qb) in a.queries().iter().zip(b.queries()) {
            assert_eq!(qa.signature(), qb.signature());
            assert_eq!(
                format!("{:?}", qa.predicates()),
                format!("{:?}", qb.predicates())
            );
        }
    }

    #[test]
    fn family_variants_partition_the_band_domain() {
        let cfg = FamilyWorkloadConfig {
            queries: 8,
            families: 2,
            variants_per_family: 4,
            band_domain: 100,
            ..Default::default()
        };
        let w = generate_family_workload(&cfg);
        // Every query carries the two band predicates on prim 0.
        for q in w.queries() {
            let bands: Vec<_> = q
                .predicates()
                .iter()
                .filter(|p| {
                    matches!(
                        p.expr,
                        muse_core::query::PredicateExpr::UnaryConst { attr, .. }
                            if attr == BAND_ATTR
                    )
                })
                .collect();
            assert_eq!(bands.len(), 2, "query {:?}", q.id());
        }
    }

    #[test]
    fn trees_alternate_kinds() {
        // Build many queries and ensure none violates the nesting rule
        // (Query::build would reject, so reaching here is the assertion).
        for seed in 0..20 {
            let _ = generate_workload(&WorkloadConfig {
                seed,
                ..Default::default()
            });
        }
    }
}
