//! # muse-sim
//!
//! Synthetic workload, network, and trace generators for the MuSE graphs
//! reproduction, matching the experimental setup of §7.1 of the paper:
//!
//! * [`dist`] — hand-rolled samplers (Zipf over `{1..max}`, exponential
//!   inter-arrival times) so the dependency set stays minimal;
//! * [`network_gen`] — event-sourced networks with a configurable
//!   *event-node ratio* and Zipf-skewed per-type rates;
//! * [`workload_gen`] — random `SEQ`/`AND` query workloads with pairwise
//!   selectivities drawn uniformly from a configurable range;
//! * [`traces`] — Poisson event traces for a network (exponential
//!   inter-arrival times per `(node, type)` pair);
//! * [`cluster_trace`] — a synthetic stand-in for the Google cluster
//!   workload traces used in the paper's case study (§7.3): per-task
//!   life-cycle state machines over 9 event types on a 20-node network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster_trace;
pub mod dist;
pub mod network_gen;
pub mod stats_est;
pub mod traces;
pub mod workload_gen;
