//! Empirical selectivity estimation from observed traces.
//!
//! The cost model (§4.4 of the paper) scales a projection's output rate by
//! the product of its predicates' selectivities. For real workloads these
//! selectivities must be *estimated*: naive independence assumptions (e.g.
//! `1 / #distinct ids` for id equality) dramatically underestimate streams
//! whose ids are correlated in time — a failed task's `Fail` and `Evict`
//! events share both the id *and* the window — which misleads the planner
//! into shipping "cheap" partial-match streams that are actually frequent.
//!
//! [`PairSelectivities`] measures, per `(attribute, type A, type B)`, the
//! number `M` of cross-type event pairs with equal attribute values within
//! the query window, and derives the *effective* selectivity
//!
//! ```text
//! σ(attr, A, B) = M · units / (n_A · n_B)        (clamped into (0, 1])
//! ```
//!
//! where `units` is the trace length in window units. Under the cost model
//! this makes the modeled pair-projection volume `σ · r̂(A) · r̂(B) · |𝔈|`
//! equal the empirically observed matches per window — i.e. the planner
//! sees truthful pair statistics (higher-order projections still use the
//! product approximation, as in the paper).

use muse_core::event::{Event, Timestamp, Value};
use muse_core::network::Network;
use muse_core::query::{PredicateExpr, Query};
use muse_core::types::{AttrId, EventTypeId};
use std::collections::HashMap;

/// Empirical per-attribute, per-type-pair equality selectivities.
#[derive(Debug, Clone)]
pub struct PairSelectivities {
    map: HashMap<(AttrId, EventTypeId, EventTypeId), f64>,
    /// Fallback for pairs never observed together (highly selective).
    pub fallback: f64,
}

impl PairSelectivities {
    /// Estimates selectivities from a trace.
    ///
    /// * `window` — the query window in trace time (ticks);
    /// * `attrs` — the join attributes to profile;
    /// * the trace must be in global trace order.
    pub fn estimate(
        events: &[Event],
        window: Timestamp,
        attrs: &[AttrId],
        duration: Timestamp,
    ) -> Self {
        let units = (duration as f64 / window.max(1) as f64).max(1.0);
        // Count events per type.
        let mut type_counts: HashMap<EventTypeId, f64> = HashMap::new();
        for e in events {
            *type_counts.entry(e.ty).or_insert(0.0) += 1.0;
        }
        // Same-value cross-type pairs within the window, per attribute.
        let mut pair_counts: HashMap<(AttrId, EventTypeId, EventTypeId), f64> = HashMap::new();
        for &attr in attrs {
            // Group event (type, time) by attribute value. Join keys are
            // discrete (ids, labels); float-valued attributes are skipped.
            #[derive(PartialEq, Eq, Hash)]
            enum Key<'a> {
                Int(i64),
                Str(&'a str),
            }
            let mut groups: HashMap<Key<'_>, Vec<(EventTypeId, Timestamp)>> = HashMap::new();
            for e in events {
                let key = match e.payload.get(attr) {
                    Some(Value::Int(v)) => Key::Int(*v),
                    Some(Value::Str(s)) => Key::Str(s),
                    _ => continue,
                };
                groups.entry(key).or_default().push((e.ty, e.time));
            }
            for group in groups.values() {
                // Groups are in trace order; count unordered cross-type
                // pairs within the window.
                for (i, (ty_a, t_a)) in group.iter().enumerate() {
                    for (ty_b, t_b) in group.iter().skip(i + 1) {
                        if t_b.saturating_sub(*t_a) > window {
                            break;
                        }
                        if ty_a != ty_b {
                            let key = if ty_a <= ty_b {
                                (attr, *ty_a, *ty_b)
                            } else {
                                (attr, *ty_b, *ty_a)
                            };
                            *pair_counts.entry(key).or_insert(0.0) += 1.0;
                        }
                    }
                }
            }
        }
        let map = pair_counts
            .into_iter()
            .map(|((attr, a, b), m)| {
                let n_a = type_counts.get(&a).copied().unwrap_or(0.0).max(1.0);
                let n_b = type_counts.get(&b).copied().unwrap_or(0.0).max(1.0);
                let sigma = (m * units / (n_a * n_b)).clamp(1e-9, 1.0);
                ((attr, a, b), sigma)
            })
            .collect();
        Self {
            map,
            fallback: 1e-6,
        }
    }

    /// The estimated selectivity for an attribute-equality predicate
    /// between two event types.
    pub fn get(&self, attr: AttrId, a: EventTypeId, b: EventTypeId) -> f64 {
        let key = if a <= b { (attr, a, b) } else { (attr, b, a) };
        self.map.get(&key).copied().unwrap_or(self.fallback)
    }

    /// Rewrites the selectivities of a query's binary equality predicates
    /// with the empirical estimates.
    pub fn apply_to_query(&self, query: &mut Query) {
        let updates: Vec<(usize, f64)> = query
            .predicates()
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match &p.expr {
                PredicateExpr::BinaryAttr {
                    left_prim,
                    left_attr,
                    right_prim,
                    right_attr,
                    ..
                } if left_attr == right_attr => {
                    let a = query.prim_type(*left_prim);
                    let b = query.prim_type(*right_prim);
                    Some((i, self.get(*left_attr, a, b)))
                }
                _ => None,
            })
            .collect();
        for (i, sigma) in updates {
            query.set_predicate_selectivity(i, sigma);
        }
    }

    /// Number of profiled pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Re-derives network rates in *window units* (events per window per
/// producing node) from an observed trace, the dimensionally meaningful
/// unit for the product-form output-rate model: `r̂(A)·r̂(B)` then
/// approximates pair matches per window.
pub fn rates_per_window(
    network: &Network,
    events: &[Event],
    window: Timestamp,
    duration: Timestamp,
) -> Network {
    let mut out = network.clone();
    let units = (duration as f64 / window.max(1) as f64).max(1.0);
    let mut counts = vec![0.0; network.num_types()];
    for e in events {
        counts[e.ty.index()] += 1.0;
    }
    for (ty_idx, count) in counts.iter().enumerate() {
        let ty = EventTypeId(ty_idx as u16);
        let producers = network.num_producers(ty).max(1) as f64;
        out.set_rate(ty, (count / units / producers).max(1e-9));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::event::Payload;
    use muse_core::types::NodeId;

    fn ev(seq: u64, ty: u16, time: Timestamp, key: i64) -> Event {
        let mut p = Payload::new();
        p.set(AttrId(0), Value::Int(key));
        Event::with_payload(seq, EventTypeId(ty), time, NodeId(0), p)
    }

    #[test]
    fn correlated_pairs_get_high_selectivity() {
        // Every type-0 event is followed by a type-1 event with the same
        // key within the window: M = n_A, so σ = units / n_B.
        let window = 10;
        let duration = 1000;
        let mut events = Vec::new();
        for i in 0..100u64 {
            let t = i * 10;
            events.push(ev(2 * i, 0, t, i as i64));
            events.push(ev(2 * i + 1, 1, t + 5, i as i64));
        }
        let sel = PairSelectivities::estimate(&events, window, &[AttrId(0)], duration);
        let sigma = sel.get(AttrId(0), EventTypeId(0), EventTypeId(1));
        // M = 100, units = 100, nA = nB = 100 → σ = 1.0.
        assert!((sigma - 1.0).abs() < 1e-9, "σ = {sigma}");
        // Symmetric lookup.
        assert_eq!(sigma, sel.get(AttrId(0), EventTypeId(1), EventTypeId(0)));
    }

    #[test]
    fn uncorrelated_pairs_get_low_selectivity() {
        // Keys never repeat across types: no same-key pairs at all.
        let mut events = Vec::new();
        for i in 0..50u64 {
            events.push(ev(2 * i, 0, i * 10, i as i64));
            events.push(ev(2 * i + 1, 1, i * 10 + 5, 10_000 + i as i64));
        }
        let sel = PairSelectivities::estimate(&events, 10, &[AttrId(0)], 500);
        assert_eq!(
            sel.get(AttrId(0), EventTypeId(0), EventTypeId(1)),
            sel.fallback
        );
        assert!(sel.is_empty());
    }

    #[test]
    fn window_limits_pairing() {
        // Same keys but 100 ticks apart with window 10: no pairs.
        let events = vec![ev(0, 0, 0, 7), ev(1, 1, 100, 7)];
        let sel = PairSelectivities::estimate(&events, 10, &[AttrId(0)], 200);
        assert!(sel.is_empty());
        // Window 200 captures the pair.
        let sel = PairSelectivities::estimate(&events, 200, &[AttrId(0)], 200);
        assert!(!sel.is_empty());
    }

    #[test]
    fn apply_rewrites_query_predicates() {
        use muse_core::query::{CmpOp, Pattern, Predicate};
        use muse_core::types::{PrimId, QueryId};
        let mut events = Vec::new();
        for i in 0..100u64 {
            events.push(ev(2 * i, 0, i * 10, i as i64));
            events.push(ev(2 * i + 1, 1, i * 10 + 5, i as i64));
        }
        let sel = PairSelectivities::estimate(&events, 10, &[AttrId(0)], 1000);
        let pred = Predicate::binary(
            (PrimId(0), AttrId(0)),
            CmpOp::Eq,
            (PrimId(1), AttrId(0)),
            0.0001,
        );
        let mut q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(EventTypeId(0)), Pattern::leaf(EventTypeId(1))]),
            vec![pred],
            10,
        )
        .unwrap();
        sel.apply_to_query(&mut q);
        assert!((q.predicates()[0].selectivity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rates_per_window_normalizes() {
        use muse_core::network::NetworkBuilder;
        let net = NetworkBuilder::new(2, 2)
            .node(NodeId(0), [EventTypeId(0)])
            .node(NodeId(1), [EventTypeId(0), EventTypeId(1)])
            .rate(EventTypeId(0), 123.0)
            .rate(EventTypeId(1), 456.0)
            .build();
        // 100 events of type 0, duration = 10 windows, 2 producers:
        // rate = 100 / 10 / 2 = 5 per window per node.
        let events: Vec<Event> = (0..100)
            .map(|i| Event::new(i, EventTypeId(0), i * 10, NodeId(0)))
            .collect();
        let out = rates_per_window(&net, &events, 100, 1000);
        assert!((out.rate(EventTypeId(0)) - 5.0).abs() < 1e-9);
        assert!(out.rate(EventTypeId(1)) <= 1e-8); // unseen type floored
    }
}
