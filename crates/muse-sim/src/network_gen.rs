//! Synthetic event-sourced networks (§7.1 of the paper).
//!
//! The default simulation setup of the paper is a network of 20 nodes and
//! 15 event types with an *event node ratio* of 0.5 (each node generates
//! ~50 % of the types on average) and rates drawn from a Zipfian
//! distribution with skew 1.5; the scalability setup uses 50 nodes and 20
//! types.

use crate::dist::Zipf;
use muse_core::network::Network;
use muse_core::types::{EventTypeId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic network generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of nodes (`|N|`).
    pub nodes: usize,
    /// Number of event types in the universe.
    pub types: usize,
    /// Average share of event types generated per node (0, 1].
    pub event_node_ratio: f64,
    /// Zipf exponent for per-type rates (paper: skew ∈ [1.1, 2.0],
    /// default 1.5; lower = more skewed).
    pub rate_skew: f64,
    /// Upper bound of the rate support (paper: differences of up to 10⁶).
    pub max_rate: usize,
    /// PRNG seed for reproducibility.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            nodes: 20,
            types: 15,
            event_node_ratio: 0.5,
            rate_skew: 1.5,
            max_rate: 1_000_000,
            seed: 0,
        }
    }
}

impl NetworkConfig {
    /// The paper's scalability setup: 50 nodes, 20 event types.
    pub fn large() -> Self {
        Self {
            nodes: 50,
            types: 20,
            ..Self::default()
        }
    }
}

/// Generates a network: each `(node, type)` pair generates with probability
/// `event_node_ratio` (at least one producer per type and at least one type
/// per node are guaranteed), and each type's rate is one Zipf draw.
pub fn generate_network(config: &NetworkConfig) -> Network {
    assert!(config.nodes > 0 && config.types > 0);
    assert!(
        config.event_node_ratio > 0.0 && config.event_node_ratio <= 1.0,
        "event node ratio must lie in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut network = Network::new(config.nodes, config.types);

    for node in 0..config.nodes {
        for ty in 0..config.types {
            if rng.gen_bool(config.event_node_ratio) {
                network.set_generates(NodeId(node as u16), EventTypeId(ty as u16));
            }
        }
    }
    // Guarantee a producer per type …
    for ty in 0..config.types {
        let t = EventTypeId(ty as u16);
        if network.num_producers(t) == 0 {
            let node = rng.gen_range(0..config.nodes);
            network.set_generates(NodeId(node as u16), t);
        }
    }
    // … and a type per node.
    for node in 0..config.nodes {
        let n = NodeId(node as u16);
        if network.generated_types(n).is_empty() {
            let ty = rng.gen_range(0..config.types);
            network.set_generates(n, EventTypeId(ty as u16));
        }
    }

    let zipf = Zipf::new(config.max_rate, config.rate_skew);
    for ty in 0..config.types {
        network.set_rate(EventTypeId(ty as u16), zipf.sample(&mut rng) as f64);
    }
    network
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = NetworkConfig::default();
        assert_eq!((c.nodes, c.types), (20, 15));
        assert_eq!(c.event_node_ratio, 0.5);
        assert_eq!(c.rate_skew, 1.5);
        let l = NetworkConfig::large();
        assert_eq!((l.nodes, l.types), (50, 20));
    }

    #[test]
    fn every_type_has_a_producer() {
        for seed in 0..10 {
            let net = generate_network(&NetworkConfig {
                event_node_ratio: 0.1,
                seed,
                ..Default::default()
            });
            for ty in 0..net.num_types() {
                assert!(net.num_producers(EventTypeId(ty as u16)) >= 1);
            }
            for node in net.nodes() {
                assert!(!net.generated_types(node).is_empty());
            }
        }
    }

    #[test]
    fn event_node_ratio_approximated() {
        let net = generate_network(&NetworkConfig {
            nodes: 50,
            types: 20,
            event_node_ratio: 0.5,
            seed: 42,
            ..Default::default()
        });
        let ratio = net.event_node_ratio();
        assert!((ratio - 0.5).abs() < 0.08, "ratio = {ratio}");
    }

    #[test]
    fn rates_are_positive() {
        let net = generate_network(&NetworkConfig::default());
        for ty in 0..net.num_types() {
            assert!(net.rate(EventTypeId(ty as u16)) >= 1.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_network(&NetworkConfig {
            seed: 7,
            ..Default::default()
        });
        let b = generate_network(&NetworkConfig {
            seed: 7,
            ..Default::default()
        });
        for ty in 0..a.num_types() {
            let t = EventTypeId(ty as u16);
            assert_eq!(a.rate(t), b.rate(t));
            assert_eq!(a.producers(t), b.producers(t));
        }
    }

    #[test]
    fn low_skew_produces_rate_spread() {
        // With skew 1.1 and enough types, rates should differ widely.
        let net = generate_network(&NetworkConfig {
            types: 30,
            rate_skew: 1.1,
            seed: 3,
            ..Default::default()
        });
        let rates: Vec<f64> = (0..30).map(|t| net.rate(EventTypeId(t))).collect();
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 100.0, "spread {max}/{min}");
    }
}
