//! Probability distributions used by the generators.
//!
//! Only the approved offline crates are available, so the Zipf and
//! exponential samplers are implemented here instead of pulling in
//! `rand_distr`. Both are small, deterministic under a seeded PRNG, and
//! property-tested.

use rand::Rng;

/// A Zipf distribution over `{1, …, max}` with exponent `s`:
/// `P(X = k) ∝ k^(−s)`.
///
/// Used for the paper's *event rate skew* (§7.1): rates are drawn i.i.d.
/// from a Zipfian distribution. A low exponent (1.1) has a heavy tail —
/// drawn rates may differ by up to `max` (10⁶ in the paper) — while a high
/// exponent (2.0) concentrates mass near 1, making rates nearly equivalent.
///
/// Sampling is inverse-CDF over a precomputed cumulative table: exact,
/// deterministic, and fast enough for the handful of draws per network.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0` or `s` is not finite and positive.
    pub fn new(max: usize, s: f64) -> Self {
        assert!(max > 0, "Zipf support must be non-empty");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(max);
        let mut acc = 0.0;
        for k in 1..=max {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draws one sample in `1..=max`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        // First index with cdf[i] >= u.
        let i = self.cdf.partition_point(|&c| c < u);
        (i.min(self.cdf.len() - 1) + 1) as u64
    }

    /// The size of the support.
    pub fn max(&self) -> usize {
        self.cdf.len()
    }
}

/// Draws an exponential inter-arrival time with the given rate (events per
/// time unit). Used to generate Poisson event streams (§7.1: "event
/// generation follows a Poisson distribution").
pub fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_samples_in_support() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!((1..=100).contains(&s));
        }
    }

    #[test]
    fn zipf_rank_one_most_frequent() {
        let z = Zipf::new(1000, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4]; // ranks 1, 2, 3, rest
        for _ in 0..50_000 {
            match z.sample(&mut rng) {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                3 => counts[2] += 1,
                _ => counts[3] += 1,
            }
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        // For s = 1.5, P(1) ≈ 1/ζ(1.5) ≈ 0.38.
        let p1 = counts[0] as f64 / 50_000.0;
        assert!((p1 - 0.38).abs() < 0.03, "p1 = {p1}");
    }

    #[test]
    fn zipf_high_skew_concentrates() {
        // s = 2.0: almost all samples are tiny (rates nearly equivalent).
        let z = Zipf::new(1_000_000, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let small = (0..10_000).filter(|_| z.sample(&mut rng) <= 10).count();
        // P(X ≤ 10) = H₂(10)/ζ(2) ≈ 0.942 for s = 2.
        assert!(small > 9_200, "{small} of 10000 ≤ 10");
    }

    #[test]
    fn zipf_low_skew_has_heavy_tail() {
        // s = 1.1 over 10⁶: large values do occur.
        let z = Zipf::new(1_000_000, 1.1);
        let mut rng = StdRng::seed_from_u64(4);
        let big = (0..20_000).map(|_| z.sample(&mut rng)).max().unwrap();
        assert!(big > 10_000, "max sample {big}");
    }

    #[test]
    fn zipf_deterministic_under_seed() {
        let z = Zipf::new(1000, 1.3);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let rate = 4.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 0.5) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "support")]
    fn zipf_empty_support_panics() {
        Zipf::new(0, 1.5);
    }
}
