//! Poisson event traces for an event-sourced network (§7.1: "event
//! generation follows a Poisson distribution").
//!
//! Every `(node, type)` pair with `type ∈ f(node)` emits an independent
//! Poisson process at rate `r(type)` (scaled by [`TraceConfig::rate_scale`]
//! so high-rate synthetic networks stay executable). Events carry a single
//! integer `key` attribute drawn uniformly from `0..key_domain`, so an
//! equality predicate between two events has selectivity `1 / key_domain`.

use crate::dist::exponential;
use muse_core::event::{Event, Payload, Timestamp, Value};
use muse_core::network::Network;
use muse_core::types::{AttrId, EventTypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The attribute id of the uniform key carried by synthetic events.
pub const KEY_ATTR: AttrId = AttrId(0);

/// The attribute id of the uniform band value (used by the multi-tenant
/// family workloads, see `workload_gen::BAND_ATTR`).
pub const BAND_ATTR: AttrId = AttrId(1);

/// Configuration of the trace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Trace horizon in time units.
    pub duration: f64,
    /// Ticks of the discrete [`Timestamp`] clock per time unit.
    pub ticks_per_unit: f64,
    /// Rates are multiplied by this factor before generation.
    pub rate_scale: f64,
    /// Domain of the `key` attribute (0 = no payload).
    pub key_domain: u32,
    /// Domain of the `band` attribute carried as `AttrId(1)` (0 = absent).
    /// Family workload variants discriminate on this attribute.
    #[serde(default)]
    pub band_domain: u32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            duration: 100.0,
            ticks_per_unit: 1_000.0,
            rate_scale: 1.0,
            key_domain: 0,
            band_domain: 0,
            seed: 0,
        }
    }
}

/// Generates the interleaved global trace of the network: all local traces
/// merged, sorted by timestamp, with sequence numbers assigned in trace
/// order (ties broken deterministically, §2.1).
pub fn generate_traces(network: &Network, config: &TraceConfig) -> Vec<Event> {
    assert!(config.duration > 0.0 && config.ticks_per_unit > 0.0 && config.rate_scale > 0.0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // (tick, node, type, key, band) tuples, then sorted and sequenced.
    let mut raw: Vec<(Timestamp, u16, u16, u32, u32)> = Vec::new();
    for node in network.nodes() {
        for ty in network.generated_types(node).iter() {
            let rate = network.rate(ty) * config.rate_scale;
            if rate <= 0.0 {
                continue;
            }
            let mut t = 0.0;
            loop {
                t += exponential(&mut rng, rate);
                if t >= config.duration {
                    break;
                }
                let tick = (t * config.ticks_per_unit) as Timestamp;
                let key = if config.key_domain > 0 {
                    rng.gen_range(0..config.key_domain)
                } else {
                    0
                };
                let band = if config.band_domain > 0 {
                    rng.gen_range(0..config.band_domain)
                } else {
                    0
                };
                raw.push((tick, node.0, ty.0, key, band));
            }
        }
    }
    // Deterministic global order: timestamp, then node, type, key, band.
    raw.sort_unstable();
    raw.into_iter()
        .enumerate()
        .map(|(seq, (tick, node, ty, key, band))| {
            let mut payload = Payload::new();
            if config.key_domain > 0 {
                payload.set(KEY_ATTR, Value::Int(key as i64));
            }
            if config.band_domain > 0 {
                payload.set(BAND_ATTR, Value::Int(band as i64));
            }
            Event::with_payload(
                seq as u64,
                EventTypeId(ty),
                tick,
                muse_core::types::NodeId(node),
                payload,
            )
        })
        .collect()
}

/// Splits a global trace into per-node local traces (returned indexed by
/// node id). Order within each local trace follows the global trace.
pub fn split_by_node(events: &[Event], num_nodes: usize) -> Vec<Vec<Event>> {
    let mut out = vec![Vec::new(); num_nodes];
    for e in events {
        out[e.origin.index()].push(e.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::network::NetworkBuilder;
    use muse_core::types::NodeId;

    fn network() -> Network {
        NetworkBuilder::new(2, 2)
            .node(NodeId(0), [EventTypeId(0)])
            .node(NodeId(1), [EventTypeId(0), EventTypeId(1)])
            .rate(EventTypeId(0), 5.0)
            .rate(EventTypeId(1), 1.0)
            .build()
    }

    #[test]
    fn events_sorted_and_sequenced() {
        let events = generate_traces(&network(), &TraceConfig::default());
        assert!(!events.is_empty());
        for (i, w) in events.windows(2).enumerate() {
            assert!(w[0].time <= w[1].time, "at {i}");
        }
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn event_counts_scale_with_rate() {
        let cfg = TraceConfig {
            duration: 200.0,
            seed: 1,
            ..Default::default()
        };
        let events = generate_traces(&network(), &cfg);
        let count_a = events.iter().filter(|e| e.ty == EventTypeId(0)).count() as f64;
        let count_b = events.iter().filter(|e| e.ty == EventTypeId(1)).count() as f64;
        // Type 0: two producers at rate 5 → expected 2000; type 1: 200.
        assert!((count_a / 2000.0 - 1.0).abs() < 0.15, "{count_a}");
        assert!((count_b / 200.0 - 1.0).abs() < 0.3, "{count_b}");
    }

    #[test]
    fn origins_respect_network() {
        let events = generate_traces(&network(), &TraceConfig::default());
        let net = network();
        for e in &events {
            assert!(net.generates(e.origin, e.ty));
        }
    }

    #[test]
    fn keys_generated_in_domain() {
        let cfg = TraceConfig {
            key_domain: 10,
            duration: 20.0,
            ..Default::default()
        };
        let events = generate_traces(&network(), &cfg);
        for e in &events {
            match e.payload.get(KEY_ATTR) {
                Some(Value::Int(k)) => assert!((0..10).contains(k)),
                other => panic!("missing key: {other:?}"),
            }
        }
    }

    #[test]
    fn bands_generated_in_domain() {
        let cfg = TraceConfig {
            key_domain: 10,
            band_domain: 4,
            duration: 20.0,
            ..Default::default()
        };
        let events = generate_traces(&network(), &cfg);
        for e in &events {
            match e.payload.get(BAND_ATTR) {
                Some(Value::Int(b)) => assert!((0..4).contains(b)),
                other => panic!("missing band: {other:?}"),
            }
        }
    }

    #[test]
    fn no_payload_without_domain() {
        let events = generate_traces(&network(), &TraceConfig::default());
        assert!(events.iter().all(|e| e.payload.is_empty()));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_traces(&network(), &TraceConfig::default());
        let b = generate_traces(&network(), &TraceConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn split_by_node_partitions() {
        let events = generate_traces(&network(), &TraceConfig::default());
        let split = split_by_node(&events, 2);
        assert_eq!(split[0].len() + split[1].len(), events.len());
        for e in &split[0] {
            assert_eq!(e.origin, NodeId(0));
        }
    }

    #[test]
    fn rate_scale_reduces_volume() {
        let base = generate_traces(&network(), &TraceConfig::default());
        let scaled = generate_traces(
            &network(),
            &TraceConfig {
                rate_scale: 0.1,
                ..Default::default()
            },
        );
        assert!(scaled.len() * 5 < base.len());
    }
}
