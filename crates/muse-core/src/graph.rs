//! Multi-Sink Evaluation (MuSE) graphs (§4.3-§5 of the paper).
//!
//! A MuSE graph is a weighted DAG whose vertices are pairs of a query
//! projection and a network node: vertex `(p, n)` means matches of `p` are
//! generated at node `n`. An edge `((p, n), (p', n'))` routes matches of `p`
//! from `n` to `n'`, where they feed the generation of matches of `p'`.
//! Edges between vertices at the same node are *local* (weight 0); *network*
//! edges carry the sender's output rate times the number of event type
//! bindings it covers, divided by the number of consuming vertices at the
//! target node (matches are shipped once per node and reused, §4.4).
//!
//! Vertices without incoming edges host primitive operators; vertices
//! hosting the root of a workload query are *sinks* — and, unlike all prior
//! operator-placement models, there may be many of them per query.

use crate::binding::{enumerate_bindings, Cover, EventTypeBinding};
use crate::cost::projection_output_rate;
use crate::network::Network;
use crate::projection::{ProjId, Projection, ProjectionTable};
use crate::query::Query;
use crate::types::{NodeId, NodeSet, PrimId, QueryId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A MuSE graph vertex: projection `p` hosted at node `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Vertex {
    /// The hosted projection.
    pub proj: ProjId,
    /// The hosting node.
    pub node: NodeId,
}

impl Vertex {
    /// Creates a vertex.
    pub fn new(proj: ProjId, node: NodeId) -> Self {
        Self { proj, node }
    }

    /// Packed 64-bit key.
    #[inline]
    fn key(self) -> u64 {
        ((self.proj.0 as u64) << 16) | self.node.0 as u64
    }
}

impl std::hash::Hash for Vertex {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.key());
    }
}

/// A minimal multiply-shift hasher for the graph's vertex index. Plan
/// construction clones and merges thousands of small graphs; SipHash
/// dominates that profile, and vertex keys are program-generated (no
/// hash-DoS surface).
#[derive(Debug, Clone, Copy, Default)]
struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let x = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct FastHasherBuilder;

impl std::hash::BuildHasher for FastHasherBuilder {
    type Hasher = FastHasher;
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

#[inline]
fn mix64(key: &mut u64, v: u64) {
    let x = (*key ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    *key = x ^ (x >> 29);
}

/// [`MuseGraph::stream_key`] computed directly from an origin-set list
/// (the allocation-free path used by cost evaluation).
fn stream_key_from_origins(proj: &Projection, query: &Query, origins: &[(u32, NodeSet)]) -> u64 {
    let mut key = proj.stream_sig;
    for p in proj.positive_prims(query).iter() {
        mix64(&mut key, query.prim_type(p).0 as u64 + 1);
        let k = (proj.source.0 << 8) | p.0 as u32;
        let bits = origins
            .binary_search_by_key(&k, |(ok, _)| *ok)
            .ok()
            .map(|j| origins[j].1.bits())
            .unwrap_or(0);
        mix64(&mut key, bits as u64);
        mix64(&mut key, (bits >> 64) as u64);
    }
    key
}

/// Streams already flowing in the network because an earlier query's plan
/// established them. The multi-query extension (§6.2) consults this to
/// assign zero cost to transmissions a later plan can reuse: a stream is
/// identified by its semantic content (projection structure in terms of
/// event types, retained predicates, covered bindings) and its endpoints.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SharedTransmissions {
    set: std::collections::HashSet<(u64, NodeId, NodeId)>,
}

impl SharedTransmissions {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the stream is already flowing from `from` to `to`.
    pub fn contains(&self, key: u64, from: NodeId, to: NodeId) -> bool {
        self.set.contains(&(key, from, to))
    }

    /// Registers a stream.
    pub fn insert(&mut self, key: u64, from: NodeId, to: NodeId) {
        self.set.insert((key, from, to));
    }

    /// Registers every network transmission of an adopted plan.
    pub fn absorb(&mut self, graph: &MuseGraph, ctx: &PlanContext<'_>) {
        for (key, from, to) in graph.transmissions(ctx) {
            self.insert(key, from, to);
        }
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns `true` if no stream is registered.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// Shared lookup context for graph analyses: the workload's queries, the
/// network, and the projection arena the graph's vertices reference.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext<'a> {
    /// Queries of the workload (looked up by [`QueryId`]).
    pub queries: &'a [Query],
    /// The event-sourced network.
    pub network: &'a Network,
    /// The projection arena.
    pub table: &'a ProjectionTable,
    /// Streams established by earlier plans, reusable at zero cost.
    pub shared: Option<&'a SharedTransmissions>,
    /// Optional precomputed output rates per [`ProjId`] (indexed by id),
    /// avoiding repeated tree walks in construction inner loops.
    pub rates: Option<&'a [f64]>,
}

impl<'a> PlanContext<'a> {
    /// Creates a context without transmission sharing.
    pub fn new(queries: &'a [Query], network: &'a Network, table: &'a ProjectionTable) -> Self {
        Self {
            queries,
            network,
            table,
            shared: None,
            rates: None,
        }
    }

    /// Enables reuse of the given already-established streams.
    pub fn with_shared(mut self, shared: &'a SharedTransmissions) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Supplies precomputed per-projection output rates (must be indexed by
    /// [`ProjId`] and cover every projection of the table).
    pub fn with_rates(mut self, rates: &'a [f64]) -> Self {
        self.rates = Some(rates);
        self
    }

    /// The projection behind an id.
    pub fn proj(&self, id: ProjId) -> &'a Projection {
        self.table.get(id)
    }

    /// The source query of a projection.
    pub fn query_of(&self, id: ProjId) -> &'a Query {
        let source = self.proj(id).source;
        self.queries
            .iter()
            .find(|q| q.id() == source)
            .expect("projection's source query present in context")
    }

    /// The output rate `r̂(p) = σ(p) · r̂(root(p))` of a projection.
    pub fn rate_of(&self, id: ProjId) -> f64 {
        if let Some(rates) = self.rates {
            if let Some(&r) = rates.get(id.index()) {
                return r;
            }
        }
        let p = self.proj(id);
        projection_output_rate(p, self.query_of(id), self.network)
    }
}

/// Serialized form of a [`MuseGraph`]: plain vertex and edge lists.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GraphRepr {
    verts: Vec<Vertex>,
    edges: Vec<(u32, u32)>,
}

/// A Multi-Sink Evaluation graph `G = (V, E, c)` (Def. 3).
///
/// Edge weights are not stored: they are fully determined by the graph
/// structure and a [`PlanContext`] (§4.4), see [`MuseGraph::edge_weights`]
/// and [`MuseGraph::cost`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "GraphRepr", into = "GraphRepr")]
pub struct MuseGraph {
    verts: Vec<Vertex>,
    index: HashMap<Vertex, u32, FastHasherBuilder>,
    out_edges: Vec<Vec<u32>>,
    in_edges: Vec<Vec<u32>>,
}

impl From<GraphRepr> for MuseGraph {
    fn from(repr: GraphRepr) -> Self {
        let mut g = MuseGraph::new();
        for v in repr.verts {
            g.add_vertex(v);
        }
        for (a, b) in repr.edges {
            let (va, vb) = (g.verts[a as usize], g.verts[b as usize]);
            g.add_edge(va, vb);
        }
        g
    }
}

impl From<MuseGraph> for GraphRepr {
    fn from(g: MuseGraph) -> Self {
        let edges = g.edge_indices().collect();
        GraphRepr {
            verts: g.verts,
            edges,
        }
    }
}

impl MuseGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex (idempotent) and returns its index.
    pub fn add_vertex(&mut self, v: Vertex) -> u32 {
        if let Some(&i) = self.index.get(&v) {
            return i;
        }
        let i = self.verts.len() as u32;
        self.verts.push(v);
        self.index.insert(v, i);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        i
    }

    /// Returns `true` if the vertex is present.
    pub fn contains_vertex(&self, v: Vertex) -> bool {
        self.index.contains_key(&v)
    }

    /// The internal index of a vertex (the position within
    /// [`MuseGraph::vertices`] and the analyses returned parallel to it).
    pub fn index_of(&self, v: Vertex) -> Option<usize> {
        self.index.get(&v).map(|&i| i as usize)
    }

    /// Adds a directed edge (idempotent), inserting missing endpoints.
    pub fn add_edge(&mut self, from: Vertex, to: Vertex) {
        let a = self.add_vertex(from);
        let b = self.add_vertex(to);
        debug_assert_ne!(a, b, "self-loop in MuSE graph");
        if !self.out_edges[a as usize].contains(&b) {
            self.out_edges[a as usize].push(b);
            self.in_edges[b as usize].push(a);
        }
    }

    /// Returns `true` if the edge is present.
    pub fn has_edge(&self, from: Vertex, to: Vertex) -> bool {
        match (self.index.get(&from), self.index.get(&to)) {
            (Some(&a), Some(&b)) => self.out_edges[a as usize].contains(&b),
            _ => false,
        }
    }

    /// Merges another graph into this one (vertex and edge set union).
    pub fn union_with(&mut self, other: &MuseGraph) {
        for v in &other.verts {
            self.add_vertex(*v);
        }
        for (a, b) in other.edge_indices() {
            self.add_edge(other.verts[a as usize], other.verts[b as usize]);
        }
    }

    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.verts.iter().copied()
    }

    /// Iterates over all edges as vertex pairs.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.edge_indices()
            .map(|(a, b)| (self.verts[a as usize], self.verts[b as usize]))
    }

    fn edge_indices(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.out_edges
            .iter()
            .enumerate()
            .flat_map(|(a, outs)| outs.iter().map(move |&b| (a as u32, b)))
    }

    /// Direct predecessors of a vertex.
    pub fn predecessors(&self, v: Vertex) -> Vec<Vertex> {
        match self.index.get(&v) {
            Some(&i) => self.in_edges[i as usize]
                .iter()
                .map(|&j| self.verts[j as usize])
                .collect(),
            None => Vec::new(),
        }
    }

    /// Direct successors of a vertex.
    pub fn successors(&self, v: Vertex) -> Vec<Vertex> {
        match self.index.get(&v) {
            Some(&i) => self.out_edges[i as usize]
                .iter()
                .map(|&j| self.verts[j as usize])
                .collect(),
            None => Vec::new(),
        }
    }

    /// Vertices without outgoing edges. In a complete graph for a workload
    /// these host root operators of queries (the *sinks*).
    pub fn sinks(&self) -> Vec<Vertex> {
        self.verts
            .iter()
            .enumerate()
            .filter(|(i, _)| self.out_edges[*i].is_empty())
            .map(|(_, v)| *v)
            .collect()
    }

    /// Vertices without incoming edges (primitive-operator placements).
    pub fn sources(&self) -> Vec<Vertex> {
        self.verts
            .iter()
            .enumerate()
            .filter(|(i, _)| self.in_edges[*i].is_empty())
            .map(|(_, v)| *v)
            .collect()
    }

    /// All vertices hosting a given projection (its *placement* `V_p`).
    pub fn placement_of(&self, proj: ProjId) -> Vec<Vertex> {
        self.verts
            .iter()
            .filter(|v| v.proj == proj)
            .copied()
            .collect()
    }

    /// A topological order of vertex indices.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (construction only produces
    /// DAGs).
    pub fn topo_order(&self) -> Vec<u32> {
        let n = self.verts.len();
        let mut in_deg: Vec<usize> = (0..n).map(|i| self.in_edges[i].len()).collect();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| in_deg[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(i);
            for &j in &self.out_edges[i as usize] {
                in_deg[j as usize] -= 1;
                if in_deg[j as usize] == 0 {
                    queue.push(j);
                }
            }
        }
        assert_eq!(order.len(), n, "MuSE graph contains a cycle");
        order
    }

    /// Reachable source origins per vertex, as sorted `(key, nodes)` lists
    /// with `key = (query << 8) | prim`. Sorted-vector merging keeps the
    /// inner loop of plan construction free of hashing.
    fn origin_sets(&self, ctx: &PlanContext<'_>) -> Vec<Vec<(u32, NodeSet)>> {
        #[inline]
        fn key(query: QueryId, prim: PrimId) -> u32 {
            (query.0 << 8) | prim.0 as u32
        }
        let n = self.verts.len();
        let mut origins: Vec<Vec<(u32, NodeSet)>> = vec![Vec::new(); n];
        for i in self.topo_order() {
            let i = i as usize;
            let v = self.verts[i];
            let proj = ctx.proj(v.proj);
            if self.in_edges[i].is_empty() {
                // Source vertex: a primitive placement contributes itself.
                if let Some(prim) = proj.prims.iter().next().filter(|_| proj.is_primitive()) {
                    origins[i] = vec![(key(proj.source, prim), NodeSet::single(v.node))];
                }
            } else {
                let mut merged: Vec<(u32, NodeSet)> = Vec::new();
                for &p in &self.in_edges[i] {
                    for &(k, nodes) in &origins[p as usize] {
                        match merged.binary_search_by_key(&k, |(mk, _)| *mk) {
                            Ok(j) => merged[j].1 = merged[j].1.union(nodes),
                            Err(j) => merged.insert(j, (k, nodes)),
                        }
                    }
                }
                origins[i] = merged;
            }
        }
        origins
    }

    /// Computes the cover `𝔄(v)` of every vertex (Def. 4): per primitive
    /// operator of `v`'s projection, the set of origin nodes whose source
    /// vertex reaches `v`. Returned parallel to the internal vertex order
    /// (pair each with [`MuseGraph::vertices`]).
    pub fn covers(&self, ctx: &PlanContext<'_>) -> Vec<Cover> {
        let origins = self.origin_sets(ctx);
        self.verts
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let proj = ctx.proj(v.proj);
                let query = ctx.query_of(v.proj);
                Cover::new(
                    proj.positive_prims(query)
                        .iter()
                        .map(|p| {
                            let key = (proj.source.0 << 8) | p.0 as u32;
                            let nodes = origins[i]
                                .binary_search_by_key(&key, |(k, _)| *k)
                                .ok()
                                .map(|j| origins[i][j].1)
                                .unwrap_or(NodeSet::empty());
                            (p, nodes)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// `|𝔄(v)|` for every vertex, without materializing [`Cover`]s — the
    /// hot path of cost evaluation during plan construction.
    pub fn cover_counts(&self, ctx: &PlanContext<'_>) -> Vec<f64> {
        let origins = self.origin_sets(ctx);
        self.verts
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let proj = ctx.proj(v.proj);
                let query = ctx.query_of(v.proj);
                proj.positive_prims(query)
                    .iter()
                    .map(|p| {
                        let key = (proj.source.0 << 8) | p.0 as u32;
                        origins[i]
                            .binary_search_by_key(&key, |(k, _)| *k)
                            .ok()
                            .map(|j| origins[i][j].1.len() as f64)
                            .unwrap_or(0.0)
                    })
                    .product()
            })
            .collect()
    }

    /// Edge weights per §4.4: a local edge weighs 0; a network edge from `v`
    /// into node `n'` weighs `r̂(p) · |𝔄(v)| / |V_{v,n'}|`, where `V_{v,n'}`
    /// are the successors of `v` hosted at `n'` (matches are shipped to a
    /// node once and shared by its placements).
    pub fn edge_weights(&self, ctx: &PlanContext<'_>) -> Vec<((Vertex, Vertex), f64)> {
        let covers = self.covers(ctx);
        let mut out = Vec::with_capacity(self.num_edges());
        for (i, v) in self.verts.iter().enumerate() {
            if self.out_edges[i].is_empty() {
                continue;
            }
            let volume = ctx.rate_of(v.proj) * covers[i].count();
            // Successor count per target node for the sharing division.
            let mut per_node: HashMap<NodeId, f64> = HashMap::new();
            for &j in &self.out_edges[i] {
                *per_node.entry(self.verts[j as usize].node).or_insert(0.0) += 1.0;
            }
            for &j in &self.out_edges[i] {
                let w = self.verts[j as usize];
                let weight = if w.node == v.node {
                    0.0
                } else {
                    volume / per_node[&w.node]
                };
                out.push(((*v, w), weight));
            }
        }
        out
    }

    /// The network cost `c(G) = Σ_e c(e)` of the graph — the total rate with
    /// which matches cross the network under this plan.
    ///
    /// When the context carries [`SharedTransmissions`], streams already
    /// established by earlier plans cost nothing (multi-query reuse, §6.2).
    pub fn cost(&self, ctx: &PlanContext<'_>) -> f64 {
        let origins = self.origin_sets(ctx);
        let mut total = 0.0;
        for (i, v) in self.verts.iter().enumerate() {
            if self.out_edges[i].is_empty() {
                continue;
            }
            let mut remote_nodes = NodeSet::empty();
            for &j in &self.out_edges[i] {
                let n = self.verts[j as usize].node;
                if n != v.node {
                    remote_nodes.insert(n);
                }
            }
            if remote_nodes.is_empty() {
                continue;
            }
            let proj = ctx.proj(v.proj);
            let query = ctx.query_of(v.proj);
            let mut count = 1.0;
            for p in proj.positive_prims(query).iter() {
                let key = (proj.source.0 << 8) | p.0 as u32;
                count *= origins[i]
                    .binary_search_by_key(&key, |(k, _)| *k)
                    .ok()
                    .map(|j| origins[i][j].1.len() as f64)
                    .unwrap_or(0.0);
            }
            let volume = ctx.rate_of(v.proj) * count;
            match ctx.shared {
                None => total += volume * remote_nodes.len() as f64,
                Some(shared) => {
                    let key = stream_key_from_origins(proj, query, &origins[i]);
                    for n in remote_nodes.iter() {
                        if !shared.contains(key, v.node, n) {
                            total += volume;
                        }
                    }
                }
            }
        }
        total
    }

    /// The semantic identity of the match stream produced by vertex `i`:
    /// the projection's precomputed structure/predicate hash mixed with the
    /// covered bindings (event types × origin node sets). Equal keys ⇒
    /// identical streams, even across queries. A 64-bit hash keeps the
    /// multi-query construction inner loop allocation-free; collisions are
    /// astronomically unlikely at plan scale.
    fn stream_key(&self, ctx: &PlanContext<'_>, i: usize, cover: &Cover) -> u64 {
        let v = self.verts[i];
        let proj = ctx.proj(v.proj);
        let query = ctx.query_of(v.proj);
        let mut key = proj.stream_sig;
        for prim in cover.prims().iter() {
            mix64(&mut key, query.prim_type(prim).0 as u64 + 1);
            let bits = cover.nodes_of(prim).bits();
            mix64(&mut key, bits as u64);
            mix64(&mut key, (bits >> 64) as u64);
        }
        key
    }

    /// Enumerates the network transmissions of the plan as
    /// `(stream key, from node, to node)` triples, one per (sender vertex,
    /// target node) pair. Register these in a [`SharedTransmissions`] to let
    /// later plans reuse them.
    pub fn transmissions(&self, ctx: &PlanContext<'_>) -> Vec<(u64, NodeId, NodeId)> {
        let covers = self.covers(ctx);
        let mut out = Vec::new();
        for (i, v) in self.verts.iter().enumerate() {
            if self.out_edges[i].is_empty() {
                continue;
            }
            let mut remote_nodes = NodeSet::empty();
            for &j in &self.out_edges[i] {
                let n = self.verts[j as usize].node;
                if n != v.node {
                    remote_nodes.insert(n);
                }
            }
            if remote_nodes.is_empty() {
                continue;
            }
            let key = self.stream_key(ctx, i, &covers[i]);
            for n in remote_nodes.iter() {
                out.push((key, v.node, n));
            }
        }
        out
    }

    /// Well-formedness (Def. 7): (i) every `(primitive, producing node)`
    /// pair of every query has a vertex; (ii) every non-source vertex's
    /// direct predecessors form a correct combination for its projection
    /// (proper subsets whose union covers it), and every source vertex hosts
    /// a primitive operator at a node generating its type.
    pub fn check_well_formed(&self, ctx: &PlanContext<'_>) -> Result<(), String> {
        // (i) all primitive placements present.
        for query in ctx.queries {
            for prim in query.prims().iter() {
                let ty = query.prim_type(prim);
                let Some(proj) = ctx
                    .table
                    .id_of(query.id(), crate::types::PrimSet::single(prim))
                else {
                    return Err(format!(
                        "no primitive projection registered for {:?} of {:?}",
                        prim,
                        query.id()
                    ));
                };
                for node in ctx.network.producers(ty).iter() {
                    if !self.contains_vertex(Vertex::new(proj, node)) {
                        return Err(format!(
                            "missing primitive vertex ({prim:?} of {:?}, {node:?})",
                            query.id()
                        ));
                    }
                }
            }
        }
        // (ii) local structure.
        for (i, v) in self.verts.iter().enumerate() {
            let proj = ctx.proj(v.proj);
            if self.in_edges[i].is_empty() {
                if !proj.is_primitive() {
                    return Err(format!(
                        "source vertex ({:?}, {:?}) hosts a composite projection",
                        proj.prims, v.node
                    ));
                }
                let prim = proj.prims.iter().next().unwrap();
                let ty = ctx.query_of(v.proj).prim_type(prim);
                if !ctx.network.generates(v.node, ty) {
                    return Err(format!(
                        "primitive vertex ({prim:?}, {:?}) at non-producing node",
                        v.node
                    ));
                }
            } else {
                let mut union = crate::types::PrimSet::empty();
                for p in self.predecessors(*v) {
                    let pp = ctx.proj(p.proj);
                    if pp.source != proj.source {
                        return Err("edge crosses queries".to_string());
                    }
                    if !pp.prims.is_proper_subset(proj.prims) {
                        return Err(format!(
                            "predecessor {:?} is not a proper sub-projection of {:?}",
                            pp.prims, proj.prims
                        ));
                    }
                    union = union.union(pp.prims);
                }
                if union != proj.prims {
                    return Err(format!(
                        "predecessors of ({:?}, {:?}) cover {:?}, need {:?}",
                        proj.prims, v.node, union, proj.prims
                    ));
                }
            }
        }
        Ok(())
    }

    /// *Operational* covers: the bindings each vertex can actually generate
    /// matches for. Unlike the reachability cover of Def. 4 (see
    /// [`MuseGraph::covers`]), a binding counts only if **every** direct
    /// predecessor projection delivers the corresponding sub-bag from some
    /// predecessor vertex (the paper's Property 2 / Example 8 alignment
    /// condition). Enumerates bindings explicitly — validation only.
    pub fn operational_covers(
        &self,
        ctx: &PlanContext<'_>,
        limit: usize,
    ) -> Result<Vec<Vec<EventTypeBinding>>, String> {
        let n = self.verts.len();
        let mut covers: Vec<Vec<EventTypeBinding>> = vec![Vec::new(); n];
        for i in self.topo_order() {
            let i = i as usize;
            let v = self.verts[i];
            let proj = ctx.proj(v.proj);
            let query = ctx.query_of(v.proj);
            if self.in_edges[i].is_empty() {
                if let Some(prim) = proj.prims.iter().next().filter(|_| proj.is_primitive()) {
                    if !query.negated_prims().contains(prim) {
                        covers[i] = vec![EventTypeBinding::new(vec![(prim, v.node)])];
                    }
                }
                continue;
            }
            // Group predecessor vertices by their projection.
            let mut by_proj: HashMap<ProjId, Vec<usize>> = HashMap::new();
            for &p in &self.in_edges[i] {
                by_proj
                    .entry(self.verts[p as usize].proj)
                    .or_default()
                    .push(p as usize);
            }
            let candidates = enumerate_bindings(query, proj.prims, ctx.network, limit)
                .map_err(|e| e.to_string())?;
            covers[i] = candidates
                .into_iter()
                .filter(|b| {
                    by_proj.iter().all(|(pred_proj, pred_idxs)| {
                        let pred = ctx.proj(*pred_proj);
                        let positive = pred.positive_prims(query);
                        if positive.is_empty() {
                            return true; // pure negation guard stream
                        }
                        let sub = b.restrict(positive);
                        pred_idxs.iter().any(|&pi| covers[pi].contains(&sub))
                    })
                })
                .collect();
        }
        Ok(covers)
    }

    /// Completeness (Def. 8): for every query, the vertices hosting the full
    /// query jointly generate all its event type bindings, using the
    /// operational covers (which respect predecessor alignment,
    /// cf. Example 8). Bindings are enumerated, so this check is for
    /// validation on small instances; the `limit` caps the enumeration size.
    pub fn check_complete(&self, ctx: &PlanContext<'_>, limit: usize) -> Result<(), String> {
        let covers = self.operational_covers(ctx, limit)?;
        for query in ctx.queries {
            let bindings = enumerate_bindings(query, query.prims(), ctx.network, limit)
                .map_err(|e| e.to_string())?;
            let full: Vec<usize> = self
                .verts
                .iter()
                .enumerate()
                .filter(|(_, v)| {
                    let p = ctx.proj(v.proj);
                    p.source == query.id() && p.is_full_query(query)
                })
                .map(|(i, _)| i)
                .collect();
            for b in &bindings {
                if !full.iter().any(|&i| covers[i].contains(b)) {
                    return Err(format!(
                        "binding {:?} of {:?} covered by no sink",
                        b,
                        query.id()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Correctness = well-formedness + completeness (§5.2).
    pub fn check_correct(&self, ctx: &PlanContext<'_>, limit: usize) -> Result<(), String> {
        self.check_well_formed(ctx)?;
        self.check_complete(ctx, limit)
    }

    /// The collapsed normal form (Def. 11): iteratively removes non-source
    /// vertices all of whose outgoing edges are local, splicing their
    /// incoming edges onto their successors. Two MuSE graphs are equivalent
    /// iff they have the same collapsed normal form (Property 5).
    pub fn collapsed_normal_form(&self) -> MuseGraph {
        let mut g = self.clone();
        loop {
            let mut removed = None;
            for (i, v) in g.verts.iter().enumerate() {
                if g.in_edges[i].is_empty() || g.out_edges[i].is_empty() {
                    continue;
                }
                let all_local = g.out_edges[i]
                    .iter()
                    .all(|&j| g.verts[j as usize].node == v.node);
                if all_local {
                    removed = Some(i as u32);
                    break;
                }
            }
            let Some(i) = removed else {
                return g;
            };
            g = g.without_vertex_spliced(i);
        }
    }

    /// Rebuilds the graph without vertex `i`, connecting each of its
    /// predecessors to each of its successors.
    fn without_vertex_spliced(&self, i: u32) -> MuseGraph {
        let removed = self.verts[i as usize];
        let mut g = MuseGraph::new();
        for v in &self.verts {
            if *v != removed {
                g.add_vertex(*v);
            }
        }
        for (a, b) in self.edge_indices() {
            if a == i || b == i {
                continue;
            }
            g.add_edge(self.verts[a as usize], self.verts[b as usize]);
        }
        for &p in &self.in_edges[i as usize] {
            for &s in &self.out_edges[i as usize] {
                g.add_edge(self.verts[p as usize], self.verts[s as usize]);
            }
        }
        g
    }

    /// Minimality (§5.4): a correct MuSE graph is *minimal* if no network
    /// edge can be removed without violating correctness. Lemma 1: every
    /// optimal graph is minimal. Checked by re-validating the graph with
    /// each network edge removed (validation-scale instances only; the
    /// `limit` caps binding enumeration as in [`MuseGraph::check_complete`]).
    pub fn is_minimal(&self, ctx: &PlanContext<'_>, limit: usize) -> Result<bool, String> {
        self.check_correct(ctx, limit)?;
        for (from, to) in self.edges() {
            if from.node == to.node {
                continue; // local edges carry no cost (§5.4 concerns network edges)
            }
            let mut without = MuseGraph::new();
            for v in self.vertices() {
                without.add_vertex(v);
            }
            for (a, b) in self.edges() {
                if (a, b) != (from, to) {
                    without.add_edge(a, b);
                }
            }
            if without.check_correct(ctx, limit).is_ok() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The unfolded normal form for graphs with a single underlying
    /// combination (Def. 14): removes edges from vertices whose projection
    /// is not a *direct* predecessor of the target according to `β`
    /// (supplied as a lookup from target prim set to its predecessors'
    /// prim sets). Vertices left without successors that are neither sinks
    /// nor sources are dropped.
    pub fn unfolded_normal_form(
        &self,
        ctx: &PlanContext<'_>,
        beta: &impl Fn(crate::types::PrimSet) -> Option<Vec<crate::types::PrimSet>>,
    ) -> MuseGraph {
        let mut g = MuseGraph::new();
        for v in self.vertices() {
            g.add_vertex(v);
        }
        for (a, b) in self.edges() {
            let target_prims = ctx.proj(b.proj).prims;
            let source_prims = ctx.proj(a.proj).prims;
            let keep = match beta(target_prims) {
                Some(preds) => preds.contains(&source_prims),
                None => true,
            };
            if keep {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Structural equality (same vertex and edge sets).
    pub fn same_structure(&self, other: &MuseGraph) -> bool {
        if self.num_vertices() != other.num_vertices() || self.num_edges() != other.num_edges() {
            return false;
        }
        self.verts.iter().all(|v| other.contains_vertex(*v))
            && self.edges().all(|(a, b)| other.has_edge(a, b))
    }

    /// Equivalence per Property 5: equal collapsed normal forms.
    pub fn is_equivalent_to(&self, other: &MuseGraph) -> bool {
        self.collapsed_normal_form()
            .same_structure(&other.collapsed_normal_form())
    }

    /// Renders the graph in Graphviz DOT format, with projections rendered
    /// via the catalog and network edges labeled with their weight.
    pub fn to_dot(&self, ctx: &PlanContext<'_>, catalog: &crate::catalog::Catalog) -> String {
        let mut s = String::from("digraph muse {\n  rankdir=BT;\n");
        for (i, v) in self.verts.iter().enumerate() {
            let proj = ctx.proj(v.proj);
            let query = ctx.query_of(v.proj);
            let label = proj.root.render(query.prim_types(), catalog);
            let _ = writeln!(s, "  v{i} [label=\"{label}@n{}\"];", v.node.0);
        }
        for ((a, b), w) in self.edge_weights(ctx) {
            let ai = self.index[&a];
            let bi = self.index[&b];
            if w == 0.0 {
                let _ = writeln!(s, "  v{ai} -> v{bi} [style=dashed];");
            } else {
                let _ = writeln!(s, "  v{ai} -> v{bi} [label=\"{w:.2}\"];");
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::projection::ProjectionTable;
    use crate::query::{Pattern, Query};
    use crate::types::{EventTypeId, PrimSet, QueryId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }
    fn ps(prims: impl IntoIterator<Item = u8>) -> PrimSet {
        prims.into_iter().map(PrimId).collect()
    }

    /// Fig. 2 setup: q1 = SEQ(AND(C, L), F); nodes n0={C,F}, n1={C,L},
    /// n2={L}, n3={F}; rates r(C)=r(L)=100, r(F)=1.
    struct Fig2 {
        query: Query,
        network: Network,
        table: ProjectionTable,
        graph: MuseGraph,
        // Projection ids.
        p_c: ProjId,
        p_l: ProjId,
        p_f: ProjId,
        p2: ProjId, // SEQ(L, F)
        p3: ProjId, // AND(C, L)
        pq: ProjId, // full query
    }

    fn fig2() -> Fig2 {
        let query = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            1000,
        )
        .unwrap();
        let network = NetworkBuilder::new(4, 3)
            .node(n(0), [t(0), t(2)])
            .node(n(1), [t(0), t(1)])
            .node(n(2), [t(1)])
            .node(n(3), [t(2)])
            .rate(t(0), 100.0)
            .rate(t(1), 100.0)
            .rate(t(2), 1.0)
            .build();
        let mut table = ProjectionTable::new();
        let p_c = table.project_into(&query, ps([0])).unwrap();
        let p_l = table.project_into(&query, ps([1])).unwrap();
        let p_f = table.project_into(&query, ps([2])).unwrap();
        let p2 = table.project_into(&query, ps([1, 2])).unwrap();
        let p3 = table.project_into(&query, ps([0, 1])).unwrap();
        let pq = table.project_into(&query, ps([0, 1, 2])).unwrap();

        let mut g = MuseGraph::new();
        let v1 = Vertex::new(p2, n(0));
        let v2 = Vertex::new(p3, n(0));
        let v3 = Vertex::new(p3, n(1));
        let v4 = Vertex::new(pq, n(0));
        let v5 = Vertex::new(pq, n(1));
        // Primitive inputs of v1 = (SEQ(L,F), n0).
        g.add_edge(Vertex::new(p_l, n(1)), v1);
        g.add_edge(Vertex::new(p_l, n(2)), v1);
        g.add_edge(Vertex::new(p_f, n(0)), v1);
        g.add_edge(Vertex::new(p_f, n(3)), v1);
        // v2 = (AND(C,L), n0): local C, remote Ls.
        g.add_edge(Vertex::new(p_c, n(0)), v2);
        g.add_edge(Vertex::new(p_l, n(1)), v2);
        g.add_edge(Vertex::new(p_l, n(2)), v2);
        // v3 = (AND(C,L), n1): local C and L, remote L from n2.
        g.add_edge(Vertex::new(p_c, n(1)), v3);
        g.add_edge(Vertex::new(p_l, n(1)), v3);
        g.add_edge(Vertex::new(p_l, n(2)), v3);
        // Sinks.
        g.add_edge(v1, v4);
        g.add_edge(v2, v4);
        g.add_edge(v1, v5);
        g.add_edge(v3, v5);
        Fig2 {
            query,
            network,
            table,
            graph: g,
            p_c,
            p_l,
            p_f,
            p2,
            p3,
            pq,
        }
    }

    fn ctx<'a>(f: &'a Fig2) -> PlanContext<'a> {
        PlanContext::new(std::slice::from_ref(&f.query), &f.network, &f.table)
    }

    #[test]
    fn structure_queries() {
        let f = fig2();
        let g = &f.graph;
        assert_eq!(g.num_vertices(), 11);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.sources().len(), 6); // all primitive placements
        let sinks = g.sinks();
        assert_eq!(sinks.len(), 2);
        assert!(sinks.contains(&Vertex::new(f.pq, n(0))));
        assert!(sinks.contains(&Vertex::new(f.pq, n(1))));
        assert_eq!(g.placement_of(f.p3).len(), 2);
        assert_eq!(g.predecessors(Vertex::new(f.pq, n(0))).len(), 2);
        assert_eq!(g.successors(Vertex::new(f.p2, n(0))).len(), 2);
    }

    #[test]
    fn covers_match_example6() {
        let f = fig2();
        let c = ctx(&f);
        let covers = f.graph.covers(&c);
        let idx = |v: Vertex| f.graph.vertices().position(|x| x == v).unwrap();
        // v2 covers C from n0 only, L from n1 and n2.
        let v2 = covers[idx(Vertex::new(f.p3, n(0)))].clone();
        assert_eq!(v2.nodes_of(PrimId(0)), NodeSet::single(n(0)));
        assert_eq!(v2.nodes_of(PrimId(1)).len(), 2);
        assert_eq!(v2.count(), 2.0);
        // v3 covers C from n1 only.
        let v3 = covers[idx(Vertex::new(f.p3, n(1)))].clone();
        assert_eq!(v3.nodes_of(PrimId(0)), NodeSet::single(n(1)));
        assert_eq!(v3.count(), 2.0);
        // v1 covers all 4 bindings of SEQ(L, F).
        let v1 = covers[idx(Vertex::new(f.p2, n(0)))].clone();
        assert_eq!(v1.count(), 4.0);
        // Sinks each cover 4 of the 8 query bindings.
        let v4 = covers[idx(Vertex::new(f.pq, n(0)))].clone();
        let v5 = covers[idx(Vertex::new(f.pq, n(1)))].clone();
        assert_eq!(v4.count(), 4.0);
        assert_eq!(v5.count(), 4.0);
        assert_eq!(v4.nodes_of(PrimId(0)), NodeSet::single(n(0)));
        assert_eq!(v5.nodes_of(PrimId(0)), NodeSet::single(n(1)));
    }

    #[test]
    fn edge_weights_follow_cost_model() {
        let f = fig2();
        let c = ctx(&f);
        let weights: HashMap<(Vertex, Vertex), f64> =
            f.graph.edge_weights(&c).into_iter().collect();
        // Example 9: weight of (v1, v5) is r̂(SEQ(L,F)) · 4 = 100·1·4 = 400.
        let w = weights[&(Vertex::new(f.p2, n(0)), Vertex::new(f.pq, n(1)))];
        assert!((w - 400.0).abs() < 1e-9);
        // Local edges weigh 0.
        let w = weights[&(Vertex::new(f.p2, n(0)), Vertex::new(f.pq, n(0)))];
        assert_eq!(w, 0.0);
        let w = weights[&(Vertex::new(f.p_f, n(0)), Vertex::new(f.p2, n(0)))];
        assert_eq!(w, 0.0);
        // Match reuse: (L, n1) feeds v1 and v2, both at n0 → each edge
        // carries r(L)/2.
        let w = weights[&(Vertex::new(f.p_l, n(1)), Vertex::new(f.p2, n(0)))];
        assert!((w - 50.0).abs() < 1e-9);
        // (L, n2) → v3 at n1 is a full r(L) edge.
        let w = weights[&(Vertex::new(f.p_l, n(2)), Vertex::new(f.p3, n(1)))];
        assert!((w - 100.0).abs() < 1e-9);
    }

    #[test]
    fn total_cost_hand_computed() {
        let f = fig2();
        let c = ctx(&f);
        // Network transmissions:
        //   L: n1→n0 (shared by v1, v2) = 100
        //   L: n2→n0 (shared by v1, v2) = 100
        //   L: n2→n1 (for v3)           = 100
        //   L: n1→n1? no — local        = 0
        //   F: n3→n0                    = 1
        //   p2 matches: n0→n1 (4 bindings · rate 100) = 400
        // Total = 701.
        assert!((f.graph.cost(&c) - 701.0).abs() < 1e-9);
        // Cost equals the sum of the edge weights.
        let sum: f64 = f.graph.edge_weights(&c).iter().map(|(_, w)| w).sum();
        assert!((sum - f.graph.cost(&c)).abs() < 1e-9);
    }

    #[test]
    fn fig2_graph_is_correct() {
        let f = fig2();
        let c = ctx(&f);
        f.graph.check_well_formed(&c).unwrap();
        f.graph.check_complete(&c, 10_000).unwrap();
        f.graph.check_correct(&c, 10_000).unwrap();
    }

    #[test]
    fn incomplete_graph_detected() {
        let f = fig2();
        let c = ctx(&f);
        // Remove sink v5: bindings with C from n1 are no longer covered.
        let mut g = MuseGraph::new();
        for (a, b) in f.graph.edges() {
            if b != Vertex::new(f.pq, n(1)) {
                g.add_edge(a, b);
            }
        }
        assert!(g.check_complete(&c, 10_000).is_err());
    }

    #[test]
    fn malformed_missing_primitive_detected() {
        let f = fig2();
        let c = ctx(&f);
        // A graph missing the (C, n1) primitive vertex fails condition (i).
        let mut g = MuseGraph::new();
        for (a, b) in f.graph.edges() {
            if a != Vertex::new(f.p_c, n(1)) {
                g.add_edge(a, b);
            }
        }
        let err = g.check_well_formed(&c).unwrap_err();
        assert!(
            err.contains("missing primitive vertex") || err.contains("cover"),
            "{err}"
        );
    }

    #[test]
    fn malformed_bad_combination_detected() {
        let f = fig2();
        let c = ctx(&f);
        // A sink fed only by p3 = AND(C, L) misses prim F.
        let mut g = MuseGraph::new();
        g.add_edge(Vertex::new(f.p_c, n(0)), Vertex::new(f.p3, n(0)));
        g.add_edge(Vertex::new(f.p_l, n(1)), Vertex::new(f.p3, n(0)));
        g.add_edge(Vertex::new(f.p3, n(0)), Vertex::new(f.pq, n(0)));
        let err = g.check_well_formed(&c).unwrap_err();
        assert!(err.contains("cover") || err.contains("missing"), "{err}");
    }

    #[test]
    fn collapsed_normal_form_splices_local_chains() {
        let f = fig2();
        // Build a graph with a purely-local intermediate vertex: p3 at n0
        // feeding only pq at n0.
        let mut g = MuseGraph::new();
        let v_mid = Vertex::new(f.p3, n(0));
        let v_sink = Vertex::new(f.pq, n(0));
        g.add_edge(Vertex::new(f.p_c, n(0)), v_mid);
        g.add_edge(Vertex::new(f.p_l, n(1)), v_mid);
        g.add_edge(v_mid, v_sink);
        g.add_edge(Vertex::new(f.p2, n(1)), v_sink);
        let cnf = g.collapsed_normal_form();
        assert!(!cnf.contains_vertex(v_mid));
        assert!(cnf.has_edge(Vertex::new(f.p_c, n(0)), v_sink));
        assert!(cnf.has_edge(Vertex::new(f.p_l, n(1)), v_sink));
        // Equivalence: g and its collapsed normal form are equivalent.
        assert!(g.is_equivalent_to(&cnf));
        // The Fig. 2 graph is already in collapsed normal form: v2 has only
        // a local successor... actually v2 → v4 is local and v2 has no other
        // successor, so it collapses. Verify idempotence instead.
        let c1 = f.graph.collapsed_normal_form();
        assert!(c1.same_structure(&c1.collapsed_normal_form()));
    }

    #[test]
    fn fig2_graph_is_minimal() {
        let f = fig2();
        let c = ctx(&f);
        assert_eq!(f.graph.is_minimal(&c, 100_000), Ok(true));
        // A redundant *network* edge — v2's AND(C, L) matches additionally
        // shipped to the second sink, whose bindings the first sink already
        // generates — breaks minimality: removing it restores correctness.
        let mut g2 = f.graph.clone();
        g2.add_edge(Vertex::new(f.p3, n(0)), Vertex::new(f.pq, n(1)));
        assert!(g2.check_well_formed(&c).is_ok());
        assert_eq!(g2.is_minimal(&c, 100_000), Ok(false));
    }

    #[test]
    fn unfolded_normal_form_keeps_direct_predecessors() {
        let f = fig2();
        let c = ctx(&f);
        // β: q ← {p2, p3}; p2 ← {L, F}; p3 ← {C, L}.
        let beta = |prims: PrimSet| -> Option<Vec<PrimSet>> {
            if prims == ps([0, 1, 2]) {
                Some(vec![ps([1, 2]), ps([0, 1])])
            } else if prims == ps([1, 2]) {
                Some(vec![ps([1]), ps([2])])
            } else if prims == ps([0, 1]) {
                Some(vec![ps([0]), ps([1])])
            } else {
                None
            }
        };
        let unfolded = f.graph.unfolded_normal_form(&c, &beta);
        // Fig. 2's graph is already in unfolded normal form w.r.t. its
        // underlying combination: nothing changes.
        assert!(unfolded.same_structure(&f.graph));
        // A graph with an extra shortcut edge (primitive directly into the
        // sink) is folded back.
        let mut with_shortcut = f.graph.clone();
        with_shortcut.add_edge(Vertex::new(f.p_f, n(0)), Vertex::new(f.pq, n(0)));
        let refolded = with_shortcut.unfolded_normal_form(&c, &beta);
        assert!(!refolded.has_edge(Vertex::new(f.p_f, n(0)), Vertex::new(f.pq, n(0))));
        assert!(refolded.same_structure(&f.graph));
    }

    #[test]
    fn union_and_dedup() {
        let f = fig2();
        let mut g = MuseGraph::new();
        g.add_edge(Vertex::new(f.p_c, n(0)), Vertex::new(f.p3, n(0)));
        let before_edges = f.graph.num_edges();
        let mut merged = f.graph.clone();
        merged.union_with(&g);
        // The edge already existed: nothing changes.
        assert_eq!(merged.num_edges(), before_edges);
        assert_eq!(merged.num_vertices(), f.graph.num_vertices());
    }

    #[test]
    fn serde_roundtrip() {
        let f = fig2();
        let json = serde_json::to_string(&f.graph).unwrap();
        let back: MuseGraph = serde_json::from_str(&json).unwrap();
        assert!(back.same_structure(&f.graph));
    }

    #[test]
    fn dot_export_mentions_projections() {
        let f = fig2();
        let c = ctx(&f);
        let mut catalog = crate::catalog::Catalog::new();
        catalog.add_event_type("C").unwrap();
        catalog.add_event_type("L").unwrap();
        catalog.add_event_type("F").unwrap();
        let dot = f.graph.to_dot(&c, &catalog);
        assert!(dot.contains("SEQ(AND(C, L), F)"));
        assert!(dot.contains("style=dashed"));
    }
}
