//! Query projections (§4.2 of the paper).
//!
//! A projection `π(q, E')` restricts a query `q` to the primitive operators
//! whose event types lie in `E'`: leaves outside `E'` are removed, childless
//! composite operators disappear, and single-child composite operators are
//! spliced out. Unlike traditional sub-patterns, matches of projections need
//! not be contiguous sub-sequences of query matches — e.g. `SEQ(C, F)` is a
//! projection of `SEQ(AND(C, L), F)`.
//!
//! For workloads with negation, only *negation-closed* projections (Def. 9)
//! may be used: retaining any primitive operator of a negated `NSEQ` child
//! requires retaining the operator's entire context (first, negated, and
//! last child), so that the absence check remains unambiguous.

use crate::error::{ModelError, Result};
use crate::query::{OpKind, OpNode, Query};
use crate::types::{PrimSet, QueryId, TypeSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a projection within a [`ProjectionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProjId(pub u32);

impl ProjId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The projection of a query induced by a subset of its primitive operators.
///
/// Primitive operators keep the [`crate::types::PrimId`]s of the source
/// query, so partial matches of different projections of the same query
/// compose without renaming.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// The query this projection was derived from.
    pub source: QueryId,
    /// The retained primitive operators (identified by source-query prim ids).
    pub prims: PrimSet,
    /// The projected operator tree.
    pub root: OpNode,
    /// Indices into the source query's predicate list of the retained
    /// predicates (`P' ⊆ P`: predicates entirely over retained primitives).
    pub predicates: Vec<usize>,
    /// `σ(p)`: product of the retained predicates' selectivities.
    pub selectivity: f64,
    /// Hash of the projection's semantic identity — structure in terms of
    /// event types plus retained predicates — used by the multi-query
    /// stream-reuse accounting to identify identical match streams across
    /// queries without string comparisons.
    pub stream_sig: u64,
}

impl Projection {
    /// Returns `true` if the projection consists of a single primitive
    /// operator.
    pub fn is_primitive(&self) -> bool {
        self.prims.len() == 1
    }

    /// Number of retained primitive operators (`|O_p^p|`).
    pub fn num_prims(&self) -> usize {
        self.prims.len()
    }

    /// The event types of the retained primitive operators.
    pub fn types(&self, query: &Query) -> TypeSet {
        query.types_of(self.prims)
    }

    /// The retained primitive operators that are *not* below a negated
    /// `NSEQ` child. Matches contain one event per positive primitive.
    pub fn positive_prims(&self, query: &Query) -> PrimSet {
        self.prims.difference(query.negated_prims())
    }

    /// The retained primitive operators below a negated `NSEQ` child.
    pub fn negated_prims(&self, query: &Query) -> PrimSet {
        self.prims.intersect(query.negated_prims())
    }

    /// Returns `true` if this projection equals the full source query.
    pub fn is_full_query(&self, query: &Query) -> bool {
        self.prims == query.prims()
    }

    /// Canonical structural signature in terms of event types, usable to
    /// detect structurally identical projections across queries (multi-query
    /// extension, §6.2).
    pub fn signature(&self, query: &Query) -> String {
        self.root.signature(query.prim_types())
    }

    /// Order-preserving structural signature: the `tree_signature` term of
    /// [`Projection::stream_sig`] without the predicate terms. Two
    /// projections with equal structure signatures have identical projected
    /// operator trees *and* identical left-to-right prim numbering, so
    /// their buffered join state is layout-compatible. The migration-safety
    /// pass keys vertex correspondence on this (rather than `stream_sig`)
    /// so that a window or predicate edit still matches its old vertex and
    /// can be diagnosed, instead of silently failing to correspond.
    pub fn structure_sig(&self, query: &Query) -> String {
        self.root.tree_signature(query.prim_types())
    }
}

/// Checks negation-closure (Def. 9) of the projection induced by `keep`:
/// whenever any primitive of a negated `NSEQ` child is retained, the
/// operator's complete context (first, negated, and last child) must be
/// retained.
///
/// Single-primitive projections are exempt: they are the source vertices of
/// every MuSE graph (Def. 7 (i) requires a vertex per primitive operator
/// and producing node), and a lone event stream carries no negation
/// semantics — the absence check happens at the vertex hosting the full
/// `NSEQ` context.
pub fn is_negation_closed(query: &Query, keep: PrimSet) -> bool {
    if keep.len() <= 1 {
        return true;
    }
    query.nseq_contexts().iter().all(|ctx| {
        let full = ctx.first.union(ctx.negated).union(ctx.last);
        keep.is_disjoint(ctx.negated) || full.is_subset(keep)
    })
}

/// Derives the projection of `query` induced by the primitive-operator set
/// `keep` (`π(q, E')` with `E'` translated to prim ids via
/// [`Query::prims_of_types`]).
///
/// # Errors
///
/// * [`ModelError::EmptyProjection`] if `keep` retains nothing;
/// * [`ModelError::UnknownPrim`] if `keep` references primitives outside
///   the query;
/// * [`ModelError::NotNegationClosed`] if `keep` violates Def. 9.
pub fn project(query: &Query, keep: PrimSet) -> Result<Projection> {
    if keep.is_empty() {
        return Err(ModelError::EmptyProjection);
    }
    if !keep.is_subset(query.prims()) {
        let bad = keep.difference(query.prims()).iter().next().unwrap();
        return Err(ModelError::UnknownPrim(bad));
    }
    if !is_negation_closed(query, keep) {
        return Err(ModelError::NotNegationClosed);
    }
    let root =
        project_node(query.root(), keep).expect("non-empty keep set must produce a non-empty tree");
    let predicates = query.predicates_within(keep);
    let selectivity = query.selectivity_within(keep);
    let stream_sig = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // Order-preserving signature: the retained predicates below are
        // rendered over prim ids, which only mean the same thing in two
        // projections if their trees agree in declaration order (the
        // canonical signature sorts AND/OR children and would collapse
        // AND(t0,t2) with AND(t2,t0), whose P0 are different types).
        root.tree_signature(query.prim_types()).hash(&mut h);
        for &pi in &predicates {
            format!("{:?}", query.predicates()[pi]).hash(&mut h);
        }
        h.finish()
    };
    Ok(Projection {
        source: query.id(),
        prims: keep,
        root,
        predicates,
        selectivity,
        stream_sig,
    })
}

/// Projects a subtree onto `keep`, returning `None` if nothing remains.
///
/// Single-child composites are spliced out; same-kind children produced by
/// splicing are flattened so the result is again a valid operator tree.
/// An `NSEQ` whose negated child is fully dropped degrades to a `SEQ` of the
/// surviving first/last parts (negation-closure guarantees the negated child
/// is either fully dropped or fully retained).
fn project_node(node: &OpNode, keep: PrimSet) -> Option<OpNode> {
    match node {
        OpNode::Primitive(p) => keep.contains(*p).then(|| node.clone()),
        OpNode::Composite { kind, children } => match kind {
            OpKind::NSeq => {
                let first = project_node(&children[0], keep);
                let last = project_node(&children[2], keep);
                if children[1].prims().is_disjoint(keep) {
                    // Negated child dropped: NSEQ(A, B, C) becomes SEQ(A, C).
                    compose(OpKind::Seq, [first, last])
                } else {
                    let negated = project_node(&children[1], keep);
                    if first.is_some() && negated.is_some() && last.is_some() {
                        // Negation closure: all three children fully retained.
                        Some(OpNode::Composite {
                            kind: OpKind::NSeq,
                            children: vec![first?, negated?, last?],
                        })
                    } else {
                        // Only reachable for single-primitive projections of
                        // a negated operator (exempt from Def. 9): the
                        // projection is the surviving part itself.
                        compose(OpKind::Seq, [first, negated, last])
                    }
                }
            }
            _ => compose(*kind, children.iter().map(|c| project_node(c, keep))),
        },
    }
}

/// Rebuilds a composite of `kind` from projected children, splicing empty
/// and single-child cases and flattening same-kind children.
fn compose(kind: OpKind, children: impl IntoIterator<Item = Option<OpNode>>) -> Option<OpNode> {
    let mut kept: Vec<OpNode> = Vec::new();
    for child in children.into_iter().flatten() {
        match child {
            // Flatten: a same-kind child produced by splicing is inlined.
            OpNode::Composite {
                kind: ck,
                children: cc,
            } if ck == kind => kept.extend(cc),
            other => kept.push(other),
        }
    }
    match kept.len() {
        0 => None,
        1 => Some(kept.pop().unwrap()),
        _ => Some(OpNode::Composite {
            kind,
            children: kept,
        }),
    }
}

/// Enumerates all projections `Π(q)` of a query: one per non-empty subset of
/// primitive operators, restricted to negation-closed subsets (Def. 9).
///
/// The result has at most `2^|O_p| − 1` entries and includes the projection
/// equal to the query itself.
pub fn all_projections(query: &Query) -> Vec<Projection> {
    query
        .prims()
        .subsets()
        .filter(|s| is_negation_closed(query, *s))
        .map(|s| project(query, s).expect("subset of query prims is projectable"))
        .collect()
}

/// An arena of projections, keyed by `(source query, prim set)`.
///
/// MuSE graph vertices reference projections by [`ProjId`]; the table makes
/// those references cheap and stable across the construction algorithms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProjectionTable {
    entries: Vec<Projection>,
    by_key: HashMap<(QueryId, PrimSet), ProjId>,
}

impl ProjectionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a projection, returning its id. Inserting the same
    /// `(source, prims)` twice returns the existing id.
    pub fn insert(&mut self, projection: Projection) -> ProjId {
        let key = (projection.source, projection.prims);
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = ProjId(self.entries.len() as u32);
        self.entries.push(projection);
        self.by_key.insert(key, id);
        id
    }

    /// Derives and inserts the projection of `query` induced by `prims`.
    pub fn project_into(&mut self, query: &Query, prims: PrimSet) -> Result<ProjId> {
        if let Some(&id) = self.by_key.get(&(query.id(), prims)) {
            return Ok(id);
        }
        let p = project(query, prims)?;
        Ok(self.insert(p))
    }

    /// Returns the projection with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this table.
    pub fn get(&self, id: ProjId) -> &Projection {
        &self.entries[id.index()]
    }

    /// Looks up the id of the projection of `query` induced by `prims`.
    pub fn id_of(&self, query: QueryId, prims: PrimSet) -> Option<ProjId> {
        self.by_key.get(&(query, prims)).copied()
    }

    /// Number of stored projections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(id, projection)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProjId, &Projection)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, p)| (ProjId(i as u32), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CmpOp, Pattern, Predicate};
    use crate::types::{AttrId, EventTypeId, PrimId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }

    /// `SEQ(AND(C, L), F)` with prims C=0, L=1, F=2 and predicates
    /// σ(C,L)=0.1, σ(C,F)=0.5.
    fn example_query() -> Query {
        let p = Pattern::seq([
            Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            Pattern::leaf(t(2)),
        ]);
        let a = AttrId(0);
        let preds = vec![
            Predicate::binary((PrimId(0), a), CmpOp::Eq, (PrimId(1), a), 0.1),
            Predicate::binary((PrimId(0), a), CmpOp::Eq, (PrimId(2), a), 0.5),
        ];
        Query::build(QueryId(0), &p, preds, 1000).unwrap()
    }

    fn ps(prims: impl IntoIterator<Item = u8>) -> PrimSet {
        prims.into_iter().map(PrimId).collect()
    }

    #[test]
    fn example4_projections() {
        // Paper Example 4/5: projections of SEQ(AND(C,L),F) for {C,F},
        // {L,F}, {C,L}.
        let q = example_query();
        // p1 = π(q, {C, F}) = SEQ(C, F): deleting L removes its parent AND.
        let p1 = project(&q, ps([0, 2])).unwrap();
        assert_eq!(
            p1.root,
            OpNode::Composite {
                kind: OpKind::Seq,
                children: vec![OpNode::Primitive(PrimId(0)), OpNode::Primitive(PrimId(2))],
            }
        );
        // p2 = π(q, {L, F}) = SEQ(L, F).
        let p2 = project(&q, ps([1, 2])).unwrap();
        assert_eq!(
            p2.root,
            OpNode::Composite {
                kind: OpKind::Seq,
                children: vec![OpNode::Primitive(PrimId(1)), OpNode::Primitive(PrimId(2))],
            }
        );
        // p3 = π(q, {C, L}) = AND(C, L): deleting F removes the root SEQ.
        let p3 = project(&q, ps([0, 1])).unwrap();
        assert_eq!(
            p3.root,
            OpNode::Composite {
                kind: OpKind::And,
                children: vec![OpNode::Primitive(PrimId(0)), OpNode::Primitive(PrimId(1))],
            }
        );
    }

    #[test]
    fn projection_keeps_contained_predicates() {
        let q = example_query();
        // {C, L} retains the σ=0.1 predicate only.
        let p3 = project(&q, ps([0, 1])).unwrap();
        assert_eq!(p3.predicates, vec![0]);
        assert!((p3.selectivity - 0.1).abs() < 1e-12);
        // {L, F} retains no predicate.
        let p2 = project(&q, ps([1, 2])).unwrap();
        assert!(p2.predicates.is_empty());
        assert!((p2.selectivity - 1.0).abs() < 1e-12);
        // Full projection retains both.
        let pq = project(&q, q.prims()).unwrap();
        assert_eq!(pq.predicates.len(), 2);
        assert!((pq.selectivity - 0.05).abs() < 1e-12);
        assert!(pq.is_full_query(&q));
    }

    #[test]
    fn single_prim_projection() {
        let q = example_query();
        let p = project(&q, ps([2])).unwrap();
        assert!(p.is_primitive());
        assert_eq!(p.root, OpNode::Primitive(PrimId(2)));
    }

    #[test]
    fn empty_and_foreign_prims_rejected() {
        let q = example_query();
        assert_eq!(
            project(&q, PrimSet::empty()),
            Err(ModelError::EmptyProjection)
        );
        assert_eq!(
            project(&q, ps([5])),
            Err(ModelError::UnknownPrim(PrimId(5)))
        );
    }

    #[test]
    fn all_projections_count() {
        let q = example_query();
        let all = all_projections(&q);
        assert_eq!(all.len(), 7); // 2^3 − 1
        assert!(all.iter().any(|p| p.is_full_query(&q)));
        assert_eq!(all.iter().filter(|p| p.is_primitive()).count(), 3);
    }

    #[test]
    fn flattening_same_kind_after_splice() {
        // SEQ(AND(SEQ(B, C), E), D): projecting onto {B, C, D} splices the
        // AND and must flatten SEQ(SEQ(B, C), D) into SEQ(B, C, D).
        let p = Pattern::seq([
            Pattern::and([
                Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            Pattern::leaf(t(3)),
        ]);
        let q = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        // Prims in leaf order: B=0, C=1, E=2, D=3.
        let proj = project(&q, ps([0, 1, 3])).unwrap();
        assert_eq!(
            proj.root,
            OpNode::Composite {
                kind: OpKind::Seq,
                children: vec![
                    OpNode::Primitive(PrimId(0)),
                    OpNode::Primitive(PrimId(1)),
                    OpNode::Primitive(PrimId(3)),
                ],
            }
        );
    }

    #[test]
    fn nseq_negation_closure() {
        // NSEQ(A, B, C): keeping B requires keeping A and C.
        let p = Pattern::nseq(
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::leaf(t(2)),
        );
        let q = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        assert!(is_negation_closed(&q, ps([0, 2]))); // B dropped: fine
        assert!(is_negation_closed(&q, ps([0, 1, 2]))); // all kept: fine
        assert!(is_negation_closed(&q, ps([1]))); // B alone: primitive, exempt
        assert!(!is_negation_closed(&q, ps([0, 1]))); // B without C: violation
        assert_eq!(project(&q, ps([0, 1])), Err(ModelError::NotNegationClosed));
        // The primitive projection of a negated operator is its event type.
        let b = project(&q, ps([1])).unwrap();
        assert_eq!(b.root, OpNode::Primitive(PrimId(1)));
    }

    #[test]
    fn nseq_degrades_to_seq_when_negation_dropped() {
        let p = Pattern::nseq(
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::leaf(t(2)),
        );
        let q = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        let proj = project(&q, ps([0, 2])).unwrap();
        assert_eq!(
            proj.root,
            OpNode::Composite {
                kind: OpKind::Seq,
                children: vec![OpNode::Primitive(PrimId(0)), OpNode::Primitive(PrimId(2))],
            }
        );
        // Full projection keeps the NSEQ.
        let full = project(&q, q.prims()).unwrap();
        assert!(matches!(
            full.root,
            OpNode::Composite {
                kind: OpKind::NSeq,
                ..
            }
        ));
    }

    #[test]
    fn all_projections_respect_negation_closure() {
        let p = Pattern::nseq(
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::seq([Pattern::leaf(t(2)), Pattern::leaf(t(3))]),
        );
        let q = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        let all = all_projections(&q);
        // Negated prim 1 appears only in the full projection {0,1,2,3} or
        // as the (exempt) primitive projection {1}.
        for proj in &all {
            if proj.prims.contains(PrimId(1)) {
                assert!(proj.prims == q.prims() || proj.is_primitive());
            }
        }
        // Subsets without prim 1: 2^3 − 1 = 7, plus the full set and the
        // primitive projection {1} = 9.
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn projection_positive_and_negated_prims() {
        let p = Pattern::nseq(
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::leaf(t(2)),
        );
        let q = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        let full = project(&q, q.prims()).unwrap();
        assert_eq!(full.positive_prims(&q), ps([0, 2]));
        assert_eq!(full.negated_prims(&q), ps([1]));
    }

    #[test]
    fn table_dedup_and_lookup() {
        let q = example_query();
        let mut table = ProjectionTable::new();
        let id1 = table.project_into(&q, ps([0, 1])).unwrap();
        let id2 = table.project_into(&q, ps([0, 1])).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(table.len(), 1);
        let id3 = table.project_into(&q, ps([1, 2])).unwrap();
        assert_ne!(id1, id3);
        assert_eq!(table.id_of(QueryId(0), ps([0, 1])), Some(id1));
        assert_eq!(table.id_of(QueryId(1), ps([0, 1])), None);
        assert_eq!(table.get(id1).prims, ps([0, 1]));
        assert_eq!(table.iter().count(), 2);
    }

    #[test]
    fn signature_matches_across_queries_with_same_types() {
        // Two queries over the same types with identical structure have
        // projections with equal signatures.
        let p = Pattern::seq([
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::leaf(t(2)),
        ]);
        let q1 = Query::build(QueryId(0), &p, vec![], 10).unwrap();
        let p2 = Pattern::seq([
            Pattern::leaf(t(0)),
            Pattern::leaf(t(1)),
            Pattern::leaf(t(3)),
        ]);
        let q2 = Query::build(QueryId(1), &p2, vec![], 10).unwrap();
        let a = project(&q1, ps([0, 1])).unwrap();
        let b = project(&q2, ps([0, 1])).unwrap();
        assert_eq!(a.signature(&q1), b.signature(&q2));
    }
}
