//! The output-rate cost model of §4.4.
//!
//! The *output rate* `r̂` of an operator bounds the rate with which it
//! produces matches, derived recursively from the event generation rates:
//!
//! * primitive `o`: `r̂(o) = r(o.sem)`;
//! * `SEQ`: `r̂(o) = Π r̂(o_i)` — one concatenation per combination;
//! * `AND`: `r̂(o) = k · Π r̂(o_i)` — combinations times interleavings
//!   (the paper's bound);
//! * `NSEQ`: `r̂(o) = r̂(o_1) · r̂(o_3)` — the negated child only filters.
//!
//! The output rate of a query or projection multiplies in its selectivity:
//! `r̂(q) = σ(q) · r̂(root(q))`.
//!
//! Rates are per event type binding; transmission costs multiply the output
//! rate with the number of bindings covered by the sending vertex (§4.4).

use crate::network::Network;
use crate::projection::Projection;
use crate::query::{OpKind, OpNode, Query};
use crate::types::PrimSet;

/// The output rate `r̂(o)` of an operator subtree, per event type binding.
pub fn operator_output_rate(node: &OpNode, query: &Query, network: &Network) -> f64 {
    match node {
        OpNode::Primitive(p) => network.rate(query.prim_type(*p)),
        OpNode::Composite { kind, children } => match kind {
            OpKind::Seq => children
                .iter()
                .map(|c| operator_output_rate(c, query, network))
                .product(),
            OpKind::And => {
                let product: f64 = children
                    .iter()
                    .map(|c| operator_output_rate(c, query, network))
                    .product();
                children.len() as f64 * product
            }
            OpKind::NSeq => {
                operator_output_rate(&children[0], query, network)
                    * operator_output_rate(&children[2], query, network)
            }
            // Workload queries and projections are OR-free; a disjunction's
            // rate (sum of alternatives) is provided for completeness.
            OpKind::Or => children
                .iter()
                .map(|c| operator_output_rate(c, query, network))
                .sum(),
        },
    }
}

/// The output rate `r̂(p) = σ(p) · r̂(root(p))` of a projection.
pub fn projection_output_rate(projection: &Projection, query: &Query, network: &Network) -> f64 {
    projection.selectivity * operator_output_rate(&projection.root, query, network)
}

/// The output rate `r̂(q) = σ(q) · r̂(root(q))` of a query.
pub fn query_output_rate(query: &Query, network: &Network) -> f64 {
    query.selectivity() * operator_output_rate(query.root(), query, network)
}

/// Sum of the primitive rates `Σ_{o ∈ O_p^p} r̂(o)` over a prim set — the
/// upper bound used by the *beneficial projection* test (Def. 13 applied to
/// the primitive combination, §6.1.1).
pub fn primitive_rate_sum(prims: PrimSet, query: &Query, network: &Network) -> f64 {
    prims.iter().map(|p| network.rate(query.prim_type(p))).sum()
}

/// Symmetric relative divergence between a modeled and an observed rate:
/// `|observed − modeled| / max(modeled, observed)`, in `[0, 1]`.
///
/// This is the per-vertex score of the live drift monitor. Symmetry (the
/// larger rate in the denominator) keeps over- and under-estimation
/// comparable, and bounds the score so per-deployment aggregates are
/// rate-weighted means rather than unbounded ratios. Two zero rates agree
/// perfectly and score 0.
pub fn relative_drift(modeled: f64, observed: f64) -> f64 {
    let denom = modeled.max(observed);
    if denom <= 0.0 {
        0.0
    } else {
        (observed - modeled).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::projection::project;
    use crate::query::{CmpOp, Pattern, Predicate};
    use crate::types::{AttrId, EventTypeId, NodeId, PrimId, QueryId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }

    fn network() -> Network {
        NetworkBuilder::new(2, 4)
            .node(NodeId(0), [t(0), t(1)])
            .node(NodeId(1), [t(2), t(3)])
            .rate(t(0), 10.0)
            .rate(t(1), 20.0)
            .rate(t(2), 2.0)
            .rate(t(3), 5.0)
            .build()
    }

    #[test]
    fn seq_rate_is_product() {
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            vec![],
            10,
        )
        .unwrap();
        assert_eq!(query_output_rate(&q, &network()), 200.0);
    }

    #[test]
    fn and_rate_is_k_times_product() {
        let q = Query::build(
            QueryId(0),
            &Pattern::and([
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            10,
        )
        .unwrap();
        // 3 · 10 · 20 · 2 = 1200
        assert_eq!(query_output_rate(&q, &network()), 1200.0);
    }

    #[test]
    fn nseq_rate_ignores_negated_child() {
        let q = Query::build(
            QueryId(0),
            &Pattern::nseq(
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(2)),
            ),
            vec![],
            10,
        )
        .unwrap();
        // 10 · 2, ignoring r(t1) = 20.
        assert_eq!(query_output_rate(&q, &network()), 20.0);
    }

    #[test]
    fn nested_rates() {
        // SEQ(AND(A, B), C): (2 · 10 · 20) · 2 = 800.
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            vec![],
            10,
        )
        .unwrap();
        assert_eq!(query_output_rate(&q, &network()), 800.0);
    }

    #[test]
    fn selectivity_scales_rate() {
        let a = AttrId(0);
        let pred = Predicate::binary((PrimId(0), a), CmpOp::Eq, (PrimId(1), a), 0.1);
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            vec![pred],
            10,
        )
        .unwrap();
        assert!((query_output_rate(&q, &network()) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn projection_rate_uses_projected_tree_and_predicates() {
        let a = AttrId(0);
        let preds = vec![
            Predicate::binary((PrimId(0), a), CmpOp::Eq, (PrimId(1), a), 0.1),
            Predicate::binary((PrimId(1), a), CmpOp::Eq, (PrimId(2), a), 0.5),
        ];
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::and([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                Pattern::leaf(t(2)),
            ]),
            preds,
            10,
        )
        .unwrap();
        let net = network();
        // π(q, {A, B}) = AND(A, B) with σ = 0.1 → 0.1 · 2 · 10 · 20 = 40.
        let p = project(&q, [PrimId(0), PrimId(1)].into_iter().collect()).unwrap();
        assert!((projection_output_rate(&p, &q, &net) - 40.0).abs() < 1e-9);
        // π(q, {A, C}) = SEQ(A, C), no predicate → 20.
        let p = project(&q, [PrimId(0), PrimId(2)].into_iter().collect()).unwrap();
        assert!((projection_output_rate(&p, &q, &net) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn primitive_rate_sum_over_prims() {
        let q = Query::build(
            QueryId(0),
            &Pattern::seq([
                Pattern::leaf(t(0)),
                Pattern::leaf(t(1)),
                Pattern::leaf(t(3)),
            ]),
            vec![],
            10,
        )
        .unwrap();
        let s = primitive_rate_sum(q.prims(), &q, &network());
        assert_eq!(s, 35.0);
    }

    #[test]
    fn relative_drift_is_symmetric_and_bounded() {
        assert_eq!(relative_drift(0.0, 0.0), 0.0);
        assert_eq!(relative_drift(10.0, 10.0), 0.0);
        // 3× shift in either direction scores the same 2/3.
        assert!((relative_drift(1.0, 3.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((relative_drift(3.0, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        // A vanished (or phantom) stream maxes out at 1.
        assert_eq!(relative_drift(5.0, 0.0), 1.0);
        assert_eq!(relative_drift(0.0, 5.0), 1.0);
    }
}
