//! Combinations of query projections (§5.1 of the paper).
//!
//! A *combination* fixes one way of deriving the matches of a projection
//! from the matches of other projections: a DAG `𝔠 = (𝔅, β)` assigning each
//! projection a set of predecessor projections. A combination is *correct*
//! (Def. 6) when every match of the target can be reconstructed as an
//! interleaving of predecessor matches — since a projection of a match is a
//! match of the projection (§4.2), this holds exactly when the predecessors'
//! primitive operators jointly cover the target's (the check used in Alg. 2).
//!
//! A combination is *redundant* (Def. 15) when some predecessor's primitive
//! operators are already covered by the other predecessors; Theorem 5 shows
//! optimal MuSE graphs never need redundant combinations, so enumeration
//! skips them.
//!
//! Projections are identified by their primitive-operator sets ([`PrimSet`]),
//! which is unambiguous under the distinct-event-types-per-query assumption
//! of §6.

use crate::types::PrimSet;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One way of deriving a projection's matches: `β(target) = predecessors`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Combination {
    /// The projection whose matches are derived (by prim set).
    pub target: PrimSet,
    /// The predecessor projections `β(target)`, sorted for canonical form.
    pub predecessors: Vec<PrimSet>,
}

impl Combination {
    /// Creates a combination, canonicalizing predecessor order.
    pub fn new(target: PrimSet, mut predecessors: Vec<PrimSet>) -> Self {
        predecessors.sort();
        predecessors.dedup();
        Self {
            target,
            predecessors,
        }
    }

    /// The *primitive combination* of a projection: every predecessor is a
    /// single primitive operator. Always correct and non-redundant; used as
    /// the cost upper bound for the beneficial-projection test (§6.1.1).
    pub fn primitive(target: PrimSet) -> Self {
        Self {
            target,
            predecessors: target.iter().map(PrimSet::single).collect(),
        }
    }

    /// Correctness per Def. 6 / Alg. 2: predecessors are proper non-empty
    /// subsets of the target whose union covers the target.
    pub fn is_correct(&self) -> bool {
        if self.predecessors.is_empty() {
            return false;
        }
        let mut union = PrimSet::empty();
        for p in &self.predecessors {
            if p.is_empty() || !p.is_proper_subset(self.target) {
                return false;
            }
            union = union.union(*p);
        }
        union == self.target
    }

    /// Redundancy per Def. 15: some predecessor's primitives are covered by
    /// the union of the others.
    pub fn is_redundant(&self) -> bool {
        self.predecessors.iter().enumerate().any(|(i, p)| {
            let others = self
                .predecessors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .fold(PrimSet::empty(), |acc, (_, o)| acc.union(*o));
            p.is_subset(others)
        })
    }

    /// Returns `true` if every predecessor is a single primitive operator.
    pub fn is_primitive(&self) -> bool {
        self.predecessors.iter().all(|p| p.len() == 1)
    }

    /// Number of predecessors `|β(target)|`.
    pub fn arity(&self) -> usize {
        self.predecessors.len()
    }
}

/// Enumerates all correct, non-redundant combinations of `target` whose
/// non-primitive predecessors are drawn from `available` (each a proper
/// subset of `target`); single-primitive predecessors are always available.
///
/// This realizes lines 7-9 of Alg. 2: instead of filtering the power set of
/// `Π_ben^p`, the search covers the lowest uncovered primitive at each step,
/// which only produces set covers; redundant ones are filtered at the end.
/// For each non-redundant combination `|β(p)| ≤ |O_p^p|` (§6.1.2), so the
/// recursion depth is bounded by the primitive count.
pub fn enumerate_combinations(target: PrimSet, available: &[PrimSet]) -> Vec<Combination> {
    enumerate_combinations_limited(target, available, usize::MAX)
}

/// Like [`enumerate_combinations`], but stops after `limit` combinations.
/// The search order is deterministic (candidates in ascending [`PrimSet`]
/// order), so truncation is reproducible.
pub fn enumerate_combinations_limited(
    target: PrimSet,
    available: &[PrimSet],
    limit: usize,
) -> Vec<Combination> {
    if target.len() < 2 || limit == 0 {
        return Vec::new();
    }
    // Candidate predecessors: provided projections that are proper subsets,
    // plus all single primitives of the target.
    let mut candidates: Vec<PrimSet> = available
        .iter()
        .copied()
        .filter(|p| !p.is_empty() && p.is_proper_subset(target))
        .collect();
    for prim in target.iter() {
        candidates.push(PrimSet::single(prim));
    }
    candidates.sort();
    candidates.dedup();
    // Explore larger predecessors first: combinations of few, large
    // projections tend to dominate (more shared structure, fewer streams),
    // so a truncated enumeration keeps the most promising ones.
    candidates.sort_by_key(|s| (std::cmp::Reverse(s.len()), *s));

    let mut out = Vec::new();
    let mut seen: HashSet<Vec<PrimSet>> = HashSet::new();
    let mut chosen: Vec<PrimSet> = Vec::new();
    cover_search(
        target,
        PrimSet::empty(),
        &candidates,
        &mut chosen,
        &mut out,
        &mut seen,
        limit,
    );
    out
}

fn cover_search(
    target: PrimSet,
    covered: PrimSet,
    candidates: &[PrimSet],
    chosen: &mut Vec<PrimSet>,
    out: &mut Vec<Combination>,
    seen: &mut HashSet<Vec<PrimSet>>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    if covered == target {
        let combo = Combination::new(target, chosen.clone());
        if !combo.is_redundant() && seen.insert(combo.predecessors.clone()) {
            out.push(combo);
        }
        return;
    }
    // Non-redundant combinations have at most |target| predecessors.
    if chosen.len() >= target.len() {
        return;
    }
    let lowest = target
        .difference(covered)
        .iter()
        .next()
        .expect("covered ⊂ target");
    for cand in candidates {
        if !cand.contains(lowest) {
            continue;
        }
        // A candidate fully inside the covered set would be redundant.
        if cand.is_subset(covered) {
            continue;
        }
        chosen.push(*cand);
        cover_search(
            target,
            covered.union(*cand),
            candidates,
            chosen,
            out,
            seen,
            limit,
        );
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PrimId;

    fn ps(prims: impl IntoIterator<Item = u8>) -> PrimSet {
        prims.into_iter().map(PrimId).collect()
    }

    #[test]
    fn primitive_combination_is_correct_and_nonredundant() {
        let c = Combination::primitive(ps([0, 1, 2]));
        assert!(c.is_correct());
        assert!(!c.is_redundant());
        assert!(c.is_primitive());
        assert_eq!(c.arity(), 3);
    }

    #[test]
    fn correctness_requires_full_cover() {
        let c = Combination::new(ps([0, 1, 2]), vec![ps([0, 1])]);
        assert!(!c.is_correct()); // prim 2 uncovered
        let c = Combination::new(ps([0, 1, 2]), vec![ps([0, 1]), ps([2])]);
        assert!(c.is_correct());
    }

    #[test]
    fn correctness_rejects_improper_predecessors() {
        // The target itself is not a valid predecessor.
        let c = Combination::new(ps([0, 1]), vec![ps([0, 1])]);
        assert!(!c.is_correct());
        // Predecessors outside the target are invalid.
        let c = Combination::new(ps([0, 1]), vec![ps([0]), ps([1, 2])]);
        assert!(!c.is_correct());
        // Empty predecessor list is invalid.
        let c = Combination::new(ps([0, 1]), vec![]);
        assert!(!c.is_correct());
    }

    #[test]
    fn redundancy_detection() {
        // {0,1} ⊆ {0,2} ∪ {1,2}: redundant (Def. 15).
        let c = Combination::new(ps([0, 1, 2]), vec![ps([0, 1]), ps([0, 2]), ps([1, 2])]);
        assert!(c.is_redundant());
        // Overlap alone is not redundancy.
        let c = Combination::new(ps([0, 1, 2]), vec![ps([0, 1]), ps([1, 2])]);
        assert!(!c.is_redundant());
    }

    #[test]
    fn enumerate_with_only_primitives() {
        // With no composite projections available, the only combination is
        // the primitive one.
        let combos = enumerate_combinations(ps([0, 1]), &[]);
        assert_eq!(combos.len(), 1);
        assert_eq!(combos[0], Combination::primitive(ps([0, 1])));
    }

    #[test]
    fn enumerate_three_prims_with_pairs() {
        // Available: all three pairs. Expected correct non-redundant
        // combinations of {0,1,2}:
        //   {0}{1}{2}, {01}{2}, {02}{1}, {12}{0}, {01}{12}, {01}{02},
        //   {02}{12}  — the three pair-pairs share one prim, fine —
        // but NOT {01}{02}{12} (redundant) and NOT any containing the target.
        let available = vec![ps([0, 1]), ps([0, 2]), ps([1, 2])];
        let combos = enumerate_combinations(ps([0, 1, 2]), &available);
        let sets: HashSet<Vec<PrimSet>> = combos.iter().map(|c| c.predecessors.clone()).collect();
        assert!(sets.contains(&vec![ps([0]), ps([1]), ps([2])]));
        assert!(sets.contains(&{
            let mut v = vec![ps([0, 1]), ps([2])];
            v.sort();
            v
        }));
        assert!(sets.contains(&{
            let mut v = vec![ps([0, 1]), ps([1, 2])];
            v.sort();
            v
        }));
        for c in &combos {
            assert!(c.is_correct(), "{c:?}");
            assert!(!c.is_redundant(), "{c:?}");
            assert!(c.arity() <= 3);
        }
        // No duplicates.
        assert_eq!(sets.len(), combos.len());
        // Exactly 7 correct non-redundant families exist: the primitive one,
        // three pair+singleton ones, and three pair+pair ones.
        assert_eq!(combos.len(), 7);
    }

    #[test]
    fn enumerate_skips_primitive_targets() {
        assert!(enumerate_combinations(ps([0]), &[]).is_empty());
        assert!(enumerate_combinations(PrimSet::empty(), &[]).is_empty());
    }

    #[test]
    fn enumerate_never_duplicates() {
        let available = vec![ps([0, 1]), ps([0, 2]), ps([1, 2]), ps([0, 1, 2])];
        let combos = enumerate_combinations(ps([0, 1, 2, 3]), &available);
        let mut keys: Vec<_> = combos.iter().map(|c| c.predecessors.clone()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before);
        for c in &combos {
            assert!(c.is_correct());
            assert!(!c.is_redundant());
        }
    }

    #[test]
    fn predecessor_arity_bounded_by_prims() {
        let available: Vec<PrimSet> = vec![];
        let combos = enumerate_combinations(ps([0, 1, 2, 3, 4]), &available);
        for c in combos {
            assert!(c.arity() <= 5);
        }
    }
}
