//! Events and payloads (§2.1 of the paper).
//!
//! An event is an instantiation of an event type with a unique identifier, an
//! occurrence timestamp, an origin node, and a payload of attribute values.
//! The *global trace* of an event-sourced network is the interleaving of all
//! local traces, totally ordered; ties on the timestamp are resolved
//! deterministically by the event's unique sequence number, exactly as the
//! paper's conceptual global trace requires.

use crate::types::{AttrId, EventTypeId, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Logical time, in abstract time units (the paper's `e.time ∈ ℕ`).
pub type Timestamp = u64;

/// A payload attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Signed integer value (ids, counters).
    Int(i64),
    /// Floating-point value (measurements).
    Float(f64),
    /// String value.
    Str(String),
}

impl Value {
    /// Compares two values of the same variant; mixed variants are unordered
    /// except Int/Float which compare numerically.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// An event payload: a sparse list of `(attribute, value)` pairs, sorted by
/// attribute id.
///
/// Payloads are tiny (the cluster-trace events carry two ids), so a sorted
/// vector beats a hash map in both space and lookup time. The pair list is
/// reference-counted: cloning an event — which the executors do once per
/// route on the send path — bumps a refcount instead of copying attribute
/// values, and mutation after sharing falls back to copy-on-write.
#[derive(Debug, Clone, Default)]
pub struct Payload(Option<Arc<Vec<(AttrId, Value)>>>);

impl Payload {
    /// Creates an empty payload (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a payload from `(attribute, value)` pairs.
    pub fn from_pairs(mut pairs: Vec<(AttrId, Value)>) -> Self {
        if pairs.is_empty() {
            return Self(None);
        }
        pairs.sort_by_key(|(a, _)| *a);
        Self(Some(Arc::new(pairs)))
    }

    fn pairs(&self) -> &[(AttrId, Value)] {
        self.0.as_deref().map_or(&[], Vec::as_slice)
    }

    /// Sets an attribute value, replacing any previous value (copying the
    /// pair list first if it is shared with another event).
    pub fn set(&mut self, attr: AttrId, value: Value) {
        let pairs = Arc::make_mut(self.0.get_or_insert_with(Default::default));
        match pairs.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => pairs[i].1 = value,
            Err(i) => pairs.insert(i, (attr, value)),
        }
    }

    /// Returns the value of an attribute, if present.
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.pairs()
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| &self.pairs()[i].1)
    }

    /// Number of attributes in the payload.
    pub fn len(&self) -> usize {
        self.pairs().len()
    }

    /// Returns `true` if the payload carries no attribute.
    pub fn is_empty(&self) -> bool {
        self.pairs().is_empty()
    }

    /// Iterates over `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.pairs().iter().map(|(a, v)| (*a, v))
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.pairs() == other.pairs()
    }
}

impl Serialize for Payload {
    fn to_value(&self) -> serde::Value {
        self.pairs().to_value()
    }
}

impl Deserialize for Payload {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Vec::<(AttrId, Value)>::from_value(v).map(Payload::from_pairs)
    }
}

/// An event: an instantiation of an event type (§2.1).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Globally unique sequence number; doubles as the event's position in
    /// the conceptual global trace (ties on `time` are broken by `seq`).
    pub seq: u64,
    /// The event's type (`e.type`).
    pub ty: EventTypeId,
    /// Occurrence timestamp (`e.time`).
    pub time: Timestamp,
    /// The node that generated the event (`e.origin`).
    pub origin: NodeId,
    /// Attribute values.
    pub payload: Payload,
}

impl Event {
    /// Creates an event without payload.
    pub fn new(seq: u64, ty: EventTypeId, time: Timestamp, origin: NodeId) -> Self {
        Self {
            seq,
            ty,
            time,
            origin,
            payload: Payload::new(),
        }
    }

    /// Creates an event with payload.
    pub fn with_payload(
        seq: u64,
        ty: EventTypeId,
        time: Timestamp,
        origin: NodeId,
        payload: Payload,
    ) -> Self {
        Self {
            seq,
            ty,
            time,
            origin,
            payload,
        }
    }

    /// Total order of events in the global trace: by timestamp, ties broken
    /// deterministically by sequence number.
    #[inline]
    pub fn trace_cmp(&self, other: &Event) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }

    /// The event's position key in the global trace (the paper's `#_t`).
    #[inline]
    pub fn trace_pos(&self) -> (Timestamp, u64) {
        (self.time, self.seq)
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Event#{}({:?}@t{} from {:?})",
            self.seq, self.ty, self.time, self.origin
        )
    }
}

/// Sorts a vector of events into global-trace order.
pub fn sort_into_trace_order(events: &mut [Event]) {
    events.sort_by(Event::trace_cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, time: Timestamp) -> Event {
        Event::new(seq, EventTypeId(0), time, NodeId(0))
    }

    #[test]
    fn trace_order_by_time_then_seq() {
        let a = ev(2, 5);
        let b = ev(1, 5);
        let c = ev(0, 7);
        assert_eq!(a.trace_cmp(&b), Ordering::Greater); // same time, higher seq
        assert_eq!(b.trace_cmp(&c), Ordering::Less);
        let mut v = vec![c.clone(), a.clone(), b.clone()];
        sort_into_trace_order(&mut v);
        assert_eq!(v, vec![b, a, c]);
    }

    #[test]
    fn payload_set_get() {
        let mut p = Payload::new();
        assert!(p.is_empty());
        p.set(AttrId(3), Value::Int(7));
        p.set(AttrId(1), Value::Str("x".into()));
        p.set(AttrId(3), Value::Int(9)); // overwrite
        assert_eq!(p.get(AttrId(3)), Some(&Value::Int(9)));
        assert_eq!(p.get(AttrId(1)), Some(&Value::Str("x".into())));
        assert_eq!(p.get(AttrId(0)), None);
        assert_eq!(p.len(), 2);
        // Iteration is in attribute order.
        let attrs: Vec<_> = p.iter().map(|(a, _)| a).collect();
        assert_eq!(attrs, vec![AttrId(1), AttrId(3)]);
    }

    #[test]
    fn payload_from_pairs_sorts() {
        let p = Payload::from_pairs(vec![(AttrId(5), Value::Int(1)), (AttrId(2), Value::Int(2))]);
        assert_eq!(p.get(AttrId(5)), Some(&Value::Int(1)));
        assert_eq!(p.get(AttrId(2)), Some(&Value::Int(2)));
    }

    #[test]
    fn value_comparisons() {
        assert_eq!(
            Value::Int(3).partial_cmp_value(&Value::Int(4)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(3).partial_cmp_value(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Str("a".into()).partial_cmp_value(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Str("a".into()).partial_cmp_value(&Value::Int(1)),
            None
        );
    }

    #[test]
    fn value_from_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
