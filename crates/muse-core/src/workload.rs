//! Query workloads (§2.2): sets of OR-free queries evaluated together.

use crate::catalog::Catalog;
use crate::error::{ModelError, Result};
use crate::event::Timestamp;
use crate::network::Network;
use crate::query::parser::{parse_query, ParserOptions};
use crate::query::{Pattern, Predicate, Query};
use crate::types::{QueryId, TypeSet};
use serde::{Deserialize, Serialize};

/// A query workload `Q = {q_1, …, q_n}` together with the catalog its
/// queries were resolved against.
///
/// All queries of a workload conceptually share the same time window
/// (§2.2: the largest window is adopted for evaluation; smaller windows are
/// re-checked at the individual root operators).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    catalog: Catalog,
    queries: Vec<Query>,
}

impl Workload {
    /// Creates a workload from already-built queries.
    ///
    /// # Errors
    ///
    /// Returns an error if query ids are not the dense sequence `0..n` (the
    /// rest of the system indexes queries by id).
    pub fn new(catalog: Catalog, queries: Vec<Query>) -> Result<Self> {
        for (i, q) in queries.iter().enumerate() {
            if q.id().index() != i {
                return Err(ModelError::InvalidQuery {
                    query: Some(q.id()),
                    reason: format!("workload query ids must be dense; expected Q{i}"),
                });
            }
        }
        Ok(Self { catalog, queries })
    }

    /// Builds a workload from patterns, assigning dense query ids. Patterns
    /// containing `OR` are split into OR-free alternatives first (§2.2), each
    /// becoming its own query with the same predicates and window.
    pub fn from_patterns(
        catalog: Catalog,
        patterns: impl IntoIterator<Item = (Pattern, Vec<Predicate>, Timestamp)>,
    ) -> Result<Self> {
        let mut queries = Vec::new();
        for (pattern, predicates, window) in patterns {
            for alternative in pattern.split_disjunctions() {
                let id = QueryId(queries.len() as u32);
                queries.push(Query::build(id, &alternative, predicates.clone(), window)?);
            }
        }
        Ok(Self { catalog, queries })
    }

    /// Parses a workload from SASE-style query strings.
    pub fn parse(
        mut catalog: Catalog,
        sources: impl IntoIterator<Item = impl AsRef<str>>,
        options: &ParserOptions,
    ) -> Result<Self> {
        let mut queries = Vec::new();
        for src in sources {
            let id = QueryId(queries.len() as u32);
            queries.push(parse_query(src.as_ref(), id, &mut catalog, options)?);
        }
        Ok(Self { catalog, queries })
    }

    /// The catalog the queries were resolved against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The queries of the workload.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Mutable access to the queries, e.g. to refresh predicate
    /// selectivities after estimating statistics from observed traces.
    pub fn queries_mut(&mut self) -> &mut [Query] {
        &mut self.queries
    }

    /// Looks up a query by id.
    pub fn query(&self, id: QueryId) -> &Query {
        &self.queries[id.index()]
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the workload has no query.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// All event types referenced by any query.
    pub fn types(&self) -> TypeSet {
        self.queries
            .iter()
            .fold(TypeSet::empty(), |acc, q| acc.union(q.types()))
    }

    /// The largest window among the queries — the window adopted for shared
    /// evaluation (§2.2).
    pub fn max_window(&self) -> Timestamp {
        self.queries.iter().map(Query::window).max().unwrap_or(0)
    }

    /// Validates that every referenced type has a producer in the network.
    pub fn check_against(&self, network: &Network) -> Result<()> {
        network.check_producible(self.types())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::types::{EventTypeId, NodeId};

    fn t(i: u16) -> EventTypeId {
        EventTypeId(i)
    }

    #[test]
    fn from_patterns_assigns_dense_ids() {
        let catalog = Catalog::with_anonymous_types(4);
        let w = Workload::from_patterns(
            catalog,
            [
                (
                    Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                    vec![],
                    100,
                ),
                (
                    Pattern::and([Pattern::leaf(t(2)), Pattern::leaf(t(3))]),
                    vec![],
                    50,
                ),
            ],
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.query(QueryId(1)).id(), QueryId(1));
        assert_eq!(w.max_window(), 100);
        assert_eq!(w.types().len(), 4);
    }

    #[test]
    fn or_patterns_split_into_queries() {
        let catalog = Catalog::with_anonymous_types(3);
        let w = Workload::from_patterns(
            catalog,
            [(
                Pattern::seq([
                    Pattern::or([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                    Pattern::leaf(t(2)),
                ]),
                vec![],
                100,
            )],
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        for q in w.queries() {
            assert_eq!(q.num_prims(), 2);
        }
    }

    #[test]
    fn new_rejects_non_dense_ids() {
        let catalog = Catalog::with_anonymous_types(2);
        let q = Query::build(
            QueryId(3),
            &Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
            vec![],
            10,
        )
        .unwrap();
        assert!(Workload::new(catalog, vec![q]).is_err());
    }

    #[test]
    fn parse_workload() {
        let mut catalog = Catalog::new();
        for ty in ["A", "B", "C"] {
            catalog.add_event_type(ty).unwrap();
        }
        let w = Workload::parse(
            catalog,
            [
                "PATTERN SEQ(A a, B b) WITHIN 10s",
                "PATTERN AND(B b, C c) WITHIN 5s",
            ],
            &ParserOptions::default(),
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.max_window(), 10_000);
    }

    #[test]
    fn check_against_network() {
        let catalog = Catalog::with_anonymous_types(2);
        let w = Workload::from_patterns(
            catalog,
            [(
                Pattern::seq([Pattern::leaf(t(0)), Pattern::leaf(t(1))]),
                vec![],
                10,
            )],
        )
        .unwrap();
        let good = NetworkBuilder::new(1, 2)
            .node(NodeId(0), [t(0), t(1)])
            .rate(t(0), 1.0)
            .rate(t(1), 1.0)
            .build();
        assert!(w.check_against(&good).is_ok());
        let bad = NetworkBuilder::new(1, 2).node(NodeId(0), [t(0)]).build();
        assert!(w.check_against(&bad).is_err());
    }
}
