//! # muse-core
//!
//! A from-scratch implementation of **Multi-Sink Evaluation (MuSE) graphs**
//! for the flexible distribution of complex event processing (CEP) in
//! networks of event sources, reproducing Akili & Weidlich, *"MuSE Graphs
//! for Flexible Distribution of Event Stream Processing in Networks"*
//! (SIGMOD 2021).
//!
//! Classic distributed CEP splits a query along its operator hierarchy and
//! places each operator at exactly one node, funneling all results into a
//! single sink. MuSE graphs lift both restrictions: *arbitrary query
//! projections* act as operators, and a projection may be hosted at *many*
//! nodes, each generating the matches whose constituent events it can see.
//!
//! This crate contains the paper's formal model and plan-construction
//! algorithms:
//!
//! * the event-sourced network `Γ = (N, f, r)` ([`network`]),
//! * the query language with `AND`, `SEQ`, `OR`, `NSEQ` ([`query`]),
//! * query projections ([`projection`]) and event type bindings ([`binding`]),
//! * combinations of projections ([`combination`]),
//! * the output-rate cost model ([`cost`]),
//! * MuSE graphs with covers, correctness and normal forms ([`graph`]),
//! * plan construction: exhaustive optimal search, the `aMuSE`/`aMuSE*`
//!   heuristics, the multi-query extension, the centralized / optimal
//!   single-sink operator placement baselines, and push-pull edge
//!   annotation ([`algorithms`]).
//!
//! Execution of the resulting plans lives in the companion crate
//! `muse-runtime`; synthetic workload generation in `muse-sim`.
//!
//! ## Quickstart
//!
//! ```
//! use muse_core::prelude::*;
//!
//! // The paper's running example: three transport robots.
//! let mut catalog = Catalog::new();
//! let c = catalog.add_event_type("C").unwrap(); // camera, frequent
//! let l = catalog.add_event_type("L").unwrap(); // lidar, frequent
//! let f = catalog.add_event_type("F").unwrap(); // floor clearance, rare
//!
//! let network = NetworkBuilder::new(3, 3)
//!     .node(NodeId(0), [c, f])
//!     .node(NodeId(1), [c, l])
//!     .node(NodeId(2), [l])
//!     .rate(c, 100.0)
//!     .rate(l, 100.0)
//!     .rate(f, 1.0)
//!     .build();
//!
//! let pattern = Pattern::seq([
//!     Pattern::and([Pattern::leaf(c), Pattern::leaf(l)]),
//!     Pattern::leaf(f),
//! ]);
//! let query = Query::build(QueryId(0), &pattern, vec![], 1_000).unwrap();
//!
//! let plan = amuse(&query, &network, &AMuseConfig::default()).unwrap();
//! let centralized = centralized_cost(std::slice::from_ref(&query), &network);
//! assert!(plan.cost() < centralized);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod algorithms;
pub mod binding;
pub mod catalog;
pub mod combination;
pub mod cost;
pub mod error;
pub mod event;
pub mod graph;
pub mod network;
pub mod projection;
pub mod query;
pub mod types;
pub mod workload;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::algorithms::amuse::{amuse, amuse_star, AMuseConfig};
    pub use crate::algorithms::baselines::{centralized_cost, optimal_operator_placement};
    pub use crate::algorithms::multi_query::amuse_workload;
    pub use crate::binding::EventTypeBinding;
    pub use crate::catalog::Catalog;
    pub use crate::error::{ModelError, Result};
    pub use crate::event::{Event, Payload, Timestamp, Value};
    pub use crate::graph::{MuseGraph, Vertex};
    pub use crate::network::{Network, NetworkBuilder};
    pub use crate::projection::{ProjId, Projection, ProjectionTable};
    pub use crate::query::parser::{parse_query, ParserOptions};
    pub use crate::query::{CmpOp, OpKind, OpNode, Pattern, Predicate, Query};
    pub use crate::types::{
        AttrId, EventTypeId, NodeId, NodeSet, PrimId, PrimSet, QueryId, TypeSet,
    };
    pub use crate::workload::Workload;
}
