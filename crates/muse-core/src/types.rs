//! Small, interned identifier types and bitset collections used throughout the
//! MuSE graph model.
//!
//! The construction algorithms of the paper are exponential in the number of
//! primitive operators of a query and polynomial in the number of network
//! nodes. Representing sets of primitive operators and sets of nodes as
//! machine-word bitsets keeps the exponential enumeration allocation-free.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an event type within a [`crate::catalog::Catalog`].
///
/// The paper's universe of event types `E = {E_1, ..., E_n}` is interned into
/// dense ids so that type sets fit into a [`TypeSet`] bitset.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventTypeId(pub u16);

/// Identifier of a network node (`n ∈ N` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// Identifier of a query within a workload (`q_i ∈ Q`).
///
/// 32 bits wide so that workloads of 100k+ concurrent queries (the
/// multi-tenancy regime of §6.2) are representable without wrapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u32);

/// Index of a primitive operator within a single query, assigned in
/// left-to-right leaf order of the operator tree.
///
/// Because §6 of the paper assumes that a query does not contain multiple
/// primitive operators referencing the same event type, a `PrimId` within a
/// query corresponds one-to-one to an event type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PrimId(pub u8);

/// Identifier of a payload attribute within a [`crate::catalog::Catalog`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u8);

impl fmt::Debug for EventTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}
impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}
impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}
impl fmt::Debug for PrimId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}
impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl EventTypeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl QueryId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl PrimId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl AttrId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Maximum number of primitive operators per query supported by [`PrimSet`].
pub const MAX_PRIMS: usize = 64;

/// Maximum number of event types supported by [`TypeSet`].
pub const MAX_TYPES: usize = 64;

/// Maximum number of network nodes supported by [`NodeSet`].
pub const MAX_NODES: usize = 128;

macro_rules! bitset_common {
    ($name:ident, $word:ty, $idty:ty, $max:expr, $mkid:expr) => {
        impl $name {
            /// The empty set.
            pub const EMPTY: Self = Self(0);

            /// Creates an empty set.
            #[inline]
            pub const fn empty() -> Self {
                Self(0)
            }

            /// Creates a set containing a single element.
            #[inline]
            pub fn single(id: $idty) -> Self {
                let mut s = Self(0);
                s.insert(id);
                s
            }

            /// Creates a set containing all elements `0..n`.
            #[inline]
            pub fn full(n: usize) -> Self {
                assert!(n <= $max, "bitset capacity exceeded: {n} > {}", $max);
                if n == 0 {
                    Self(0)
                } else if n == $max {
                    Self(<$word>::MAX)
                } else {
                    Self((1 as $word << n) - 1)
                }
            }

            /// Inserts an element into the set.
            #[inline]
            pub fn insert(&mut self, id: $idty) {
                let i = id.index();
                assert!(i < $max, "bitset capacity exceeded: {i} >= {}", $max);
                self.0 |= (1 as $word) << i;
            }

            /// Removes an element from the set.
            #[inline]
            pub fn remove(&mut self, id: $idty) {
                let i = id.index();
                if i < $max {
                    self.0 &= !((1 as $word) << i);
                }
            }

            /// Returns `true` if the set contains the element.
            #[inline]
            pub fn contains(&self, id: $idty) -> bool {
                let i = id.index();
                i < $max && (self.0 >> i) & 1 == 1
            }

            /// Returns the number of elements in the set.
            #[inline]
            pub fn len(&self) -> usize {
                self.0.count_ones() as usize
            }

            /// Returns `true` if the set is empty.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.0 == 0
            }

            /// Set union.
            #[inline]
            pub fn union(self, other: Self) -> Self {
                Self(self.0 | other.0)
            }

            /// Set intersection.
            #[inline]
            pub fn intersect(self, other: Self) -> Self {
                Self(self.0 & other.0)
            }

            /// Set difference (`self \ other`).
            #[inline]
            pub fn difference(self, other: Self) -> Self {
                Self(self.0 & !other.0)
            }

            /// Returns `true` if `self ⊆ other`.
            #[inline]
            pub fn is_subset(self, other: Self) -> bool {
                self.0 & !other.0 == 0
            }

            /// Returns `true` if `self ⊂ other` (proper subset).
            #[inline]
            pub fn is_proper_subset(self, other: Self) -> bool {
                self.is_subset(other) && self.0 != other.0
            }

            /// Returns `true` if the two sets share no element.
            #[inline]
            pub fn is_disjoint(self, other: Self) -> bool {
                self.0 & other.0 == 0
            }

            /// Iterates over the elements in ascending order.
            pub fn iter(self) -> impl Iterator<Item = $idty> {
                let mut bits = self.0;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let i = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some($mkid(i))
                    }
                })
            }

            /// Returns the raw bit representation.
            #[inline]
            pub fn bits(self) -> $word {
                self.0
            }

            /// Constructs a set from raw bits.
            #[inline]
            pub fn from_bits(bits: $word) -> Self {
                Self(bits)
            }
        }

        impl FromIterator<$idty> for $name {
            fn from_iter<I: IntoIterator<Item = $idty>>(iter: I) -> Self {
                let mut s = Self::empty();
                for id in iter {
                    s.insert(id);
                }
                s
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_set().entries(self.iter()).finish()
            }
        }
    };
}

/// A set of primitive operators of a single query, as a 64-bit bitset.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PrimSet(u64);
bitset_common!(PrimSet, u64, PrimId, MAX_PRIMS, |i| PrimId(i as u8));

/// A set of event types, as a 64-bit bitset.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TypeSet(u64);
bitset_common!(TypeSet, u64, EventTypeId, MAX_TYPES, |i| EventTypeId(
    i as u16
));

/// A set of network nodes, as a 128-bit bitset (networks of up to 128 nodes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct NodeSet(u128);
bitset_common!(NodeSet, u128, NodeId, MAX_NODES, |i| NodeId(i as u16));

impl PrimSet {
    /// Enumerates all non-empty subsets of `self` in ascending bit order.
    ///
    /// This is the standard sub-mask enumeration used to enumerate the
    /// projection lattice `Π(q)` (§4.2 of the paper: `|Π(q)| ≤ 2^|O_p|`).
    pub fn subsets(self) -> impl Iterator<Item = PrimSet> {
        let full = self.0;
        let mut sub = 0u64;
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            // Advance to the next submask.
            sub = sub.wrapping_sub(full) & full;
            if sub == 0 {
                done = true;
                return None;
            }
            Some(PrimSet(sub))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primset_insert_contains_remove() {
        let mut s = PrimSet::empty();
        assert!(s.is_empty());
        s.insert(PrimId(3));
        s.insert(PrimId(0));
        assert!(s.contains(PrimId(3)));
        assert!(s.contains(PrimId(0)));
        assert!(!s.contains(PrimId(1)));
        assert_eq!(s.len(), 2);
        s.remove(PrimId(3));
        assert!(!s.contains(PrimId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn primset_set_algebra() {
        let a: PrimSet = [PrimId(0), PrimId(1), PrimId(2)].into_iter().collect();
        let b: PrimSet = [PrimId(1), PrimId(2), PrimId(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b).len(), 2);
        assert_eq!(a.difference(b), PrimSet::single(PrimId(0)));
        assert!(a.intersect(b).is_subset(a));
        assert!(a.intersect(b).is_proper_subset(a));
        assert!(!a.is_subset(b));
        assert!(PrimSet::empty().is_subset(a));
    }

    #[test]
    fn primset_full() {
        assert_eq!(PrimSet::full(0), PrimSet::empty());
        assert_eq!(PrimSet::full(3).len(), 3);
        assert_eq!(PrimSet::full(64).len(), 64);
    }

    #[test]
    fn primset_iter_ascending() {
        let s: PrimSet = [PrimId(5), PrimId(1), PrimId(9)].into_iter().collect();
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![PrimId(1), PrimId(5), PrimId(9)]);
    }

    #[test]
    fn primset_subset_enumeration() {
        let s = PrimSet::full(3);
        let subs: Vec<_> = s.subsets().collect();
        assert_eq!(subs.len(), 7); // 2^3 - 1 non-empty subsets
        for sub in &subs {
            assert!(sub.is_subset(s));
            assert!(!sub.is_empty());
        }
        // All distinct.
        let mut dedup = subs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), subs.len());
    }

    #[test]
    fn primset_subsets_sparse_mask() {
        let s: PrimSet = [PrimId(1), PrimId(4), PrimId(63)].into_iter().collect();
        let subs: Vec<_> = s.subsets().collect();
        assert_eq!(subs.len(), 7);
        for sub in subs {
            assert!(sub.is_subset(s));
        }
    }

    #[test]
    fn nodeset_128_bits() {
        let mut s = NodeSet::empty();
        s.insert(NodeId(127));
        s.insert(NodeId(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(127)));
        let full = NodeSet::full(128);
        assert_eq!(full.len(), 128);
        assert!(s.is_subset(full));
    }

    #[test]
    fn typeset_disjoint() {
        let a = TypeSet::single(EventTypeId(0));
        let b = TypeSet::single(EventTypeId(1));
        assert!(a.is_disjoint(b));
        assert!(!a.union(b).is_disjoint(b));
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn primset_overflow_panics() {
        let mut s = PrimSet::empty();
        s.insert(PrimId(64));
    }
}
